// Differential wall for the streaming scheduler sessions.
//
// The contract under test: a SchedulerSession fed the same jobs as a batch
// api::run() — in any chunking, with advance() calls interleaved — makes
// BIT-IDENTICAL decisions: same Schedule (zero-tolerance diff), same
// objective report (double-for-double), same certificate and rejection
// counters. This is the in-process analogue of scripts/compare_bench.py's
// exact-match philosophy, run for every streamable algorithm over several
// seeds and workload families.
//
// The rotating-seed hook: OSCHED_FUZZ_SEED (decimal) offsets the workload
// seeds so CI explores fresh instances every run while any failure is
// reproducible from the logged value.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "fuzz_seed.hpp"
#include "service/job_store.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "sim/schedule_io.hpp"
#include "workload/generated_family.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("streaming_test", 42);
}

enum class Family { kDense, kWeighted, kRestricted };

Instance make_workload(Family family, std::uint64_t seed, std::size_t n,
                       std::size_t m) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.2;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  switch (family) {
    case Family::kDense:
      break;
    case Family::kWeighted:
      config.weights = workload::WeightDistribution::kUniform;
      break;
    case Family::kRestricted:
      config.machines.model = workload::MachineModel::kRestricted;
      config.machines.eligibility = 0.5;
      break;
  }
  return workload::generate_workload(config);
}

const api::Algorithm kStreamable[] = {
    api::Algorithm::kTheorem1,    api::Algorithm::kTheorem2,
    api::Algorithm::kWeightedExt, api::Algorithm::kGreedySpt,
    api::Algorithm::kFifo,        api::Algorithm::kImmediateReject,
};

void expect_bit_identical(const api::RunSummary& batch,
                          const api::RunSummary& streamed,
                          const std::string& context) {
  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;  // byte-identical, not tolerance-equal
  const auto diffs = diff_schedules(batch.schedule, streamed.schedule, strict);
  EXPECT_TRUE(diffs.empty()) << context << ": " << diffs.size()
                             << " schedule diffs; first: " << diffs.front();

  EXPECT_EQ(batch.report.num_jobs, streamed.report.num_jobs) << context;
  EXPECT_EQ(batch.report.num_completed, streamed.report.num_completed) << context;
  EXPECT_EQ(batch.report.num_rejected, streamed.report.num_rejected) << context;
  EXPECT_EQ(batch.report.rejected_fraction, streamed.report.rejected_fraction)
      << context;
  EXPECT_EQ(batch.report.rejected_weight_fraction,
            streamed.report.rejected_weight_fraction)
      << context;
  EXPECT_EQ(batch.report.total_flow, streamed.report.total_flow) << context;
  EXPECT_EQ(batch.report.completed_flow, streamed.report.completed_flow)
      << context;
  EXPECT_EQ(batch.report.total_weighted_flow,
            streamed.report.total_weighted_flow)
      << context;
  EXPECT_EQ(batch.report.max_flow, streamed.report.max_flow) << context;
  EXPECT_EQ(batch.report.makespan, streamed.report.makespan) << context;
  EXPECT_EQ(batch.report.energy, streamed.report.energy) << context;
  EXPECT_EQ(batch.certified_lower_bound, streamed.certified_lower_bound)
      << context;
  EXPECT_EQ(batch.rule1_rejections, streamed.rule1_rejections) << context;
  EXPECT_EQ(batch.rule2_rejections, streamed.rule2_rejections) << context;
}

TEST(StreamingDifferential, EveryAlgorithmEverySeedEveryChunking) {
  const Family families[] = {Family::kDense, Family::kWeighted,
                             Family::kRestricted};
  const std::size_t chunk_sizes[] = {1, 97, 100000};
  for (const Family family : families) {
    for (std::uint64_t s = 0; s < 3; ++s) {
      const Instance instance =
          make_workload(family, base_seed() + 17 * s, 400, 5);
      for (const api::Algorithm algorithm : kStreamable) {
        const api::RunSummary batch = api::run(algorithm, instance);
        for (const std::size_t chunk : chunk_sizes) {
          const api::RunSummary streamed =
              service::streamed_run(algorithm, instance, {}, chunk);
          expect_bit_identical(
              batch, streamed,
              std::string(api::to_string(algorithm)) + " family=" +
                  std::to_string(static_cast<int>(family)) + " seed+" +
                  std::to_string(17 * s) + " chunk=" + std::to_string(chunk));
        }
      }
    }
  }
}

TEST(StreamingDifferential, BatchSubmitMatchesPerJobSubmitExactly) {
  // submit(span) must make the same decisions as submitting the same jobs
  // one at a time (it amortizes validation/bookkeeping, never event order),
  // for every streamable algorithm and several batch shapes.
  const std::size_t batch_sizes[] = {1, 7, 64, 1000};
  const Instance instance =
      make_workload(Family::kRestricted, base_seed() + 5, 400, 5);
  std::vector<StreamJob> jobs(instance.num_jobs());
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &jobs[idx]);
  }
  for (const api::Algorithm algorithm : kStreamable) {
    const api::RunSummary batch = api::run(algorithm, instance);
    for (const std::size_t batch_size : batch_sizes) {
      service::SchedulerSession session(algorithm, instance.num_machines());
      for (std::size_t at = 0; at < jobs.size(); at += batch_size) {
        const std::size_t take = std::min(batch_size, jobs.size() - at);
        const JobId first = session.submit(
            std::span<const StreamJob>(jobs.data() + at, take));
        EXPECT_EQ(first, static_cast<JobId>(at));
      }
      expect_bit_identical(batch, session.drain(),
                           std::string(api::to_string(algorithm)) +
                               " batch_size=" + std::to_string(batch_size));
    }
  }
}

TEST(StreamingSession, StoreAppendBatchMatchesPerJobAppend) {
  // The store-level whole-batch append (validate_batch + append_trusted in
  // one call) must reproduce per-job append exactly: same ids, same rows,
  // same adjacency.
  const Instance instance =
      make_workload(Family::kRestricted, base_seed() + 9, 64, 4);
  std::vector<StreamJob> jobs(instance.num_jobs());
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &jobs[idx]);
  }
  service::StreamingJobStore batched(instance.num_machines());
  EXPECT_EQ(batched.append_batch(std::span<const StreamJob>()), kInvalidJob);
  EXPECT_EQ(batched.append_batch(std::span<const StreamJob>(jobs)), 0);
  EXPECT_EQ(batched.num_jobs(), jobs.size());
  service::StreamingJobStore single(instance.num_machines());
  for (const StreamJob& job : jobs) single.append(job);
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    EXPECT_EQ(batched.job(j).release, single.job(j).release);
    ASSERT_EQ(batched.eligible_machines(j).size(),
              single.eligible_machines(j).size());
    for (std::size_t i = 0; i < instance.num_machines(); ++i) {
      EXPECT_EQ(
          batched.processing_unchecked(static_cast<MachineId>(i), j),
          single.processing_unchecked(static_cast<MachineId>(i), j));
    }
  }
}

TEST(StreamingSession, BatchSubmitValidatesAndRejectsAtomically) {
  service::SchedulerSession session(api::Algorithm::kTheorem1, 2);
  StreamJob good;
  good.release = 1.0;
  good.weight = 1.0;
  good.deadline = kTimeInfinity;
  good.processing = {1.0, 2.0};
  StreamJob out_of_order = good;
  out_of_order.release = 0.5;  // precedes its in-batch predecessor
  const std::vector<StreamJob> bad = {good, out_of_order};
  EXPECT_DEATH(session.submit(std::span<const StreamJob>(bad)),
               "release order");
  // Nothing from the failed batch may have been appended... (the death
  // test runs in a child; in THIS process prove the empty-batch and
  // single-batch behaviours instead.)
  EXPECT_EQ(session.submit(std::span<const StreamJob>()), kInvalidJob);
  EXPECT_EQ(session.num_submitted(), 0u);
  const std::vector<StreamJob> fine = {good, good};
  EXPECT_EQ(session.submit(std::span<const StreamJob>(fine)), 0);
  EXPECT_EQ(session.num_submitted(), 2u);
}

TEST(StreamingDifferential, InterleavedAdvanceDoesNotChangeDecisions) {
  // advance() between every pair of submissions, to times strictly between
  // arrivals — the finest-grained driving pattern a live feeder can use.
  const Instance instance = make_workload(Family::kDense, base_seed(), 300, 4);
  const api::RunSummary batch = api::run(api::Algorithm::kTheorem1, instance);

  service::SchedulerSession session(api::Algorithm::kTheorem1,
                                    instance.num_machines());
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    fill_stream_job(instance, j, 0.0, &job);
    session.submit(job);
    if (idx + 1 < instance.num_jobs()) {
      const Time here = instance.job(j).release;
      const Time next = instance.job(static_cast<JobId>(idx + 1)).release;
      session.advance(here + 0.5 * (next - here));
    }
  }
  expect_bit_identical(batch, session.drain(), "interleaved advance");
}

TEST(StreamingSession, LowMemoryAggregatesMatchBatchExactly) {
  const Instance instance = make_workload(Family::kDense, base_seed() + 5, 2000, 6);
  const api::RunSummary batch = api::run(api::Algorithm::kTheorem1, instance);

  service::SessionOptions options;
  options.run.validate = false;  // no retained schedule to validate
  options.retain_records = false;
  options.retire_batch = 64;  // exercise many fold/release cycles
  service::SchedulerSession session(api::Algorithm::kTheorem1,
                                    instance.num_machines(), options);
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    session.submit(job);
  }
  const std::size_t max_live = session.max_live_jobs();
  const api::RunSummary streamed = session.drain();

  // The schedule was folded away...
  EXPECT_EQ(streamed.schedule.num_jobs(), 0u);
  // ...but the aggregates are bit-identical (folds run in job-id order, the
  // same order the batch report sums in).
  EXPECT_EQ(batch.report.num_completed, streamed.report.num_completed);
  EXPECT_EQ(batch.report.num_rejected, streamed.report.num_rejected);
  EXPECT_EQ(batch.report.total_flow, streamed.report.total_flow);
  EXPECT_EQ(batch.report.completed_flow, streamed.report.completed_flow);
  EXPECT_EQ(batch.report.total_weighted_flow,
            streamed.report.total_weighted_flow);
  EXPECT_EQ(batch.report.max_flow, streamed.report.max_flow);
  EXPECT_EQ(batch.report.makespan, streamed.report.makespan);
  EXPECT_EQ(batch.certified_lower_bound, streamed.certified_lower_bound);
  EXPECT_EQ(batch.rule1_rejections, streamed.rule1_rejections);
  EXPECT_EQ(batch.rule2_rejections, streamed.rule2_rejections);

  // The memory contract: the working set tracked the live window, which for
  // this near-critically-loaded workload is far below the trace length.
  EXPECT_LT(max_live, instance.num_jobs() / 2) << "live high-water " << max_live;
}

TEST(StreamingSession, ValidateJobReportsRecoverableProblems) {
  service::SchedulerSession session(api::Algorithm::kTheorem1, 2);

  StreamJob good;
  good.release = 1.0;
  good.processing = {1.0, kTimeInfinity};
  EXPECT_EQ(session.validate_job(good), "");
  session.submit(good);

  StreamJob wrong_arity;
  wrong_arity.release = 2.0;
  wrong_arity.processing = {1.0};
  EXPECT_NE(session.validate_job(wrong_arity).find("machines"), std::string::npos);

  StreamJob out_of_order;
  out_of_order.release = 0.5;  // before the last submitted release
  out_of_order.processing = {1.0, 1.0};
  EXPECT_NE(session.validate_job(out_of_order).find("release order"),
            std::string::npos);

  StreamJob ineligible;
  ineligible.release = 2.0;
  ineligible.processing = {kTimeInfinity, kTimeInfinity};
  EXPECT_NE(session.validate_job(ineligible).find("no eligible machine"),
            std::string::npos);

  StreamJob negative;
  negative.release = 2.0;
  negative.processing = {-1.0, 1.0};
  EXPECT_NE(session.validate_job(negative).find("non-positive"),
            std::string::npos);

  // The clock outruns a release after advance().
  session.advance(5.0);
  StreamJob late;
  late.release = 3.0;
  late.processing = {1.0, 1.0};
  EXPECT_NE(session.validate_job(late).find("session clock"), std::string::npos);
}

// ------------------------------------------------ storage-backend sessions
//
// The streaming counterpart of tests/storage_backend_test.cpp: a session's
// storage backend (dense / sparse CSR / generator) must be invisible to
// scheduling. Dense, sparse and generator sessions fed the same closed-form
// workload drain byte-identical RunSummaries — including under overload
// control and across mid-stream checkpoint cuts (checkpoint_test.cpp covers
// the cut legs; the overload legs live here).

workload::ClosedFormConfig trio_config(std::uint64_t seed, std::size_t n,
                                       std::size_t m,
                                       double eligibility = 1.0) {
  workload::ClosedFormConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.25;
  config.eligibility = eligibility;
  return config;
}

service::SessionOptions backend_options(
    StorageBackend storage,
    std::shared_ptr<const RowGenerator> generator = nullptr) {
  service::SessionOptions options;
  options.storage = storage;
  options.generator = std::move(generator);
  return options;
}

TEST(StreamingDifferential, StorageBackendTrioMatchesTheDenseBatchExactly) {
  const workload::ClosedFormConfig config =
      trio_config(base_seed() + 71, 300, 8);
  const Instance dense =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const Instance sparse =
      workload::make_closed_form_instance(config, StorageBackend::kSparseCsr);
  const Instance generated =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  const auto generator = workload::make_closed_form_generator(config);

  const std::size_t chunk_sizes[] = {1, 97, 100000};
  for (const api::Algorithm algorithm : kStreamable) {
    const api::RunSummary batch = api::run(algorithm, dense);
    for (const std::size_t chunk : chunk_sizes) {
      const std::string context = std::string(api::to_string(algorithm)) +
                                  " chunk=" + std::to_string(chunk);
      expect_bit_identical(
          batch,
          service::streamed_session_run(algorithm, dense, {}, chunk),
          context + " dense session");
      expect_bit_identical(
          batch,
          service::streamed_session_run(
              algorithm, sparse,
              backend_options(StorageBackend::kSparseCsr), chunk),
          context + " sparse session");
      expect_bit_identical(
          batch,
          service::streamed_session_run(
              algorithm, generated,
              backend_options(StorageBackend::kGenerator, generator), chunk),
          context + " generator session");
    }
  }
}

TEST(StreamingDifferential, RestrictedSparseSessionsMatchTheDenseBatch) {
  // Restricted assignment is what the sparse backend exists for: eligible
  // rows are short, so the CSR session stores a fraction of the dense
  // matrix — and must still decide identically. Both submission forms are
  // crossed with both matrix backends: fill_stream_job emits the instance
  // backend's natural form, and each store accepts either.
  const workload::ClosedFormConfig config =
      trio_config(base_seed() + 73, 300, 8, /*eligibility=*/0.35);
  const Instance dense =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const Instance sparse =
      workload::make_closed_form_instance(config, StorageBackend::kSparseCsr);

  for (const api::Algorithm algorithm : kStreamable) {
    const api::RunSummary batch = api::run(algorithm, dense);
    const std::string name = api::to_string(algorithm);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{97}}) {
      expect_bit_identical(
          batch,
          service::streamed_session_run(
              algorithm, sparse,
              backend_options(StorageBackend::kSparseCsr), chunk),
          name + " sparse->sparse chunk=" + std::to_string(chunk));
    }
    // Cross-form legs: sparse submissions into a dense store, dense
    // submissions into a sparse store.
    expect_bit_identical(
        batch, service::streamed_session_run(algorithm, sparse, {}, 97),
        name + " sparse->dense");
    expect_bit_identical(
        batch,
        service::streamed_session_run(
            algorithm, dense, backend_options(StorageBackend::kSparseCsr), 97),
        name + " dense->sparse");
  }
}

struct CappedRun {
  std::vector<service::SubmitOutcome> outcomes;
  std::size_t shed = 0;
  std::size_t backpressured = 0;
  api::RunSummary summary;
};

CappedRun run_capped(const Instance& instance,
                     service::SessionOptions options) {
  service::SchedulerSession session(api::Algorithm::kTheorem1,
                                    instance.num_machines(), options);
  const bool meta_only = options.storage == StorageBackend::kGenerator;
  CappedRun result;
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    if (meta_only) {
      fill_stream_job_meta(instance.job(j), 0.0, &job);
    } else {
      fill_stream_job(instance, j, 0.0, &job);
    }
    // A refused job is dropped, not retried — keeps the accepted arrival
    // sequence a pure function of the outcomes being compared.
    result.outcomes.push_back(session.try_submit(job));
  }
  result.shed = session.num_shed();
  result.backpressured = session.num_backpressured();
  result.summary = session.drain();
  return result;
}

TEST(StreamingSession, OverloadShedsAreByteIdenticalAcrossTheTrio) {
  // Saturation handling must be a function of the arrival sequence alone,
  // never of how p_ij is stored. With a shed budget covering every
  // saturation, all arrivals are accepted (ids stay aligned with the
  // stream), so all THREE backends — generator included — must pick the
  // same shed victims and drain byte-identical.
  workload::ClosedFormConfig config = trio_config(base_seed() + 79, 400, 6);
  config.load = 4.0;  // deep overload: the window must actually saturate
  const auto generator = workload::make_closed_form_generator(config);
  // cap > m guarantees a pending (shed-able) victim at every saturation.
  service::SessionOptions options;
  options.live_window_cap = 8;
  options.shed_budget = 100000;

  const CappedRun dense = run_capped(
      workload::make_closed_form_instance(config, StorageBackend::kDense),
      options);
  options.storage = StorageBackend::kSparseCsr;
  const CappedRun sparse = run_capped(
      workload::make_closed_form_instance(config, StorageBackend::kSparseCsr),
      options);
  options.storage = StorageBackend::kGenerator;
  options.generator = generator;
  const CappedRun generated = run_capped(
      workload::make_closed_form_instance(config, StorageBackend::kGenerator),
      options);

  EXPECT_GT(dense.shed, 0u) << "shed budget never drawn on";
  EXPECT_EQ(dense.backpressured, 0u) << "budget must cover every saturation";
  EXPECT_EQ(dense.outcomes, sparse.outcomes);
  EXPECT_EQ(dense.outcomes, generated.outcomes);
  EXPECT_EQ(dense.shed, sparse.shed);
  EXPECT_EQ(dense.shed, generated.shed);
  EXPECT_EQ(dense.backpressured, sparse.backpressured);
  EXPECT_EQ(dense.backpressured, generated.backpressured);
  expect_bit_identical(dense.summary, sparse.summary, "shed sparse");
  expect_bit_identical(dense.summary, generated.summary, "shed generator");
}

TEST(StreamingSession, BackpressureDropsAreByteIdenticalAcrossMatrixBackends) {
  // Once the shed budget is spent, refusals drop jobs from the stream. The
  // payload-carrying backends must still agree on every outcome and drain
  // byte-identical. The generator backend is out of scope here BY DESIGN: a
  // generator tenant's p_ij is a function of the store-assigned id, and a
  // dropped submission shifts that id space, so no matrix twin of the
  // post-drop stream exists — its overload behaviour is pinned by the
  // all-accepted shed leg above.
  workload::ClosedFormConfig config = trio_config(base_seed() + 79, 400, 6);
  config.load = 4.0;
  service::SessionOptions options;
  options.live_window_cap = 8;
  options.shed_budget = 5;

  const CappedRun dense = run_capped(
      workload::make_closed_form_instance(config, StorageBackend::kDense),
      options);
  options.storage = StorageBackend::kSparseCsr;
  const CappedRun sparse = run_capped(
      workload::make_closed_form_instance(config, StorageBackend::kSparseCsr),
      options);

  EXPECT_GT(dense.backpressured, 0u) << "live_window_cap never saturated";
  EXPECT_GT(dense.shed, 0u) << "shed budget never drawn on";
  EXPECT_EQ(dense.outcomes, sparse.outcomes);
  EXPECT_EQ(dense.shed, sparse.shed);
  EXPECT_EQ(dense.backpressured, sparse.backpressured);
  expect_bit_identical(dense.summary, sparse.summary, "capped sparse");
}

TEST(StreamingSession, ValidateJobDiagnosesMalformedSparseSubmissions) {
  // The sparse submission contract's recoverable diagnostics, mirrored from
  // the store's validator: every structural demand names the offending
  // entry instead of aborting, so multi-tenant frontends can refuse one bad
  // tenant row without dying.
  service::SchedulerSession session(
      api::Algorithm::kTheorem1, 3,
      backend_options(StorageBackend::kSparseCsr));

  StreamJob good;
  good.release = 1.0;
  good.entries = {SparseEntry{0, 1.0}, SparseEntry{2, 2.0}};
  EXPECT_EQ(session.validate_job(good), "");

  StreamJob both_forms = good;
  both_forms.processing = {1.0, 2.0, 3.0};
  EXPECT_NE(session.validate_job(both_forms).find("exactly one payload form"),
            std::string::npos);

  StreamJob empty;
  empty.release = 1.0;
  EXPECT_NE(session.validate_job(empty).find("empty payload"),
            std::string::npos);

  StreamJob out_of_range = good;
  out_of_range.entries = {SparseEntry{0, 1.0}, SparseEntry{5, 1.0}};
  const std::string range_problem = session.validate_job(out_of_range);
  EXPECT_NE(range_problem.find("out of range (store has 3"),
            std::string::npos)
      << range_problem;

  StreamJob duplicate = good;
  duplicate.entries = {SparseEntry{1, 1.0}, SparseEntry{1, 2.0}};
  EXPECT_NE(session.validate_job(duplicate).find("duplicates machine 1"),
            std::string::npos);

  StreamJob descending = good;
  descending.entries = {SparseEntry{2, 1.0}, SparseEntry{1, 2.0}};
  EXPECT_NE(session.validate_job(descending).find("out of order"),
            std::string::npos);

  StreamJob non_positive = good;
  non_positive.entries = {SparseEntry{0, -1.0}};
  EXPECT_NE(session.validate_job(non_positive).find("non-positive or NaN"),
            std::string::npos);

  StreamJob infinite = good;
  infinite.entries = {SparseEntry{0, kTimeInfinity}};
  EXPECT_NE(session.validate_job(infinite).find(
                "not finite (omit ineligible machines)"),
            std::string::npos);

  // Payload-form vs backend mismatches are recoverable too.
  workload::ClosedFormConfig config = trio_config(1, 4, 3);
  service::SchedulerSession generated(
      api::Algorithm::kTheorem1, 3,
      backend_options(StorageBackend::kGenerator,
                      workload::make_closed_form_generator(config)));
  EXPECT_NE(generated.validate_job(good).find("metadata-only submissions"),
            std::string::npos);
  EXPECT_EQ(generated.validate_job(empty), "");
}

TEST(StreamingSession, StoreBackendsServeIdenticalDataAndCollapseBytes) {
  // Store-level equivalence beneath the session wall: the three backends
  // hand every accessor the same doubles, and the compact backends' matrix
  // footprint collapses (generator to zero, restricted CSR to the adjacency
  // fraction). Small blocks force multi-block coverage and retirement.
  const workload::ClosedFormConfig config =
      trio_config(base_seed() + 83, 64, 8);
  const Instance dense_instance =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const auto generator = workload::make_closed_form_generator(config);

  service::StreamingJobStore dense(8, /*jobs_per_block=*/16);
  service::StreamingJobStore sparse(8, 16, StorageBackend::kSparseCsr);
  service::StreamingJobStore generated(8, 16, StorageBackend::kGenerator,
                                       generator);
  StreamJob job;
  for (std::size_t idx = 0; idx < dense_instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    fill_stream_job(dense_instance, j, 0.0, &job);
    dense.append(job);
    sparse.append(job);
    fill_stream_job_meta(dense_instance.job(j), 0.0, &job);
    generated.append(job);
  }

  for (std::size_t idx = 0; idx < dense_instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    EXPECT_EQ(dense.job(j).release, sparse.job(j).release);
    EXPECT_EQ(dense.job(j).release, generated.job(j).release);
    ASSERT_EQ(sparse.eligible_machines(j).size(), 8u);
    ASSERT_EQ(generated.eligible_machines(j).size(), 8u);
    const Work* sparse_values = sparse.csr_values(j);
    const Work* dense_row = dense.processing_row(j);
    const Work* sparse_row = sparse.processing_row(j);
    const float* dense_bounds = dense.bounds_row(j);
    const float* sparse_bounds = sparse.bounds_row(j);
    for (std::size_t i = 0; i < 8; ++i) {
      const auto machine = static_cast<MachineId>(i);
      const Work p = dense.processing_unchecked(machine, j);
      EXPECT_EQ(p, sparse.processing_unchecked(machine, j));
      EXPECT_EQ(p, generated.processing_unchecked(machine, j));
      EXPECT_EQ(p, sparse_values[i]);  // fully eligible: CSR row is dense
      EXPECT_EQ(dense_row[i], sparse_row[i]);
      EXPECT_EQ(dense_bounds[i], sparse_bounds[i]);
    }
    const Work* generated_row = generated.processing_row(j);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(dense.processing_unchecked(static_cast<MachineId>(i), j),
                generated_row[i]);
    }
    EXPECT_EQ(dense.min_processing(j), sparse.min_processing(j));
    EXPECT_EQ(dense.min_processing(j), generated.min_processing(j));
  }

  // The memory story: a generator store never holds matrix bytes; the tile
  // scratch is excluded by contract.
  EXPECT_EQ(generated.matrix_bytes(), 0u);
  EXPECT_EQ(generated.matrix_peak_bytes(), 0u);
  EXPECT_GT(dense.matrix_bytes(), 0u);
  EXPECT_GT(sparse.matrix_bytes(), 0u);

  // Retiring whole blocks hands their payload back and the peak stands.
  const std::size_t dense_before = dense.matrix_bytes();
  dense.retire_below(32);
  sparse.retire_below(32);
  EXPECT_LT(dense.matrix_bytes(), dense_before);
  EXPECT_GE(dense.matrix_peak_bytes(), dense_before);

  // A restricted family's CSR store holds ~the eligibility fraction of its
  // dense twin's bytes (eligibility 0.25 here, bound generously at 1/2).
  const workload::ClosedFormConfig restricted =
      trio_config(base_seed() + 89, 64, 32, /*eligibility=*/0.25);
  const Instance restricted_sparse = workload::make_closed_form_instance(
      restricted, StorageBackend::kSparseCsr);
  service::StreamingJobStore wide_dense(32);
  service::StreamingJobStore wide_sparse(32, 4096,
                                         StorageBackend::kSparseCsr);
  for (std::size_t idx = 0; idx < restricted_sparse.num_jobs(); ++idx) {
    fill_stream_job(restricted_sparse, static_cast<JobId>(idx), 0.0, &job);
    wide_dense.append(job);
    wide_sparse.append(job);
  }
  EXPECT_LT(wide_sparse.matrix_peak_bytes(),
            wide_dense.matrix_peak_bytes() / 2)
      << "sparse " << wide_sparse.matrix_peak_bytes() << " vs dense "
      << wide_dense.matrix_peak_bytes();
}

TEST(ShardDriver, ThreadCountNeverChangesAnyTenantsOutcome) {
  constexpr std::size_t kShards = 4;
  std::vector<Instance> tenants;
  for (std::size_t s = 0; s < kShards; ++s) {
    tenants.push_back(make_workload(
        s % 2 == 0 ? Family::kDense : Family::kRestricted,
        base_seed() + 100 + s, 250, 4));
  }

  auto run_driver = [&](std::size_t threads) {
    service::ShardDriverOptions options;
    options.threads = threads;
    service::ShardDriver driver(api::Algorithm::kTheorem1, kShards, 4, options);
    // Feed round-robin across tenants in small waves, pumping between
    // waves, the way a frontend ingest loop would.
    for (std::size_t wave = 0; wave < 25; ++wave) {
      for (std::size_t s = 0; s < kShards; ++s) {
        const Instance& instance = tenants[s];
        for (std::size_t k = wave * 10; k < (wave + 1) * 10; ++k) {
          if (k >= instance.num_jobs()) break;
          driver.submit(s, make_stream_job(instance, static_cast<JobId>(k)));
        }
      }
      driver.pump();
    }
    return driver.drain_all();
  };

  const std::vector<api::RunSummary> serial = run_driver(1);
  const std::vector<api::RunSummary> parallel = run_driver(8);
  ASSERT_EQ(serial.size(), kShards);
  ASSERT_EQ(parallel.size(), kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    expect_bit_identical(serial[s], parallel[s],
                         "shard " + std::to_string(s));
    // And each tenant's outcome equals a dedicated single-tenant session's.
    const api::RunSummary solo =
        service::streamed_run(api::Algorithm::kTheorem1, tenants[s], {}, 10);
    expect_bit_identical(solo, parallel[s], "shard vs solo " + std::to_string(s));
  }
}

TEST(ShardDriver, FlushWithoutSyncOverlapsAndStaysDeterministic) {
  // The non-blocking path: flush() hands waves to the persistent workers
  // while the producer immediately stages the next wave; sync() only at
  // the end. Outcomes must equal the pump()-per-wave driving and the
  // dedicated single-tenant session.
  constexpr std::size_t kShards = 3;
  std::vector<Instance> tenants;
  for (std::size_t s = 0; s < kShards; ++s) {
    tenants.push_back(make_workload(Family::kDense, base_seed() + 500 + s, 300, 4));
  }

  service::ShardDriverOptions options;
  options.threads = 3;
  service::ShardDriver driver(api::Algorithm::kTheorem1, kShards, 4, options);
  EXPECT_GT(driver.worker_count(), 0u) << "threads=3 should run real workers";
  for (std::size_t wave = 0; wave < 30; ++wave) {
    for (std::size_t s = 0; s < kShards; ++s) {
      const Instance& instance = tenants[s];
      for (std::size_t k = wave * 10; k < (wave + 1) * 10; ++k) {
        if (k >= instance.num_jobs()) break;
        driver.submit(s, make_stream_job(instance, static_cast<JobId>(k)));
      }
    }
    driver.flush();  // no sync: workers chew while we stage the next wave
  }
  driver.sync();
  const std::vector<api::RunSummary> results = driver.drain_all();
  ASSERT_EQ(results.size(), kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    const api::RunSummary solo =
        service::streamed_run(api::Algorithm::kTheorem1, tenants[s], {}, 10);
    expect_bit_identical(solo, results[s], "flushed shard " + std::to_string(s));
  }
}

TEST(ShardDriver, SingleWorkerResolvesToInlineMode) {
  service::ShardDriverOptions options;
  options.threads = 1;
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 4, 2, options);
  EXPECT_EQ(driver.worker_count(), 0u)
      << "one worker buys no parallelism; the driver must run inline";
}

TEST(ShardDriver, RoutesKeysStablyAcrossAllShards) {
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 8, 2);
  std::vector<bool> hit(8, false);
  for (std::uint64_t key = 0; key < 256; ++key) {
    const std::size_t shard = driver.shard_for(key);
    ASSERT_LT(shard, 8u);
    EXPECT_EQ(shard, driver.shard_for(key));  // stable
    hit[shard] = true;
  }
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(hit[s]) << "shard " << s << " never targeted by 256 keys";
  }
}

}  // namespace
}  // namespace osched
