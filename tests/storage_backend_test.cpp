// Differential wall for the pluggable processing-time storage.
//
// The contract under test: an Instance's storage backend (dense flat
// matrix, sparse CSR over the eligibility adjacency, closed-form generator)
// is INVISIBLE to scheduling — every policy makes bit-identical decisions
// (same schedule under a zero-tolerance diff, same counters, same
// certificates, double for double) over all backends of the same workload,
// for every family, eligibility density, machine count and seed. Plus the
// CSR edge cases (single-eligible-machine jobs, the uint16 → uint32
// order-width boundary at m = 65535/65536/65537), the façade accessor
// equivalences the checkers/metrics rely on, and the generated family's
// materialize-vs-synthesize bit equality.
//
// The rotating OSCHED_FUZZ_SEED hook lets CI explore fresh instances every
// run, reproducibly. `ctest -L backend-matrix` selects this wall.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/flow/rejection_flow.hpp"
#include "duality/flow_dual_check.hpp"
#include "fuzz_seed.hpp"
#include "instance/builders.hpp"
#include "instance/processing_store.hpp"
#include "sim/schedule_io.hpp"
#include "workload/generated_family.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("storage_backend_test", 1811);
}

Instance make_workload(double eligibility, std::uint64_t seed, std::size_t n,
                       std::size_t m) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.2;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  if (eligibility < 1.0) {
    config.machines.model = workload::MachineModel::kRestricted;
    config.machines.eligibility = eligibility;
  }
  return workload::generate_workload(config);
}

void expect_same_schedule(const Schedule& a, const Schedule& b,
                          const std::string& context) {
  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;  // byte-identical, not tolerance-equal
  const auto diffs = diff_schedules(a, b, strict);
  ASSERT_TRUE(diffs.empty()) << context << ": " << diffs.size()
                             << " schedule diffs; first: " << diffs.front();
}

void expect_same_summary(const api::RunSummary& a, const api::RunSummary& b,
                         const std::string& context) {
  expect_same_schedule(a.schedule, b.schedule, context);
  EXPECT_EQ(a.report.num_completed, b.report.num_completed) << context;
  EXPECT_EQ(a.report.num_rejected, b.report.num_rejected) << context;
  EXPECT_EQ(a.report.total_flow, b.report.total_flow) << context;
  EXPECT_EQ(a.report.total_weighted_flow, b.report.total_weighted_flow)
      << context;
  EXPECT_EQ(a.report.makespan, b.report.makespan) << context;
  EXPECT_EQ(a.certified_lower_bound, b.certified_lower_bound) << context;
  EXPECT_EQ(a.rule1_rejections, b.rule1_rejections) << context;
  EXPECT_EQ(a.rule2_rejections, b.rule2_rejections) << context;
}

// Every streamable-or-batch policy that reads the store on its hot path.
const api::Algorithm kAlgorithms[] = {
    api::Algorithm::kTheorem1,  api::Algorithm::kTheorem2,
    api::Algorithm::kWeightedExt, api::Algorithm::kGreedySpt,
    api::Algorithm::kFifo,      api::Algorithm::kImmediateReject,
};

// ------------------------------------------------------ dense == sparse

TEST(StorageBackend, SparseMatchesDenseAcrossPoliciesDensitiesSeeds) {
  const double densities[] = {1.0, 0.5, 0.1};
  for (double density : densities) {
    for (std::uint64_t round = 0; round < 2; ++round) {
      const std::uint64_t seed = base_seed() + 101 * round;
      const Instance dense = make_workload(density, seed, 500, 16);
      const Instance sparse = dense.with_backend(StorageBackend::kSparseCsr);
      ASSERT_EQ(sparse.backend(), StorageBackend::kSparseCsr);
      ASSERT_LT(sparse.store_bytes(), dense.store_bytes() + 1);
      for (api::Algorithm algorithm : kAlgorithms) {
        const std::string context = std::string(api::to_string(algorithm)) +
                                    " density=" + std::to_string(density) +
                                    " seed=" + std::to_string(seed);
        const api::RunSummary a = api::run(algorithm, dense);
        const api::RunSummary b = api::run(algorithm, sparse);
        expect_same_summary(a, b, context);
      }
    }
  }
}

TEST(StorageBackend, SparseRoundTripsBackToDense) {
  const Instance dense = make_workload(0.3, base_seed() + 7, 200, 9);
  const Instance sparse = dense.with_backend(StorageBackend::kSparseCsr);
  const Instance back = sparse.with_backend(StorageBackend::kDense);
  ASSERT_EQ(back.num_jobs(), dense.num_jobs());
  for (std::size_t j = 0; j < dense.num_jobs(); ++j) {
    for (std::size_t i = 0; i < dense.num_machines(); ++i) {
      EXPECT_EQ(back.processing(static_cast<MachineId>(i),
                                static_cast<JobId>(j)),
                dense.processing(static_cast<MachineId>(i),
                                 static_cast<JobId>(j)))
          << "entry (" << i << ", " << j << ")";
    }
  }
}

// --------------------------------------------- generator == dense == sparse

TEST(StorageBackend, GeneratorMatchesMaterializedBackends) {
  workload::ClosedFormConfig config;
  config.num_jobs = 400;
  config.num_machines = 24;
  config.seed = base_seed() + 31;
  const Instance gen =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  const Instance dense =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const Instance sparse =
      workload::make_closed_form_instance(config, StorageBackend::kSparseCsr);

  // The closed form materializes to the same doubles it synthesizes.
  for (std::size_t j = 0; j < config.num_jobs; j += 17) {
    for (std::size_t i = 0; i < config.num_machines; ++i) {
      const auto machine = static_cast<MachineId>(i);
      const auto job = static_cast<JobId>(j);
      EXPECT_EQ(gen.processing(machine, job), dense.processing(machine, job));
      EXPECT_EQ(gen.processing(machine, job), sparse.processing(machine, job));
    }
  }

  for (api::Algorithm algorithm : kAlgorithms) {
    const std::string context = std::string(api::to_string(algorithm));
    const api::RunSummary d = api::run(algorithm, dense);
    expect_same_summary(api::run(algorithm, gen), d, context + " gen-vs-dense");
    expect_same_summary(api::run(algorithm, sparse), d,
                        context + " sparse-vs-dense");
  }
}

TEST(StorageBackend, GeneratorViewServesRowsAndBounds) {
  workload::ClosedFormConfig config;
  config.num_jobs = 64;
  config.num_machines = 11;
  config.seed = base_seed() + 97;
  const Instance gen =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  const GeneratorStoreView view(gen);
  EXPECT_EQ(view.p_order_row(0), nullptr);
  for (std::size_t j = 0; j < config.num_jobs; ++j) {
    const auto job = static_cast<JobId>(j);
    const Work* row = view.processing_row(job);
    const float* bounds = view.bounds_row(job);
    ASSERT_EQ(view.eligible_machines(job).size(), config.num_machines);
    for (std::size_t i = 0; i < config.num_machines; ++i) {
      EXPECT_EQ(row[i], workload::closed_form_entry(config, job,
                                                    static_cast<MachineId>(i)));
      EXPECT_EQ(bounds[i], float_lower(row[i]));
    }
  }
}

// ------------------------------------------------- the dual-check template

TEST(StorageBackend, FlowDualCheckerAgreesAcrossBackends) {
  // Restricted family: the checker must produce the SAME report from every
  // backend (the feasibility VERDICT on restricted instances is the
  // algorithm's business, not storage's — see the full-eligibility case
  // below for the Lemma 4 assertion).
  const Instance dense = make_workload(0.4, base_seed() + 5, 300, 8);
  const Instance sparse = dense.with_backend(StorageBackend::kSparseCsr);
  const RejectionFlowOptions options{.epsilon = 0.25};
  const RejectionFlowResult result = run_rejection_flow(dense, options);
  const RejectionFlowResult sparse_result = run_rejection_flow(sparse, options);

  const DualCheckReport a = check_flow_dual_feasibility(dense, result, 0.25);
  const DualCheckReport b =
      check_flow_dual_feasibility(sparse, sparse_result, 0.25);
  EXPECT_EQ(a.max_violation, b.max_violation);
  EXPECT_EQ(a.constraints_checked, b.constraints_checked);

  // The per-backend views satisfy the checker's Store contract directly.
  const SparseStoreView view(sparse);
  const DualCheckReport c =
      check_flow_dual_feasibility(view, sparse_result, 0.25);
  EXPECT_EQ(a.max_violation, c.max_violation);

  // Full eligibility: Lemma 4 feasibility holds and every backend of the
  // closed-form family reports it identically.
  workload::ClosedFormConfig config;
  config.num_jobs = 300;
  config.num_machines = 8;
  config.seed = base_seed() + 23;
  const Instance gd =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const Instance gg =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  const RejectionFlowResult rd = run_rejection_flow(gd, options);
  const RejectionFlowResult rg = run_rejection_flow(gg, options);
  const DualCheckReport fd = check_flow_dual_feasibility(gd, rd, 0.25);
  const DualCheckReport fg = check_flow_dual_feasibility(gg, rg, 0.25);
  EXPECT_TRUE(fd.feasible()) << fd.max_violation;
  EXPECT_EQ(fd.max_violation, fg.max_violation);
  EXPECT_EQ(fd.constraints_checked, fg.constraints_checked);
}

// ------------------------------------------------------------- edge cases

TEST(StorageBackend, SingleEligibleMachineJobs) {
  // Every job can run on exactly one machine: CSR rows of length 1, the
  // dispatch has no choice, and both backends must agree anyway.
  std::vector<Job> jobs;
  std::vector<std::vector<SparseEntry>> rows;
  for (std::size_t j = 0; j < 40; ++j) {
    Job job;
    job.id = static_cast<JobId>(j);
    job.release = 0.25 * static_cast<double>(j);
    job.weight = 1.0;
    jobs.push_back(job);
    rows.push_back({SparseEntry{static_cast<MachineId>(j % 5),
                                1.0 + 0.125 * static_cast<double>(j % 7)}});
  }
  const Instance sparse = Instance::from_sparse_rows(jobs, 5, rows);
  ASSERT_TRUE(sparse.validate().empty()) << sparse.validate();
  for (std::size_t j = 0; j < 40; ++j) {
    EXPECT_EQ(sparse.eligible_machines(static_cast<JobId>(j)).size(), 1u);
  }
  const Instance dense = sparse.with_backend(StorageBackend::kDense);
  const api::RunSummary a = api::run(api::Algorithm::kTheorem1, sparse);
  const api::RunSummary b = api::run(api::Algorithm::kTheorem1, dense);
  expect_same_summary(a, b, "single-eligible");
}

TEST(StorageBackend, OrderWidthBoundaryAcrossMatrixBackends) {
  // m = 65535 is the last machine count with uint16 order-table ids;
  // 65536/65537 widen to uint32. Every cell must build the table at the
  // right width in BOTH matrix backends and agree with dense bit for bit.
  for (const std::size_t m :
       {std::size_t{65535}, std::size_t{65536}, std::size_t{65537}}) {
    std::vector<Job> jobs;
    std::vector<std::vector<SparseEntry>> rows;
    for (std::size_t j = 0; j < 6; ++j) {
      Job job;
      job.id = static_cast<JobId>(j);
      job.release = static_cast<double>(j);
      job.weight = 1.0;
      jobs.push_back(job);
      // A handful of eligible machines spread across the id range,
      // including the very last machine (the id that overflows uint16
      // once m > 65536).
      std::vector<SparseEntry> row;
      row.push_back(SparseEntry{static_cast<MachineId>(j), 2.0});
      row.push_back(SparseEntry{static_cast<MachineId>(30000 + 7 * j), 1.5});
      row.push_back(SparseEntry{static_cast<MachineId>(m - 1), 3.0});
      rows.push_back(std::move(row));
    }
    const Instance sparse =
        Instance::from_sparse_rows(jobs, m, std::move(rows));
    ASSERT_TRUE(sparse.validate().empty()) << sparse.validate();
    const int expect_width = m < 65536 ? 16 : 32;
    const Instance dense = sparse.with_backend(StorageBackend::kDense);
    for (const Instance* instance : {&sparse, &dense}) {
      EXPECT_TRUE(instance->dispatch_index_active()) << "m=" << m;
      EXPECT_EQ(instance->dispatch_order_width(), expect_width) << "m=" << m;
    }
    // Both widths remain order-table-equal across backends: the CSR-shaped
    // tables must rank the same machines identically.
    for (std::size_t j = 0; j < 6; ++j) {
      const auto job = static_cast<JobId>(j);
      const std::size_t count = sparse.eligible_machines(job).size();
      if (expect_width == 16) {
        const std::uint16_t* oa = dense.p_order_row(job);
        const std::uint16_t* ob = sparse.p_order_row(job);
        ASSERT_TRUE(oa != nullptr && ob != nullptr) << "m=" << m;
        for (std::size_t k = 0; k < count; ++k) EXPECT_EQ(oa[k], ob[k]);
      } else {
        const std::uint32_t* oa = dense.p_order32_row(job);
        const std::uint32_t* ob = sparse.p_order32_row(job);
        ASSERT_TRUE(oa != nullptr && ob != nullptr) << "m=" << m;
        for (std::size_t k = 0; k < count; ++k) EXPECT_EQ(oa[k], ob[k]);
      }
    }
    expect_same_summary(api::run(api::Algorithm::kTheorem1, sparse),
                        api::run(api::Algorithm::kTheorem1, dense),
                        "width boundary m=" + std::to_string(m));
    // And the indexed table (either width) stays bit-identical to the
    // exhaustive linear scan, the mode with no order table at all.
    RejectionFlowOptions indexed;
    indexed.epsilon = 0.5;
    RejectionFlowOptions linear = indexed;
    linear.dispatch = DispatchMode::kLinearScan;
    expect_same_schedule(run_rejection_flow(sparse, indexed).schedule,
                         run_rejection_flow(sparse, linear).schedule,
                         "vs linear m=" + std::to_string(m));
  }
}

TEST(StorageBackend, OrderWidthBoundaryGeneratorAgrees) {
  // The generator backend never builds an order table — at the huge-m
  // boundary its order-less dispatch must still match the dense twin's
  // uint32-indexed dispatch decision for decision. Fully eligible closed
  // form, tiny n so the dense materialization stays a few megabytes.
  workload::ClosedFormConfig config;
  config.num_jobs = 6;
  config.num_machines = 65536;
  config.seed = base_seed() + 65;
  const Instance gen =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  const Instance dense =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  EXPECT_EQ(gen.dispatch_order_width(), 0);
  EXPECT_EQ(dense.dispatch_order_width(), 32);
  expect_same_summary(api::run(api::Algorithm::kTheorem1, gen),
                      api::run(api::Algorithm::kTheorem1, dense),
                      "generator at the width boundary");
}

TEST(StorageBackend, SparseValidationCatchesMalformedRows) {
  std::vector<Job> jobs(1);
  jobs[0].id = 0;
  jobs[0].release = 0.0;
  jobs[0].weight = 1.0;
  {
    // Non-positive entry.
    const Instance bad = Instance::from_sparse_rows(
        jobs, 3, {{SparseEntry{1, 0.0}}});
    EXPECT_NE(bad.validate().find("non-positive"), std::string::npos)
        << bad.validate();
  }
  {
    // Infinite entry (ineligible machines must be omitted, not listed).
    const Instance bad = Instance::from_sparse_rows(
        jobs, 3, {{SparseEntry{1, kTimeInfinity}}});
    EXPECT_NE(bad.validate().find("not finite"), std::string::npos)
        << bad.validate();
  }
  {
    // Empty row = no eligible machine.
    const Instance bad = Instance::from_sparse_rows(jobs, 3, {{}});
    EXPECT_NE(bad.validate().find("no eligible machine"), std::string::npos)
        << bad.validate();
  }
}

TEST(StorageBackend, FacadeAccessorsAgree) {
  const Instance dense = make_workload(0.3, base_seed() + 13, 120, 7);
  const Instance sparse = dense.with_backend(StorageBackend::kSparseCsr);
  EXPECT_EQ(dense.processing_spread(), sparse.processing_spread());
  EXPECT_EQ(dense.total_weight(), sparse.total_weight());
  for (std::size_t j = 0; j < dense.num_jobs(); ++j) {
    const auto job = static_cast<JobId>(j);
    EXPECT_EQ(dense.min_processing(job), sparse.min_processing(job));
    const auto a = dense.eligible_machines(job);
    const auto b = sparse.eligible_machines(job);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a.first[k], b.first[k]);
    }
    // The order tables are CSR-shaped in both backends and must match.
    const std::uint16_t* oa = dense.p_order_row(job);
    const std::uint16_t* ob = sparse.p_order_row(job);
    ASSERT_TRUE(oa != nullptr && ob != nullptr);
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(oa[k], ob[k]);
    }
    for (std::size_t i = 0; i < dense.num_machines(); ++i) {
      EXPECT_EQ(dense.processing(static_cast<MachineId>(i), job),
                sparse.processing(static_cast<MachineId>(i), job));
    }
  }
}

TEST(StorageBackend, DispatchIndexFlagTracksTheOrderTable) {
  // RunSummary::dispatch_index_active surfaces whether the (p, id) order
  // table backed the run — true for the matrix backends (below the uint16
  // ceiling; dispatch_index_test covers the boundary), false for the
  // generator backend, which never builds one.
  workload::ClosedFormConfig config;
  config.num_jobs = 60;
  config.num_machines = 6;
  config.seed = base_seed() + 53;
  const Instance dense =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const Instance sparse =
      workload::make_closed_form_instance(config, StorageBackend::kSparseCsr);
  const Instance gen =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  EXPECT_TRUE(dense.dispatch_index_active());
  EXPECT_TRUE(sparse.dispatch_index_active());
  EXPECT_FALSE(gen.dispatch_index_active());
  EXPECT_TRUE(
      api::run(api::Algorithm::kGreedySpt, dense).dispatch_index_active);
  EXPECT_FALSE(
      api::run(api::Algorithm::kGreedySpt, gen).dispatch_index_active);

  // The shared closed form is reachable for streaming handoff (and only
  // from the backend that has one).
  EXPECT_NE(gen.shared_generator(), nullptr);
  EXPECT_DEATH(dense.shared_generator(), "");
}

TEST(StorageBackend, StoreBytesCollapseForSparseFamilies) {
  workload::ClosedFormConfig config;
  config.num_jobs = 2000;
  config.num_machines = 64;
  config.eligibility = 0.0625;
  config.seed = base_seed() + 41;
  const Instance dense =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const Instance sparse =
      workload::make_closed_form_instance(config, StorageBackend::kSparseCsr);
  EXPECT_GE(dense.store_bytes(), 4 * sparse.store_bytes())
      << "dense " << dense.store_bytes() << " vs sparse "
      << sparse.store_bytes();

  config.eligibility = 1.0;
  const Instance gen =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  const Instance gen_dense =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  EXPECT_GE(gen_dense.store_bytes(), 4 * gen.store_bytes());
}

}  // namespace
}  // namespace osched
