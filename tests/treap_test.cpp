// Unit + property tests for the augmented treap that backs the pending
// queues of the flow scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <vector>

#include "util/augmented_treap.hpp"
#include "util/rng.hpp"

namespace osched::util {
namespace {

struct Key {
  double p;
  int id;
  bool operator<(const Key& other) const {
    if (p != other.p) return p < other.p;
    return id < other.id;
  }
  bool operator==(const Key& other) const { return p == other.p && id == other.id; }
};

struct GetP {
  double operator()(const Key& k) const { return k.p; }
};

using Treap = AugmentedTreap<Key, GetP>;

TEST(Treap, EmptyInvariants) {
  Treap treap;
  EXPECT_TRUE(treap.empty());
  EXPECT_EQ(treap.size(), 0u);
  EXPECT_DOUBLE_EQ(treap.total_weight(), 0.0);
  EXPECT_FALSE(treap.min().has_value());
  EXPECT_FALSE(treap.max().has_value());
}

TEST(Treap, InsertEraseContains) {
  Treap treap;
  treap.insert({3.0, 1});
  treap.insert({1.0, 2});
  treap.insert({2.0, 3});
  EXPECT_EQ(treap.size(), 3u);
  EXPECT_TRUE(treap.contains({2.0, 3}));
  EXPECT_FALSE(treap.contains({2.0, 4}));
  EXPECT_TRUE(treap.erase({2.0, 3}));
  EXPECT_FALSE(treap.erase({2.0, 3}));
  EXPECT_EQ(treap.size(), 2u);
}

TEST(Treap, MinMaxAndPopMin) {
  Treap treap;
  treap.insert({5.0, 1});
  treap.insert({2.0, 2});
  treap.insert({9.0, 3});
  EXPECT_EQ(treap.min()->id, 2);
  EXPECT_EQ(treap.max()->id, 3);
  const Key popped = treap.pop_min();
  EXPECT_EQ(popped.id, 2);
  EXPECT_EQ(treap.min()->id, 1);
}

TEST(Treap, TiesBrokenById) {
  Treap treap;
  treap.insert({1.0, 7});
  treap.insert({1.0, 3});
  treap.insert({1.0, 5});
  EXPECT_EQ(treap.min()->id, 3);
  EXPECT_EQ(treap.max()->id, 7);
  // stats_less for (1.0, 5): keys (1.0,3) only.
  const auto stats = treap.stats_less({1.0, 5});
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.weight, 1.0);
}

TEST(Treap, PrefixStats) {
  Treap treap;
  for (int i = 1; i <= 10; ++i) treap.insert({static_cast<double>(i), i});
  const auto stats = treap.stats_less({5.5, 0});
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.weight, 1 + 2 + 3 + 4 + 5);
  EXPECT_DOUBLE_EQ(treap.total_weight(), 55.0);
}

TEST(Treap, ForEachInOrder) {
  Treap treap;
  treap.insert({3.0, 1});
  treap.insert({1.0, 2});
  treap.insert({2.0, 3});
  std::vector<double> seen;
  treap.for_each([&](const Key& k) { seen.push_back(k.p); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Treap, ClearResets) {
  Treap treap;
  treap.insert({1.0, 1});
  treap.clear();
  EXPECT_TRUE(treap.empty());
  treap.insert({2.0, 2});
  EXPECT_EQ(treap.size(), 1u);
}

// Property test: the treap agrees with a std::set reference model under a
// random workload of inserts, erases, pops and prefix queries.
TEST(TreapProperty, AgreesWithReferenceModel) {
  Rng rng(12345);
  Treap treap;
  std::set<Key> model;

  for (int step = 0; step < 20000; ++step) {
    const double op = rng.next_double();
    if (op < 0.5 || model.empty()) {
      Key k{static_cast<double>(rng.uniform_int(0, 300)), step};
      treap.insert(k);
      model.insert(k);
    } else if (op < 0.7) {
      // Erase a uniformly chosen existing element.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.index(model.size())));
      ASSERT_TRUE(treap.erase(*it));
      model.erase(it);
    } else if (op < 0.8) {
      const Key popped = treap.pop_min();
      ASSERT_EQ(popped.id, model.begin()->id);
      model.erase(model.begin());
    } else {
      // Prefix query at a random probe key.
      Key probe{static_cast<double>(rng.uniform_int(0, 300)), static_cast<int>(rng.uniform_int(0, 20000))};
      const auto stats = treap.stats_less(probe);
      std::size_t count = 0;
      double weight = 0.0;
      for (const Key& k : model) {
        if (k < probe) {
          ++count;
          weight += k.p;
        }
      }
      ASSERT_EQ(stats.count, count);
      ASSERT_NEAR(stats.weight, weight, 1e-9);
    }

    ASSERT_EQ(treap.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(treap.min()->id, model.begin()->id);
      ASSERT_EQ(treap.max()->id, model.rbegin()->id);
    }
  }
}

TEST(Treap, KthMatchesInOrderPosition) {
  Rng rng(777);
  Treap treap;
  std::vector<Key> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back({static_cast<double>(rng.uniform_int(0, 100)), i});
  }
  rng.shuffle(keys);
  for (const Key& k : keys) treap.insert(k);
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(treap.kth(i).id, keys[i].id) << "position " << i;
  }
}

// Differential test against a std::multiset + prefix-sum reference model:
// every query (stats_less, kth, min, max, total_weight) is checked against
// the ordered reference under a random insert/erase/pop workload.
TEST(TreapProperty, DifferentialAgainstMultisetReference) {
  Rng rng(424242);
  Treap treap;
  std::multiset<Key> model;  // keys are unique; multiset exercises the
                             // reference's ordering semantics anyway
  double weight_sum = 0.0;

  for (int step = 0; step < 30000; ++step) {
    const double op = rng.next_double();
    if (op < 0.45 || model.empty()) {
      Key k{static_cast<double>(rng.uniform_int(0, 400)), step};
      treap.insert(k);
      model.insert(k);
      weight_sum += k.p;
    } else if (op < 0.6) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.index(model.size())));
      weight_sum -= it->p;
      ASSERT_TRUE(treap.erase(*it));
      model.erase(it);
    } else if (op < 0.7) {
      const Key popped = treap.pop_min();
      ASSERT_EQ(popped.id, model.begin()->id);
      weight_sum -= model.begin()->p;
      model.erase(model.begin());
    } else if (op < 0.85) {
      Key probe{static_cast<double>(rng.uniform_int(0, 400)),
                static_cast<int>(rng.uniform_int(0, 30000))};
      const auto stats = treap.stats_less(probe);
      std::size_t count = 0;
      double weight = 0.0;
      for (const Key& k : model) {
        if (!(k < probe)) break;  // model iterates in order
        ++count;
        weight += k.p;
      }
      ASSERT_EQ(stats.count, count);
      ASSERT_NEAR(stats.weight, weight, 1e-9);
    } else {
      const std::size_t target = rng.index(model.size());
      auto it = model.begin();
      std::advance(it, static_cast<long>(target));
      ASSERT_EQ(treap.kth(target).id, it->id);
    }

    ASSERT_EQ(treap.size(), model.size());
    ASSERT_NEAR(treap.total_weight(), weight_sum, 1e-6);
    if (!model.empty()) {
      ASSERT_EQ(treap.min()->id, model.begin()->id);
      ASSERT_EQ(treap.max()->id, model.rbegin()->id);
    }
  }
}

// Heavy churn must recycle arena slots through the free list instead of
// growing the node vector: the arena never exceeds the peak live size.
TEST(TreapProperty, FreeListReusesSlotsUnderChurn) {
  Rng rng(555);
  Treap treap;
  constexpr std::size_t kPeak = 1000;
  std::vector<Key> live;
  int next_id = 0;

  for (std::size_t i = 0; i < kPeak; ++i) {
    Key k{rng.uniform(0.0, 100.0), next_id++};
    treap.insert(k);
    live.push_back(k);
  }
  EXPECT_EQ(treap.arena_slots(), kPeak);

  // 20 waves: drain half, refill to the peak; the arena must not grow.
  for (int wave = 0; wave < 20; ++wave) {
    rng.shuffle(live);
    for (std::size_t i = 0; i < kPeak / 2; ++i) {
      ASSERT_TRUE(treap.erase(live.back()));
      live.pop_back();
    }
    while (live.size() < kPeak) {
      Key k{rng.uniform(0.0, 100.0), next_id++};
      treap.insert(k);
      live.push_back(k);
    }
    ASSERT_EQ(treap.size(), kPeak);
    ASSERT_EQ(treap.arena_slots(), kPeak) << "arena grew on wave " << wave;
  }

  // Full drain + refill still reuses the same slots.
  while (!live.empty()) {
    ASSERT_TRUE(treap.erase(live.back()));
    live.pop_back();
  }
  EXPECT_TRUE(treap.empty());
  for (std::size_t i = 0; i < kPeak; ++i) {
    treap.insert({rng.uniform(0.0, 100.0), next_id++});
  }
  EXPECT_EQ(treap.arena_slots(), kPeak);
}

TEST(TreapProperty, TotalWeightTracksSum) {
  Rng rng(999);
  Treap treap;
  double sum = 0.0;
  std::vector<Key> keys;
  for (int i = 0; i < 5000; ++i) {
    Key k{rng.uniform(0.0, 10.0), i};
    treap.insert(k);
    keys.push_back(k);
    sum += k.p;
  }
  EXPECT_NEAR(treap.total_weight(), sum, 1e-6);
  rng.shuffle(keys);
  for (std::size_t i = 0; i < 2500; ++i) {
    ASSERT_TRUE(treap.erase(keys[i]));
    sum -= keys[i].p;
  }
  EXPECT_NEAR(treap.total_weight(), sum, 1e-6);
  EXPECT_EQ(treap.size(), 2500u);
}

}  // namespace
}  // namespace osched::util
