// Cross-module integration tests: full pipelines (generate -> schedule ->
// validate -> evaluate -> serialize -> reload -> re-run), determinism, and
// post-hoc structural invariants of the schedulers (work conservation,
// non-preemption) re-derived from schedule records alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "api/scheduler_api.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/energy_flow/energy_flow.hpp"
#include "core/flow/rejection_flow.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "instance/builders.hpp"
#include "metrics/metrics.hpp"
#include "sim/schedule_io.hpp"
#include "sim/validator.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace osched {
namespace {

// Work conservation: a machine never idles while a job dispatched to it is
// released and waiting. Verified purely from the schedule record.
void expect_work_conserving(const Schedule& schedule, const Instance& instance) {
  struct Exec {
    Time start, end;
    JobId job;
  };
  std::map<MachineId, std::vector<Exec>> by_machine;
  for (std::size_t idx = 0; idx < schedule.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    const JobRecord& rec = schedule.record(j);
    if (rec.started) {
      by_machine[rec.machine].push_back({rec.start, rec.end, j});
    }
  }
  for (auto& [machine, execs] : by_machine) {
    std::sort(execs.begin(), execs.end(),
              [](const Exec& a, const Exec& b) { return a.start < b.start; });
    for (std::size_t k = 0; k < execs.size(); ++k) {
      // Gap before execs[k] (from previous end, or from 0).
      const Time gap_begin = k == 0 ? 0.0 : execs[k - 1].end;
      const Time gap_end = execs[k].start;
      if (gap_end <= gap_begin + 1e-9) continue;
      // No job dispatched to this machine may be released strictly inside
      // the gap's interior long before the next start... more precisely the
      // job that starts at gap_end must have been released at gap_end (or
      // the gap must be justified by no released pending job).
      for (std::size_t idx = 0; idx < schedule.num_jobs(); ++idx) {
        const auto j = static_cast<JobId>(idx);
        const JobRecord& rec = schedule.record(j);
        if (rec.machine != machine || !rec.started) continue;
        if (rec.start < gap_end - 1e-9) continue;  // started before/at gap end
        // Job starts at or after gap end: it must not have been available
        // throughout the gap.
        EXPECT_GE(instance.job(j).release, gap_end - 1e-6)
            << "machine " << machine << " idled in [" << gap_begin << ","
            << gap_end << ") while job " << j << " (release "
            << instance.job(j).release << ") was waiting";
      }
    }
  }
}

Instance standard_workload(std::uint64_t seed, bool deadlines = false) {
  workload::WorkloadConfig config;
  config.num_jobs = 300;
  config.num_machines = 4;
  config.load = 1.1;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.weights = workload::WeightDistribution::kUniform;
  config.with_deadlines = deadlines;
  config.seed = seed;
  return workload::generate_workload(config);
}

TEST(Integration, FlowPipelineEndToEnd) {
  const Instance instance = standard_workload(101);
  const auto result = run_rejection_flow(instance, {.epsilon = 0.25});
  check_schedule(result.schedule, instance);
  expect_work_conserving(result.schedule, instance);

  const ObjectiveReport report = evaluate(result.schedule, instance);
  EXPECT_EQ(report.num_completed + report.num_rejected, instance.num_jobs());
  EXPECT_GT(report.total_flow, 0.0);
  EXPECT_GE(report.max_flow, report.total_flow / instance.num_jobs());
}

TEST(Integration, SchedulersAreDeterministic) {
  const Instance instance = standard_workload(202);
  const auto a = run_rejection_flow(instance, {.epsilon = 0.3});
  const auto b = run_rejection_flow(instance, {.epsilon = 0.3});
  ASSERT_EQ(a.schedule.num_jobs(), b.schedule.num_jobs());
  for (std::size_t j = 0; j < a.schedule.num_jobs(); ++j) {
    const auto& ra = a.schedule.record(static_cast<JobId>(j));
    const auto& rb = b.schedule.record(static_cast<JobId>(j));
    EXPECT_EQ(ra.machine, rb.machine);
    EXPECT_EQ(ra.fate, rb.fate);
    EXPECT_DOUBLE_EQ(ra.start, rb.start);
    EXPECT_DOUBLE_EQ(ra.end, rb.end);
  }
  EXPECT_DOUBLE_EQ(a.dual_objective, b.dual_objective);
}

TEST(Integration, TraceRoundTripPreservesSchedulerBehaviour) {
  const Instance original = standard_workload(303);
  const std::string csv = workload::instance_to_csv(original);
  std::string error;
  const auto reloaded = workload::instance_from_csv(csv, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;

  const auto a = run_rejection_flow(original, {.epsilon = 0.2});
  const auto b = run_rejection_flow(*reloaded, {.epsilon = 0.2});
  EXPECT_DOUBLE_EQ(a.schedule.total_flow(original),
                   b.schedule.total_flow(*reloaded));
  EXPECT_EQ(a.schedule.num_rejected(), b.schedule.num_rejected());
}

// The full artifact chain: workload -> trace CSV -> reload -> api::run by
// name -> schedule CSV -> reload -> diff-identical, with recomputed
// objectives matching through every hop.
TEST(Integration, FullArtifactChainThroughTheApiFacade) {
  const Instance original = standard_workload(777);
  std::string error;
  const auto reloaded =
      workload::instance_from_csv(workload::instance_to_csv(original), &error);
  ASSERT_TRUE(reloaded.has_value()) << error;

  for (const std::string& name : api::algorithm_names()) {
    const auto algorithm = api::parse_algorithm(name);
    ASSERT_TRUE(algorithm.has_value());
    if (*algorithm == api::Algorithm::kTheorem3) continue;  // needs deadlines
    api::RunOptions options;
    options.epsilon = 0.3;
    const auto a = api::run(*algorithm, original, options);
    const auto b = api::run(*algorithm, *reloaded, options);

    std::stringstream buffer;
    write_schedule_csv(a.schedule, buffer);
    const Schedule restored = read_schedule_csv(buffer);
    EXPECT_TRUE(diff_schedules(a.schedule, restored, {.time_tolerance = 0.0})
                    .empty())
        << name << ": schedule CSV round trip";
    EXPECT_TRUE(diff_schedules(a.schedule, b.schedule, {.time_tolerance = 0.0})
                    .empty())
        << name << ": trace round trip changed the run";
    EXPECT_DOUBLE_EQ(a.report.total_flow, b.report.total_flow) << name;
  }
}

TEST(Integration, AllSchedulersOnOneWorkload) {
  const Instance instance = standard_workload(404);
  // Flow schedulers.
  const auto t1 = run_rejection_flow(instance, {.epsilon = 0.25});
  check_schedule(t1.schedule, instance);
  const Schedule greedy = run_greedy_spt(instance);
  check_schedule(greedy, instance);
  expect_work_conserving(greedy, instance);
  const Schedule fifo = run_fifo(instance);
  check_schedule(fifo, instance);
  expect_work_conserving(fifo, instance);
  // Energy+flow on the same instance (weights present).
  EnergyFlowOptions ef_options;
  ef_options.epsilon = 0.4;
  ef_options.alpha = 2.0;
  const auto t2 = run_energy_flow(instance, ef_options);
  check_schedule(t2.schedule, instance);
}

TEST(Integration, EnergyPipelineWithDeadlines) {
  const Instance instance = standard_workload(505, /*deadlines=*/true);
  ConfigPDOptions options;
  options.alpha = 2.0;
  options.speed_levels = 5;
  const auto result = run_config_primal_dual(instance, options);
  ValidationOptions vopts;
  vopts.allow_parallel_execution = true;
  vopts.require_deadlines = true;
  check_schedule(result.schedule, instance, vopts);
  // Energy identity between internal profiles and schedule integration.
  const PolynomialPower power(2.0);
  EXPECT_NEAR(result.algorithm_energy,
              compute_energy(result.schedule, instance, power),
              1e-6 * std::max(1.0, result.algorithm_energy));
}

TEST(Integration, WorkConservationAcrossManySeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = standard_workload(seed * 111);
    const auto result = run_rejection_flow(instance, {.epsilon = 0.4});
    check_schedule(result.schedule, instance);
    expect_work_conserving(result.schedule, instance);
  }
}

TEST(Integration, RejectionCountsSplitByRule) {
  const Instance instance = standard_workload(606);
  const auto result = run_rejection_flow(instance, {.epsilon = 0.15});
  std::size_t rejected_running = 0, rejected_pending = 0;
  for (const JobRecord& rec : result.schedule.records()) {
    if (rec.fate == JobFate::kRejectedRunning) ++rejected_running;
    if (rec.fate == JobFate::kRejectedPending) ++rejected_pending;
  }
  EXPECT_EQ(rejected_running, result.rule1_rejections);
  EXPECT_EQ(rejected_pending, result.rule2_rejections);
}

TEST(Integration, HigherLoadMeansMoreRejections) {
  std::size_t low_rejections = 0, high_rejections = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    workload::WorkloadConfig config;
    config.num_jobs = 500;
    config.num_machines = 2;
    config.seed = seed;
    config.load = 0.5;
    const auto low = run_rejection_flow(workload::generate_workload(config),
                                        {.epsilon = 0.3});
    low_rejections += low.schedule.num_rejected();
    config.load = 2.0;
    const auto high = run_rejection_flow(workload::generate_workload(config),
                                         {.epsilon = 0.3});
    high_rejections += high.schedule.num_rejected();
  }
  EXPECT_GE(high_rejections, low_rejections);
}

TEST(Integration, EmptyAndSingletonInstances) {
  // Zero jobs.
  Instance empty({}, {{}});
  const auto r0 = run_rejection_flow(empty, {.epsilon = 0.5});
  EXPECT_EQ(r0.schedule.num_jobs(), 0u);
  EXPECT_DOUBLE_EQ(r0.dual_objective, 0.0);

  // One job, one machine; also through the energy scheduler.
  std::vector<Job> jobs(1);
  jobs[0] = Job{0, 1.0, 2.0, kTimeInfinity};
  Instance singleton(jobs, {{3.0}});
  const auto r1 = run_rejection_flow(singleton, {.epsilon = 0.5});
  check_schedule(r1.schedule, singleton);
  EXPECT_EQ(r1.schedule.num_completed(), 1u);

  EnergyFlowOptions ef;
  ef.epsilon = 0.5;
  ef.alpha = 2.0;
  const auto r2 = run_energy_flow(singleton, ef);
  check_schedule(r2.schedule, singleton);
  EXPECT_EQ(r2.schedule.num_completed(), 1u);
}

TEST(Integration, SimultaneousReleases) {
  // A batch of identical jobs released together: everything must still be
  // feasible and deterministic, exercising all tie-breaking paths.
  InstanceBuilder builder(2);
  for (int k = 0; k < 40; ++k) builder.add_identical_job(0.0, 1.0);
  const Instance instance = builder.build();
  const auto a = run_rejection_flow(instance, {.epsilon = 0.3});
  const auto b = run_rejection_flow(instance, {.epsilon = 0.3});
  check_schedule(a.schedule, instance);
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    EXPECT_EQ(a.schedule.record(static_cast<JobId>(j)).machine,
              b.schedule.record(static_cast<JobId>(j)).machine);
  }
}

}  // namespace
}  // namespace osched
