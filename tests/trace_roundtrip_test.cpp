// Property tests for the trace (instance CSV) round trip.
//
// The contract: instance_to_csv -> instance_from_csv reproduces every field
// BIT-exactly under %.17g — including "inf" eligibility holes, absent
// deadlines, and extreme magnitudes down to denormals — and a second
// serialization is byte-identical text (serialize/parse is a closed loop).
// The chunked TraceStreamReader must parse the same trace to the same jobs
// as the whole-file path, for any chunk size. Malformed input must come
// back as a message, never an abort.
//
// Seed rotation: OSCHED_FUZZ_SEED (decimal env var), logged for repro.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_seed.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace osched::workload {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("trace_roundtrip_test", 11);
}

void expect_bit_identical(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  ASSERT_EQ(a.num_machines(), b.num_machines());
  for (std::size_t idx = 0; idx < a.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    EXPECT_EQ(a.job(j).release, b.job(j).release) << "job " << j;
    EXPECT_EQ(a.job(j).weight, b.job(j).weight) << "job " << j;
    EXPECT_EQ(a.job(j).deadline, b.job(j).deadline) << "job " << j;
    for (std::size_t i = 0; i < a.num_machines(); ++i) {
      const auto machine = static_cast<MachineId>(i);
      EXPECT_EQ(a.processing(machine, j), b.processing(machine, j))
          << "p[" << i << "][" << j << "]";
    }
  }
}

TEST(TraceRoundTrip, RandomInstancesSurviveExactly) {
  for (std::uint64_t s = 0; s < 6; ++s) {
    WorkloadConfig config;
    config.num_jobs = 120;
    config.num_machines = 1 + s % 4;
    config.seed = base_seed() + s;
    config.load = 1.0;
    config.sizes.dist = s % 2 == 0 ? SizeDistribution::kPareto
                                   : SizeDistribution::kLognormal;
    config.weights = s % 3 == 0 ? WeightDistribution::kUniform
                                : WeightDistribution::kUnit;
    // Half the instances carry inf eligibility holes; a third carry
    // deadlines (absent deadlines serialize as "inf" and must come back).
    if (s % 2 == 1) {
      config.machines.model = MachineModel::kRestricted;
      config.machines.eligibility = 0.5;
    }
    config.with_deadlines = s % 3 == 1;
    const Instance original = generate_workload(config);

    const std::string text = instance_to_csv(original);
    std::string error;
    const auto reloaded = instance_from_csv(text, &error);
    ASSERT_TRUE(reloaded.has_value()) << error;
    expect_bit_identical(original, *reloaded);
    // Closed loop: re-serialization is byte-identical text.
    EXPECT_EQ(instance_to_csv(*reloaded), text) << "seed " << s;
  }
}

TEST(TraceRoundTrip, ExtremeMagnitudesSurviveExactly) {
  // Values chosen to stress %.17g: repeating binary fractions, adjacent
  // representables, denormals, near-overflow magnitudes, and infinities.
  const double tiny = 5e-324;          // smallest positive denormal
  const double next = std::nextafter(1.0, 2.0);
  std::vector<Job> jobs(4);
  jobs[0] = Job{0, 0.0, 1.0 / 3.0, kTimeInfinity};
  jobs[1] = Job{1, 1e-17, next, 1e-17 + 1e300};
  jobs[2] = Job{2, 1.0e300, 1e-300, kTimeInfinity};
  jobs[3] = Job{3, 3.141592653589793, 7.0, 1e301};
  const std::vector<std::vector<Work>> processing = {
      {tiny, 1e300, 0.1, 2.0},
      {kTimeInfinity, next, kTimeInfinity, 1e-300},
  };
  const Instance original(jobs, processing);
  ASSERT_EQ(original.validate(), "");

  const std::string text = instance_to_csv(original);
  std::string error;
  const auto reloaded = instance_from_csv(text, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  expect_bit_identical(original, *reloaded);
  EXPECT_EQ(instance_to_csv(*reloaded), text);
}

TEST(TraceRoundTrip, EmptyInstanceWithMachinesSurvives) {
  const Instance original({}, {{}});
  const std::string text = instance_to_csv(original);
  std::string error;
  const auto reloaded = instance_from_csv(text, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(reloaded->num_jobs(), 0u);
  EXPECT_EQ(reloaded->num_machines(), 1u);
}

TEST(TraceRoundTrip, ChunkedStreamReaderMatchesWholeFileParse) {
  WorkloadConfig config;
  config.num_jobs = 500;
  config.num_machines = 3;
  config.seed = base_seed() + 100;
  config.machines.model = MachineModel::kRestricted;
  config.machines.eligibility = 0.6;
  const Instance original = generate_workload(config);
  const std::string text = instance_to_csv(original);

  for (const std::size_t chunk_size : {1ul, 7ul, 100000ul}) {
    std::istringstream in(text);
    TraceStreamReader reader(in);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.num_machines(), original.num_machines());

    std::size_t at = 0;
    std::vector<StreamJob> chunk;
    while (reader.next_chunk(chunk_size, chunk) > 0) {
      for (const StreamJob& job : chunk) {
        ASSERT_LT(at, original.num_jobs());
        const auto j = static_cast<JobId>(at);
        EXPECT_EQ(job.release, original.job(j).release);
        EXPECT_EQ(job.weight, original.job(j).weight);
        EXPECT_EQ(job.deadline, original.job(j).deadline);
        ASSERT_EQ(job.processing.size(), original.num_machines());
        for (std::size_t i = 0; i < job.processing.size(); ++i) {
          EXPECT_EQ(job.processing[i],
                    original.processing(static_cast<MachineId>(i), j));
        }
        ++at;
      }
    }
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(at, original.num_jobs());
    EXPECT_EQ(reader.rows_read(), original.num_jobs());
  }
}

TEST(TraceRoundTrip, StreamWriterMatchesWholeFileSerialization) {
  WorkloadConfig config;
  config.num_jobs = 60;
  config.num_machines = 2;
  config.seed = base_seed() + 200;
  const Instance original = generate_workload(config);

  std::ostringstream streamed;
  TraceStreamWriter writer(streamed, original.num_machines());
  StreamJob job;
  job.processing.resize(original.num_machines());
  for (std::size_t idx = 0; idx < original.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    job.release = original.job(j).release;
    job.weight = original.job(j).weight;
    job.deadline = original.job(j).deadline;
    for (std::size_t i = 0; i < original.num_machines(); ++i) {
      job.processing[i] = original.processing(static_cast<MachineId>(i), j);
    }
    writer.write_job(job);
  }
  EXPECT_EQ(writer.rows_written(), original.num_jobs());
  EXPECT_EQ(streamed.str(), instance_to_csv(original));
}

TEST(TraceRoundTrip, MalformedInputComesBackAsMessages) {
  std::string error;
  EXPECT_FALSE(instance_from_csv("", &error).has_value());
  EXPECT_NE(error.find("empty trace"), std::string::npos);

  EXPECT_FALSE(instance_from_csv("not,a,trace\n1,2,3\n", &error).has_value());
  EXPECT_NE(error.find("bad header"), std::string::npos);

  EXPECT_FALSE(instance_from_csv("release,weight,deadline,p_0\n1,1,inf\n",
                                 &error)
                   .has_value());
  EXPECT_NE(error.find("wrong arity"), std::string::npos);

  EXPECT_FALSE(instance_from_csv("release,weight,deadline,p_0\nx,1,inf,1\n",
                                 &error)
                   .has_value());
  EXPECT_NE(error.find("non-numeric job fields"), std::string::npos);

  EXPECT_FALSE(instance_from_csv("release,weight,deadline,p_0\n1,1,inf,zap\n",
                                 &error)
                   .has_value());
  EXPECT_NE(error.find("non-numeric p_ij"), std::string::npos);

  // Parseable but structurally invalid: the instance validator's message
  // must surface through the trace API.
  EXPECT_FALSE(instance_from_csv("release,weight,deadline,p_0\n1,1,inf,-2\n",
                                 &error)
                   .has_value());
  EXPECT_NE(error.find("invalid instance"), std::string::npos);

  // NaN fields parse as doubles but must be rejected as an invalid
  // instance, not silently accepted (the gap this suite uncovered).
  EXPECT_FALSE(instance_from_csv("release,weight,deadline,p_0\nnan,1,inf,1\n",
                                 &error)
                   .has_value());
  EXPECT_NE(error.find("invalid instance"), std::string::npos);
  EXPECT_FALSE(instance_from_csv("release,weight,deadline,p_0\n1,1,inf,nan\n",
                                 &error)
                   .has_value());
  EXPECT_NE(error.find("NaN"), std::string::npos);
}

// ------------------------------------------------------- sparse dialect

TEST(TraceRoundTrip, SparseInstancesRoundTripInTheSparseDialect) {
  for (std::uint64_t s = 0; s < 4; ++s) {
    WorkloadConfig config;
    config.num_jobs = 150;
    config.num_machines = 8;
    config.seed = base_seed() + 300 + s;
    config.machines.model = MachineModel::kRestricted;
    config.machines.eligibility = 0.3;
    config.weights = WeightDistribution::kUniform;
    config.with_deadlines = s % 2 == 1;
    const Instance original =
        generate_workload(config).with_backend(StorageBackend::kSparseCsr);

    const std::string text = instance_to_csv(original);
    // The sparse header, not m "p_i" columns — and no ineligible-machine
    // "inf" entries anywhere (absent deadlines still serialize as "inf").
    EXPECT_NE(text.find("eligible:8"), std::string::npos);
    EXPECT_EQ(text.find(":inf"), std::string::npos);

    std::string error;
    const auto reloaded = instance_from_csv(text, &error);
    ASSERT_TRUE(reloaded.has_value()) << error;
    EXPECT_EQ(reloaded->backend(), StorageBackend::kSparseCsr);
    expect_bit_identical(original, *reloaded);
    // Closed loop, same as the dense dialect.
    EXPECT_EQ(instance_to_csv(*reloaded), text) << "seed " << s;
  }
}

TEST(TraceRoundTrip, SparseDialectSurvivesExtremeMagnitudes) {
  const double tiny = 5e-324;
  const double next = std::nextafter(1.0, 2.0);
  std::vector<Job> jobs(3);
  jobs[0] = Job{0, 0.0, 1.0 / 3.0, kTimeInfinity};
  jobs[1] = Job{1, 1e-17, next, 1e-17 + 1e300};
  jobs[2] = Job{2, 1.0e300, 1e-300, kTimeInfinity};
  std::vector<std::vector<SparseEntry>> rows = {
      {{0, tiny}, {1, 1e300}},
      {{1, next}},
      {{0, 0.1}, {1, 1e-300}},
  };
  const Instance original =
      Instance::from_sparse_rows(jobs, 2, std::move(rows));
  ASSERT_EQ(original.validate(), "");

  const std::string text = instance_to_csv(original);
  std::string error;
  const auto reloaded = instance_from_csv(text, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  expect_bit_identical(original, *reloaded);
  EXPECT_EQ(instance_to_csv(*reloaded), text);
}

TEST(TraceRoundTrip, ChunkedReaderHandsOutSparseJobsInTheSparseForm) {
  WorkloadConfig config;
  config.num_jobs = 200;
  config.num_machines = 6;
  config.seed = base_seed() + 400;
  config.machines.model = MachineModel::kRestricted;
  config.machines.eligibility = 0.4;
  const Instance original =
      generate_workload(config).with_backend(StorageBackend::kSparseCsr);
  const std::string text = instance_to_csv(original);

  for (const std::size_t chunk_size : {1ul, 7ul, 100000ul}) {
    std::istringstream in(text);
    TraceStreamReader reader(in);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.format(), TraceFormat::kSparse);
    EXPECT_EQ(reader.num_machines(), original.num_machines());

    std::size_t at = 0;
    std::vector<StreamJob> chunk;
    while (reader.next_chunk(chunk_size, chunk) > 0) {
      for (const StreamJob& job : chunk) {
        ASSERT_LT(at, original.num_jobs());
        const auto j = static_cast<JobId>(at);
        EXPECT_EQ(job.release, original.job(j).release);
        EXPECT_TRUE(job.processing.empty());
        const EligibleMachines eligible = original.eligible_machines(j);
        ASSERT_EQ(job.entries.size(), eligible.size());
        for (std::size_t k = 0; k < job.entries.size(); ++k) {
          EXPECT_EQ(job.entries[k].machine, eligible.begin()[k]);
          EXPECT_EQ(job.entries[k].p,
                    original.processing_unchecked(eligible.begin()[k], j));
        }
        ++at;
      }
    }
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(at, original.num_jobs());
  }
}

TEST(TraceRoundTrip, MalformedSparseInputComesBackAsMessages) {
  std::string error;
  // Broken machine count in the header.
  EXPECT_FALSE(
      instance_from_csv("release,weight,deadline,eligible:zap\n", &error)
          .has_value());
  EXPECT_NE(error.find("bad header"), std::string::npos);
  EXPECT_FALSE(instance_from_csv("release,weight,deadline,eligible:0\n", &error)
                   .has_value());
  EXPECT_NE(error.find("bad header"), std::string::npos);

  // Rows must have exactly 4 fields.
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,0:2,1:3\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("wrong arity"), std::string::npos);

  // Token shapes: missing colon, non-numeric halves.
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,0:2 1\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("malformed i:p entry"), std::string::npos);
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,a:2\n", &error)
                   .has_value());
  EXPECT_NE(error.find("malformed i:p entry"), std::string::npos);
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,0:zap\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("malformed i:p entry"), std::string::npos);

  // Structural demands are diagnosed with the row number, never an abort:
  // out-of-range ids, duplicates, descending order.
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,3:2\n", &error)
                   .has_value());
  EXPECT_NE(error.find("names machine 3"), std::string::npos);
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,1:2 1:3\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("strictly ascending"), std::string::npos);
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,2:2 1:3\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("strictly ascending"), std::string::npos);

  // Value problems surface through validate(), like the dense dialect.
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,0:-2\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("invalid instance"), std::string::npos);
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,0:inf\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("invalid instance"), std::string::npos);
  // An empty pair list parses to a job with no eligible machine — invalid
  // instance, not a parse abort.
  EXPECT_FALSE(instance_from_csv(
                   "release,weight,deadline,eligible:3\n1,1,inf,\n", &error)
                   .has_value());
  EXPECT_NE(error.find("no eligible machine"), std::string::npos);
}

TEST(TraceRoundTrip, WriterConvertsBetweenPayloadFormsAndDialects) {
  // One job, submitted in both payload forms, serialized in both dialects:
  // all four (form, dialect) combinations must produce the same bytes as
  // the canonical same-dialect pairing.
  StreamJob dense_form;
  dense_form.release = 1.5;
  dense_form.weight = 2.0;
  dense_form.deadline = kTimeInfinity;
  dense_form.processing = {kTimeInfinity, 0.75, kTimeInfinity, 3.25};
  StreamJob sparse_form;
  sparse_form.release = 1.5;
  sparse_form.weight = 2.0;
  sparse_form.deadline = kTimeInfinity;
  sparse_form.entries = {{1, 0.75}, {3, 3.25}};

  const auto serialize = [](const StreamJob& job, TraceFormat format) {
    std::ostringstream out;
    TraceStreamWriter writer(out, 4, format);
    writer.write_job(job);
    return out.str();
  };
  EXPECT_EQ(serialize(dense_form, TraceFormat::kDense),
            serialize(sparse_form, TraceFormat::kDense));
  EXPECT_EQ(serialize(dense_form, TraceFormat::kSparse),
            serialize(sparse_form, TraceFormat::kSparse));
}

}  // namespace
}  // namespace osched::workload
