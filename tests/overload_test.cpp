// Overload-control wall for streaming sessions (PR 7).
//
// Three layers of guarantees:
//  * semantics — hand-built feeds pin down the window cap exactly: try_submit
//    refuses at the cap (and the refused job can come back once decisions
//    free slots), plain submit aborts, and budgeted sheds evict the policy's
//    lowest-value pending jobs in the documented order (smallest weight,
//    ties to largest queued processing, then largest id);
//  * determinism — sheds fire only when they admit the triggering arrival,
//    so the shed sequence is a function of the accepted arrivals alone:
//    per-job, batch-span and chunked feeds produce bit-identical schedules
//    and shed counts for every streamable algorithm, and a checkpoint cut
//    mid-overload restores to the uninterrupted run;
//  * service plumbing — the shard driver forwards session backpressure in
//    inline mode and bounds handed-off-but-unapplied batches in worker mode
//    (the try_submit/sync retry contract), without losing a single job.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "fuzz_seed.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "sim/schedule_io.hpp"
#include "workload/generated_family.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("overload_test", 13);
}

const api::Algorithm kStreamable[] = {
    api::Algorithm::kTheorem1,    api::Algorithm::kTheorem2,
    api::Algorithm::kWeightedExt, api::Algorithm::kGreedySpt,
    api::Algorithm::kFifo,        api::Algorithm::kImmediateReject,
};

StreamJob stream_job(Time release, Weight weight, std::vector<Work> p) {
  StreamJob job;
  job.release = release;
  job.weight = weight;
  job.processing = std::move(p);
  return job;
}

Instance make_workload(std::uint64_t seed, std::size_t n, std::size_t m) {
  workload::ClosedFormConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.5;  // heavy: the live window actually fills
  return workload::make_closed_form_instance(config, StorageBackend::kDense);
}

void expect_identical(const api::RunSummary& expected,
                      const api::RunSummary& actual,
                      const std::string& context) {
  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;
  const auto diffs = diff_schedules(expected.schedule, actual.schedule, strict);
  EXPECT_TRUE(diffs.empty()) << context << ": " << diffs.size()
                             << " schedule diffs; first: " << diffs.front();
  EXPECT_EQ(expected.report.num_completed, actual.report.num_completed)
      << context;
  EXPECT_EQ(expected.report.num_rejected, actual.report.num_rejected)
      << context;
  EXPECT_EQ(expected.report.total_flow, actual.report.total_flow) << context;
  EXPECT_EQ(expected.report.total_weighted_flow,
            actual.report.total_weighted_flow)
      << context;
}

TEST(Overload, BackpressureAtTheCapAndAcceptanceAfterDecisions) {
  // One machine, cap 2, no shed budget. Two live jobs saturate the window;
  // a third arrival bounces with kBackpressure and leaves no trace. Once
  // the running job's completion falls due, the same submission goes
  // through — try_submit fires events due by the release BEFORE the
  // admission check, so a window full of finished work never refuses.
  service::SessionOptions options;
  options.live_window_cap = 2;
  service::SchedulerSession session(api::Algorithm::kGreedySpt, 1, options);

  EXPECT_EQ(session.try_submit(stream_job(0.0, 1.0, {1.0})),
            service::SubmitOutcome::kAccepted);  // runs [0, 1)
  EXPECT_EQ(session.try_submit(stream_job(0.0, 1.0, {1.0})),
            service::SubmitOutcome::kAccepted);  // queued; runs [1, 2)
  EXPECT_EQ(session.live_jobs(), 2u);

  const StreamJob refused = stream_job(0.5, 1.0, {1.0});
  EXPECT_EQ(session.try_submit(refused),
            service::SubmitOutcome::kBackpressure);
  EXPECT_EQ(session.num_submitted(), 2u);       // no trace
  EXPECT_EQ(session.num_backpressured(), 1u);
  EXPECT_EQ(session.now(), 0.0);  // nothing was due by 0.5: clock untouched

  // At t=1.5 the first job's completion is due: it fires inside try_submit
  // and frees a slot, so the retry is accepted.
  EXPECT_EQ(session.try_submit(stream_job(1.5, 1.0, {1.0})),
            service::SubmitOutcome::kAccepted);
  EXPECT_EQ(session.num_shed(), 0u);

  const api::RunSummary summary = session.drain();
  EXPECT_EQ(summary.report.num_completed, 3u);
  EXPECT_EQ(summary.report.num_rejected, 0u);
}

TEST(Overload, PlainSubmitAbortsAtSaturation) {
  service::SessionOptions options;
  options.live_window_cap = 1;
  service::SchedulerSession session(api::Algorithm::kGreedySpt, 1, options);
  session.submit(stream_job(0.0, 1.0, {10.0}));
  EXPECT_DEATH(session.submit(stream_job(1.0, 1.0, {10.0})),
               "live window saturated");
}

TEST(Overload, ShedEvictsLowestWeightLargestProcessingLargestId) {
  // Cap 3, budget 2, one machine. j0 runs [0, 10); j1 (w=1, p=2) and
  // j2 (w=1, p=4) queue behind it. The heavy arrivals at t=1 and t=2 each
  // force one shed: first j2 (weight tie with j1, larger queued p), then
  // j1. The third heavy arrival finds the budget spent: backpressure.
  service::SessionOptions options;
  options.live_window_cap = 3;
  options.shed_budget = 2;
  service::SchedulerSession session(api::Algorithm::kGreedySpt, 1, options);

  session.submit(stream_job(0.0, 5.0, {10.0}));  // j0: running
  session.submit(stream_job(0.0, 1.0, {2.0}));   // j1
  session.submit(stream_job(0.0, 1.0, {4.0}));   // j2
  EXPECT_EQ(session.live_jobs(), 3u);

  EXPECT_EQ(session.try_submit(stream_job(1.0, 9.0, {1.0})),  // j3
            service::SubmitOutcome::kAccepted);
  EXPECT_EQ(session.num_shed(), 1u);
  EXPECT_EQ(session.try_submit(stream_job(2.0, 9.0, {1.0})),  // j4
            service::SubmitOutcome::kAccepted);
  EXPECT_EQ(session.num_shed(), 2u);
  EXPECT_EQ(session.try_submit(stream_job(3.0, 9.0, {1.0})),
            service::SubmitOutcome::kBackpressure);
  EXPECT_EQ(session.num_shed(), 2u);  // a refused submit never sheds
  EXPECT_EQ(session.num_backpressured(), 1u);

  const api::RunSummary summary = session.drain();
  EXPECT_EQ(summary.report.num_completed, 3u);
  EXPECT_EQ(summary.report.num_rejected, 2u);
  EXPECT_EQ(summary.schedule.record(2).fate, JobFate::kRejectedPending);
  EXPECT_EQ(summary.schedule.record(2).rejection_time, 1.0);  // shed first
  EXPECT_EQ(summary.schedule.record(1).fate, JobFate::kRejectedPending);
  EXPECT_EQ(summary.schedule.record(1).rejection_time, 2.0);
  EXPECT_EQ(summary.schedule.record(0).end, 10.0);
  EXPECT_EQ(summary.schedule.record(3).end, 11.0);  // SPT after j0
  EXPECT_EQ(summary.schedule.record(4).end, 12.0);
}

TEST(Overload, ShedSequenceIsFeedInvariantForEveryAlgorithm) {
  // The determinism contract: sheds are a function of the accepted arrivals
  // alone, so per-job, batch-span and chunked-with-advances feeds of the
  // same stream produce bit-identical schedules and shed counts.
  const Instance instance = make_workload(base_seed(), 200, 4);
  std::vector<StreamJob> jobs(instance.num_jobs());
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &jobs[idx]);
  }
  service::SessionOptions options;
  options.live_window_cap = 8;
  options.shed_budget = 100000;  // absorbing: plain submit never aborts

  for (const api::Algorithm algorithm : kStreamable) {
    const std::string name = api::to_string(algorithm);

    service::SchedulerSession per_job(algorithm, instance.num_machines(),
                                      options);
    for (const StreamJob& job : jobs) per_job.submit(job);
    const std::size_t shed_per_job = per_job.num_shed();
    const api::RunSummary a = per_job.drain();

    service::SchedulerSession batch(algorithm, instance.num_machines(),
                                    options);
    batch.submit(std::span<const StreamJob>(jobs));
    EXPECT_EQ(batch.num_shed(), shed_per_job) << name;
    const api::RunSummary b = batch.drain();

    service::SchedulerSession chunked(algorithm, instance.num_machines(),
                                      options);
    for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
      chunked.submit(jobs[idx]);
      if ((idx + 1) % 16 == 0 && idx + 1 < jobs.size()) {
        chunked.advance(jobs[idx].release +
                        0.5 * (jobs[idx + 1].release - jobs[idx].release));
      }
    }
    EXPECT_EQ(chunked.num_shed(), shed_per_job) << name;
    const api::RunSummary c = chunked.drain();

    EXPECT_GT(shed_per_job, 0u) << name << ": the wall never saturated";
    expect_identical(a, b, name + " batch feed");
    expect_identical(a, c, name + " chunked feed");
  }
}

TEST(Overload, CheckpointRestoreReproducesTheShedSequence) {
  // Cut an overloaded stream mid-run — sheds already spent, budget partly
  // consumed — and restore: the replayed journal must reproduce every shed
  // (the v2 blob carries cap and budget; the journal carries exactly the
  // accepted arrivals), and the continued run must equal the uninterrupted
  // one decision for decision.
  const Instance instance = make_workload(base_seed() + 1, 160, 3);
  service::SessionOptions options;
  options.live_window_cap = 6;
  options.shed_budget = 100000;

  for (const api::Algorithm algorithm :
       {api::Algorithm::kTheorem1, api::Algorithm::kWeightedExt}) {
    const std::string name = api::to_string(algorithm);
    service::SchedulerSession uninterrupted(algorithm, instance.num_machines(),
                                            options);
    StreamJob job;
    for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
      fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
      uninterrupted.submit(job);
    }
    const std::size_t total_sheds = uninterrupted.num_shed();
    const api::RunSummary reference = uninterrupted.drain();
    ASSERT_GT(total_sheds, 0u) << name << ": the wall never saturated";

    service::SchedulerSession original(algorithm, instance.num_machines(),
                                       options);
    for (std::size_t idx = 0; idx < 80; ++idx) {
      fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
      original.submit(job);
    }
    ASSERT_GT(original.num_shed(), 0u) << name << ": cut before any shed";

    std::string error;
    auto restored =
        service::SchedulerSession::restore(original.checkpoint(), &error);
    ASSERT_NE(restored, nullptr) << name << ": " << error;
    EXPECT_EQ(restored->num_shed(), original.num_shed()) << name;

    for (std::size_t idx = 80; idx < instance.num_jobs(); ++idx) {
      fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
      restored->submit(job);
    }
    EXPECT_EQ(restored->num_shed(), total_sheds) << name;
    expect_identical(reference, restored->drain(), name + " restored");
  }
}

TEST(Overload, ShardDriverInlineModeForwardsBackpressure) {
  service::ShardDriverOptions options;
  options.threads = 1;  // inline: ops apply on the calling thread
  options.session.live_window_cap = 1;
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 1, 1, options);
  ASSERT_EQ(driver.worker_count(), 0u);

  EXPECT_EQ(driver.try_submit(0, stream_job(0.0, 1.0, {10.0})),
            service::StageOutcome::kAccepted);
  EXPECT_EQ(driver.try_submit(0, stream_job(1.0, 1.0, {10.0})),
            service::StageOutcome::kBackpressure);
  EXPECT_EQ(driver.inflight_batches(0), 0u);  // inline mode: nothing queued
  EXPECT_EQ(driver.session(0).num_backpressured(), 1u);
  // The first job completes at t=10; a later release is admitted.
  EXPECT_EQ(driver.try_submit(0, stream_job(10.0, 1.0, {10.0})),
            service::StageOutcome::kAccepted);
  const auto results = driver.drain_all();
  EXPECT_EQ(results[0].report.num_completed, 2u);
}

TEST(Overload, ShardDriverWorkerModeBoundsInflightBatches) {
  // Worker mode with max_inflight_batches = 1: try_submit refuses whenever
  // the shard already has a handed-off-but-unapplied batch; the caller
  // sync()s and retries — the documented backoff contract. The bound holds
  // at every observation point and no job is lost.
  const Instance instance = make_workload(base_seed() + 2, 100, 2);
  service::ShardDriverOptions options;
  options.threads = 2;
  options.max_inflight_batches = 1;
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 2, 2, options);
  ASSERT_GT(driver.worker_count(), 0u);

  std::size_t refusals = 0;
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    const std::size_t shard = idx % 2;
    while (!service::stage_ok(driver.try_submit(shard, job))) {
      ++refusals;
      EXPECT_LE(driver.inflight_batches(shard), 1u);
      driver.sync();  // the backlog drains; the retry must now stage
      ASSERT_TRUE(service::stage_ok(driver.try_submit(shard, job)));
      break;
    }
    driver.flush();
    EXPECT_LE(driver.inflight_batches(shard), 1u);
  }
  const auto results = driver.drain_all();
  std::size_t accounted = 0;
  for (const auto& summary : results) {
    accounted += summary.report.num_completed + summary.report.num_rejected;
  }
  EXPECT_EQ(accounted, instance.num_jobs()) << refusals << " refusals";
}

}  // namespace
}  // namespace osched
