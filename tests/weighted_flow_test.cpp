// Tests for the weighted flow-time extension (not a paper theorem — the
// module's contract is: HDF order, weighted dispatch, and the 2-eps WEIGHT
// rejection budget) plus the weighted variants of the LP certificate and the
// exact single-machine optimum that E14 measures it against.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "baselines/flow_lower_bounds.hpp"
#include "extensions/weighted_flow.hpp"
#include "instance/builders.hpp"
#include "lp/flow_time_lp.hpp"
#include "sim/validator.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

// --------------------------------------------------- scheduling order

TEST(WeightedFlow, ServesPendingInDensityOrder) {
  // One machine busy with a long job; three queue jobs with distinct
  // densities. Rejection rules disabled to isolate the scheduling order.
  InstanceBuilder builder(1);
  builder.add_job(0.0, {10.0}, 1.0);   // runs first
  builder.add_job(1.0, {4.0}, 1.0);    // density 0.25
  builder.add_job(2.0, {2.0}, 2.0);    // density 1.0  -> served first
  builder.add_job(3.0, {3.0}, 1.5);    // density 0.5
  const Instance instance = builder.build();

  const auto result = run_weighted_rejection_flow(
      instance,
      {.epsilon = 0.9, .enable_rule1 = false, .enable_rule2 = false});
  EXPECT_EQ(result.schedule.num_rejected(), 0u);
  EXPECT_LT(result.schedule.record(2).start, result.schedule.record(3).start);
  EXPECT_LT(result.schedule.record(3).start, result.schedule.record(1).start);
  check_schedule(result.schedule, instance, {});
}

TEST(WeightedFlow, DispatchPrefersTheMachineWithLowerWeightedLambda) {
  // Machine 0 is empty; machine 1 has queued heavy work. The arriving job is
  // fast on machine 1 but the queue-aware lambda should still route it to
  // machine 0 when the backlog term dominates.
  InstanceBuilder builder(2);
  builder.add_job(0.0, {kTimeInfinity, 8.0}, 4.0);  // pins machine 1
  builder.add_job(0.1, {kTimeInfinity, 8.0}, 4.0);  // queued on machine 1
  builder.add_job(0.2, {3.0, 2.5}, 1.0);            // the probe
  const Instance instance = builder.build();

  const auto result = run_weighted_rejection_flow(
      instance,
      {.epsilon = 0.5, .enable_rule1 = false, .enable_rule2 = false});
  EXPECT_EQ(result.schedule.record(2).machine, 0);
  check_schedule(result.schedule, instance, {});
}

// ------------------------------------------------------- rejection rules

TEST(WeightedFlow, Rule1RejectsTheRunningJobOnWeightOverflow) {
  // Running job weight 1, eps = 0.5 -> threshold v > 2. Two unit-weight
  // arrivals stay under it; the third crosses.
  InstanceBuilder builder(1);
  builder.add_job(0.0, {100.0}, 1.0);
  builder.add_job(1.0, {1.0}, 1.0);
  builder.add_job(2.0, {1.0}, 1.0);
  builder.add_job(3.0, {1.0}, 1.0);
  const Instance instance = builder.build();

  WeightedFlowOptions options;
  options.epsilon = 0.5;
  options.enable_rule2 = false;
  const auto result = run_weighted_rejection_flow(instance, options);
  EXPECT_EQ(result.rule1_rejections, 1u);
  EXPECT_EQ(result.schedule.record(0).fate, JobFate::kRejectedRunning);
  EXPECT_NEAR(result.schedule.record(0).rejection_time, 3.0, 1e-9);
  EXPECT_NEAR(result.rejected_weight, 1.0, 1e-12);
}

TEST(WeightedFlow, Rule1ThresholdScalesWithTheRunningWeight) {
  // Same arrivals, but the elephant now has weight 10: threshold 20 is never
  // reached, nothing is rejected.
  InstanceBuilder builder(1);
  builder.add_job(0.0, {100.0}, 10.0);
  builder.add_job(1.0, {1.0}, 1.0);
  builder.add_job(2.0, {1.0}, 1.0);
  builder.add_job(3.0, {1.0}, 1.0);
  const Instance instance = builder.build();

  WeightedFlowOptions options;
  options.epsilon = 0.5;
  options.enable_rule2 = false;
  const auto result = run_weighted_rejection_flow(instance, options);
  EXPECT_EQ(result.rule1_rejections, 0u);
  EXPECT_TRUE(result.schedule.record(0).completed());
}

TEST(WeightedFlow, Rule2RejectsTheLargestPendingWhenWeightAccumulates) {
  // Keep Rule 1 off. Light elephant in the queue behind a heavy runner:
  // dispatched weight accumulates past w_victim/eps and trims it.
  InstanceBuilder builder(1);
  builder.add_job(0.0, {50.0}, 5.0);   // runs
  builder.add_job(1.0, {9.0}, 0.4);    // pending elephant, light weight
  builder.add_job(2.0, {1.0}, 1.0);
  builder.add_job(3.0, {1.0}, 1.0);    // cumulative weight 7.4 >= 0.4/0.2 = 2
  const Instance instance = builder.build();

  WeightedFlowOptions options;
  options.epsilon = 0.2;
  options.enable_rule1 = false;
  const auto result = run_weighted_rejection_flow(instance, options);
  EXPECT_GE(result.rule2_rejections, 1u);
  EXPECT_EQ(result.schedule.record(1).fate, JobFate::kRejectedPending);
  check_schedule(result.schedule, instance, {});
}

class WeightedBudgetTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(WeightedBudgetTest, RejectedWeightStaysWithinTwoEps) {
  const auto [eps, seed] = GetParam();
  workload::WorkloadConfig config;
  config.num_jobs = 500;
  config.num_machines = 3;
  config.load = 1.4;
  config.weights = workload::WeightDistribution::kUniform;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = seed;
  const Instance instance = workload::generate_workload(config);

  const auto result = run_weighted_rejection_flow(instance, {.epsilon = eps});
  EXPECT_LE(result.rejected_weight,
            2.0 * eps * instance.total_weight() + 1e-9);
  EXPECT_NEAR(result.rejected_weight,
              result.schedule.rejected_weight(instance), 1e-9);
  check_schedule(result.schedule, instance, {});
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WeightedBudgetTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.4, 0.7),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<std::tuple<double, std::uint64_t>>& i) {
      return "eps" + std::to_string(int(std::get<0>(i.param) * 100)) + "_s" +
             std::to_string(std::get<1>(i.param));
    });

TEST(WeightedFlow, UnitWeightsBehaveLikeAFlowScheduler) {
  workload::WorkloadConfig config;
  config.num_jobs = 200;
  config.num_machines = 2;
  config.load = 1.2;
  config.seed = 77;
  const Instance instance = workload::generate_workload(config);

  const auto result = run_weighted_rejection_flow(instance, {.epsilon = 0.3});
  // Unit weights: HDF = SPT, the budget is a job-count budget.
  EXPECT_LE(static_cast<double>(result.schedule.num_rejected()),
            2.0 * 0.3 * static_cast<double>(instance.num_jobs()) + 1e-9);
  check_schedule(result.schedule, instance, {});
}

// --------------------------------------------- weighted LP + exact OPT

TEST(WeightedLp, CertifiesTheWeightedOptimum) {
  util::Rng rng(0xEE14);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<std::tuple<Time, Work, Weight>> jobs;
    const std::size_t n = 3 + rng.index(3);
    for (std::size_t j = 0; j < n; ++j) {
      jobs.push_back({rng.uniform(0.0, 8.0), rng.uniform(0.5, 4.0),
                      rng.uniform(0.5, 3.0)});
    }
    const Instance instance = single_machine_weighted_instance(jobs);

    lp::FlowLpOptions options;
    options.target_intervals = 48;
    options.use_weights = true;
    const auto lp_result = lp::solve_flow_time_lp(instance, options);
    ASSERT_TRUE(lp_result.optimal());

    const auto opt = exact_optimal_weighted_flow_single_machine(instance);
    ASSERT_TRUE(opt.has_value());
    EXPECT_LE(lp_result.lower_bound, *opt + 1e-6) << "trial " << trial;
    EXPECT_GT(lp_result.lower_bound, 0.0);
  }
}

TEST(WeightedExactOpt, MatchesSmithRuleWhenAllReleasedTogether) {
  // With a common release, the weighted optimum is WSPT (Smith's rule).
  const Instance instance = single_machine_weighted_instance(
      {{0.0, 4.0, 1.0}, {0.0, 1.0, 2.0}, {0.0, 2.0, 2.0}});
  // WSPT order by w/p: job1 (2.0), job2 (1.0), job0 (0.25):
  //   C1 = 1 (w2 -> 2), C2 = 3 (w2 -> 6), C0 = 7 (w1 -> 7); total 15.
  const auto opt = exact_optimal_weighted_flow_single_machine(instance);
  ASSERT_TRUE(opt.has_value());
  EXPECT_NEAR(*opt, 15.0, 1e-9);
}

TEST(WeightedExactOpt, WeightedNeverBelowUnitTimesMinWeight) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::tuple<Time, Work, Weight>> jobs;
    for (std::size_t j = 0; j < 5; ++j) {
      jobs.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.5, 3.0), 2.0});
    }
    const Instance instance = single_machine_weighted_instance(jobs);
    const auto weighted = exact_optimal_weighted_flow_single_machine(instance);
    const auto unit = exact_optimal_flow_single_machine(instance);
    ASSERT_TRUE(weighted.has_value());
    ASSERT_TRUE(unit.has_value());
    // Uniform weight 2: the weighted optimum is exactly twice the unit one.
    EXPECT_NEAR(*weighted, 2.0 * *unit, 1e-9);
  }
}

}  // namespace
}  // namespace osched
