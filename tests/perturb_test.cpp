// Tests for instance perturbation: identity at zero magnitude, structure
// preservation (eligibility, weights, deadline windows), drop semantics,
// determinism, and the decoupling of per-job noise from drop decisions.
#include <gtest/gtest.h>

#include <cmath>

#include "instance/builders.hpp"
#include "workload/generators.hpp"
#include "workload/perturb.hpp"

namespace osched::workload {
namespace {

Instance base_instance() {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {2.0, kTimeInfinity}, 1.5, 10.0);
  builder.add_job(1.0, {3.0, 4.0}, 2.0);
  builder.add_job(2.5, {kTimeInfinity, 1.0}, 0.5, 8.0);
  builder.add_job(4.0, {5.0, 2.0}, 1.0);
  return builder.build();
}

TEST(Perturb, ZeroMagnitudeIsIdentity) {
  const Instance original = base_instance();
  const Instance copy = perturb_instance(original, {});
  ASSERT_EQ(copy.num_jobs(), original.num_jobs());
  for (std::size_t idx = 0; idx < original.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    EXPECT_EQ(copy.job(j).release, original.job(j).release);
    EXPECT_EQ(copy.job(j).weight, original.job(j).weight);
    EXPECT_EQ(copy.job(j).deadline, original.job(j).deadline);
    for (std::size_t i = 0; i < original.num_machines(); ++i) {
      EXPECT_EQ(copy.processing(static_cast<MachineId>(i), j),
                original.processing(static_cast<MachineId>(i), j));
    }
  }
}

TEST(Perturb, SizeNoisePreservesEligibilityAndMachineRatios) {
  const Instance original = base_instance();
  PerturbConfig config;
  config.size_noise = 0.8;
  config.seed = 7;
  const Instance noisy = perturb_instance(original, config);
  ASSERT_EQ(noisy.num_jobs(), original.num_jobs());
  for (std::size_t idx = 0; idx < original.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    // Infinite entries stay infinite (restricted assignment preserved).
    for (std::size_t i = 0; i < original.num_machines(); ++i) {
      const auto machine = static_cast<MachineId>(i);
      EXPECT_EQ(noisy.eligible(machine, j), original.eligible(machine, j));
    }
    // Per-JOB factor: the ratio between two finite entries is unchanged.
    if (original.eligible(0, j) && original.eligible(1, j)) {
      EXPECT_NEAR(noisy.processing(0, j) / noisy.processing(1, j),
                  original.processing(0, j) / original.processing(1, j), 1e-9);
    }
    // The instance must remain valid (positive entries).
    EXPECT_GT(noisy.min_processing(j), 0.0);
  }
  EXPECT_TRUE(noisy.validate().empty());
}

TEST(Perturb, ReleaseJitterKeepsDeadlineWindowLength) {
  const Instance original = base_instance();
  PerturbConfig config;
  config.release_jitter = 2.0;
  config.seed = 11;
  const Instance jittered = perturb_instance(original, config);
  ASSERT_EQ(jittered.num_jobs(), original.num_jobs());
  // Jobs are re-sorted by release, so compare window-length multisets.
  std::vector<double> original_windows, jittered_windows;
  for (std::size_t idx = 0; idx < original.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    if (original.job(j).has_deadline()) {
      original_windows.push_back(original.job(j).deadline -
                                 original.job(j).release);
    }
    if (jittered.job(j).has_deadline()) {
      jittered_windows.push_back(jittered.job(j).deadline -
                                 jittered.job(j).release);
    }
    EXPECT_GE(jittered.job(j).release, 0.0);
  }
  std::sort(original_windows.begin(), original_windows.end());
  std::sort(jittered_windows.begin(), jittered_windows.end());
  ASSERT_EQ(original_windows.size(), jittered_windows.size());
  for (std::size_t k = 0; k < original_windows.size(); ++k) {
    EXPECT_NEAR(original_windows[k], jittered_windows[k], 1e-9);
  }
  EXPECT_TRUE(jittered.validate().empty());
}

TEST(Perturb, DropsApproximatelyTheRequestedFraction) {
  workload::WorkloadConfig config;
  config.num_jobs = 2000;
  config.num_machines = 2;
  config.seed = 3;
  const Instance big = generate_workload(config);

  PerturbConfig perturb;
  perturb.drop_fraction = 0.3;
  perturb.seed = 5;
  const Instance dropped = perturb_instance(big, perturb);
  const double kept =
      static_cast<double>(dropped.num_jobs()) / static_cast<double>(big.num_jobs());
  EXPECT_NEAR(kept, 0.7, 0.05);
  EXPECT_TRUE(dropped.validate().empty());
}

TEST(Perturb, IsDeterministicPerSeed) {
  const Instance original = base_instance();
  PerturbConfig config;
  config.release_jitter = 1.0;
  config.size_noise = 0.5;
  config.drop_fraction = 0.2;
  config.seed = 123;
  const Instance a = perturb_instance(original, config);
  const Instance b = perturb_instance(original, config);
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  for (std::size_t idx = 0; idx < a.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    EXPECT_EQ(a.job(j).release, b.job(j).release);
    for (std::size_t i = 0; i < a.num_machines(); ++i) {
      EXPECT_EQ(a.processing(static_cast<MachineId>(i), j),
                b.processing(static_cast<MachineId>(i), j));
    }
  }
}

TEST(Perturb, AllDroppedDegeneratesToOneJob) {
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, 2.0);
  builder.add_identical_job(1.0, 3.0);
  const Instance tiny = builder.build();
  PerturbConfig config;
  config.drop_fraction = 0.999;
  config.seed = 1;  // with p=0.999 both jobs drop at most seeds
  const Instance result = perturb_instance(tiny, config);
  EXPECT_GE(result.num_jobs(), 1u);
  EXPECT_TRUE(result.validate().empty());
}

}  // namespace
}  // namespace osched::workload
