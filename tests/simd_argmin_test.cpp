// Lockstep differential wall for the explicitly vectorized dispatch
// kernels (util/simd_argmin.hpp).
//
// The contract under test: every tier the running CPU can execute —
// scalar, AVX2, AVX-512 — produces BIT-IDENTICAL results (values compared
// by bit pattern, indices exactly) for all three kernels, over rows that
// include the dispatch path's full value zoo: ordinary positives, exact
// ties, denormals, 0.0, FLT_MAX, +inf, and all-infinity rows. NaN and
// -0.0 are excluded BY CONTRACT (the dispatch shadow rows never contain
// them; the kernels' min-reassociation argument depends on it).
//
// On hardware without AVX2/AVX-512 the vector cells are skipped (the
// scalar reference always runs), so the wall is green everywhere and
// maximally strict where the silicon allows. The rotating OSCHED_FUZZ_SEED
// hook explores fresh rows every CI run, reproducibly.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "fuzz_seed.hpp"
#include "util/simd_argmin.hpp"

namespace osched::util {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("simd_argmin_test", 523);
}

std::uint32_t bits_of(float v) {
  std::uint32_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Every tier the CPU can execute, scalar always included.
std::vector<SimdTier> executable_tiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (simd_tier_supported(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
  if (simd_tier_supported(SimdTier::kAvx512)) {
    tiers.push_back(SimdTier::kAvx512);
  }
  return tiers;
}

void lb_fill_tier(SimdTier tier, const float* row, const float* pcm,
                  const float* pmp, float coeff, float* lb, std::size_t m) {
  switch (tier) {
    case SimdTier::kScalar: simd::lb_fill_scalar(row, pcm, pmp, coeff, lb, m);
      return;
    case SimdTier::kAvx2: simd::lb_fill_avx2(row, pcm, pmp, coeff, lb, m);
      return;
    case SimdTier::kAvx512:
      simd::lb_fill_avx512(row, pcm, pmp, coeff, lb, m);
      return;
  }
}

simd::ArgminResult block_argmin_tier(SimdTier tier, const float* lb,
                                     std::size_t m, float* bmin) {
  switch (tier) {
    case SimdTier::kScalar:
      return simd::block_minima_argmin_scalar(lb, m, bmin);
    case SimdTier::kAvx2: return simd::block_minima_argmin_avx2(lb, m, bmin);
    case SimdTier::kAvx512:
      return simd::block_minima_argmin_avx512(lb, m, bmin);
  }
  return {};
}

simd::IdleArgmin idle_argmin_tier(SimdTier tier, const double* row,
                                  const std::uint32_t* pend_n, std::size_t m,
                                  double epsilon) {
  switch (tier) {
    case SimdTier::kScalar:
      return simd::idle_lambda_argmin_scalar(row, pend_n, m, epsilon);
    case SimdTier::kAvx2:
      return simd::idle_lambda_argmin_avx2(row, pend_n, m, epsilon);
    case SimdTier::kAvx512:
      return simd::idle_lambda_argmin_avx512(row, pend_n, m, epsilon);
  }
  return {};
}

// Sizes straddling every lane/block boundary the kernels care about:
// empty, sub-lane tails, exact 8/16 multiples, odd blocks, a large row.
const std::size_t kSizes[] = {0,  1,  2,  3,  7,  8,   9,   15,  16, 17,
                              23, 24, 31, 32, 33, 63,  64,  65,  96, 127,
                              128, 129, 255, 256, 257, 1000};

/// A float from the dispatch-value zoo: mostly ordinary positives with
/// heavy tie mass, spiced with 0, denormals, FLT_MAX and +inf.
float fuzz_value(std::mt19937_64& rng) {
  const std::uint64_t kind = rng() % 16;
  if (kind == 0) return 0.0f;
  if (kind == 1) return std::numeric_limits<float>::infinity();
  if (kind == 2) return FLT_MAX;
  if (kind == 3) return std::numeric_limits<float>::denorm_min();
  if (kind == 4) return FLT_MIN / 2;  // a larger denormal
  // Quantized coarse grid => many exact cross-lane ties.
  return 0.25f * static_cast<float>(rng() % 64 + 1);
}

TEST(SimdArgmin, TierReportingIsConsistent) {
  const SimdTier active = active_simd_tier();
  EXPECT_TRUE(simd_tier_supported(active));
  // Support is downward closed.
  if (simd_tier_supported(SimdTier::kAvx512)) {
    EXPECT_TRUE(simd_tier_supported(SimdTier::kAvx2));
  }
  EXPECT_TRUE(simd_tier_supported(SimdTier::kScalar));
  EXPECT_STREQ(to_string(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(to_string(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(to_string(SimdTier::kAvx512), "avx512");
}

TEST(SimdArgmin, LbFillLockstep) {
  std::mt19937_64 rng(base_seed() + 1);
  const auto tiers = executable_tiers();
  for (const std::size_t m : kSizes) {
    for (int round = 0; round < 8; ++round) {
      std::vector<float> row(m), pcm(m), pmp(m);
      for (std::size_t i = 0; i < m; ++i) {
        row[i] = fuzz_value(rng);
        // pcm is a small count-like factor, pmp a size-like one.
        pcm[i] = static_cast<float>(rng() % 5);
        pmp[i] = fuzz_value(rng);
      }
      const float coeff = 0.5f * static_cast<float>(rng() % 8 + 1);
      std::vector<float> reference(m, -1.0f);
      simd::lb_fill_scalar(row.data(), pcm.data(), pmp.data(), coeff,
                           reference.data(), m);
      for (const SimdTier tier : tiers) {
        std::vector<float> lb(m, -2.0f);
        lb_fill_tier(tier, row.data(), pcm.data(), pmp.data(), coeff,
                     lb.data(), m);
        for (std::size_t i = 0; i < m; ++i) {
          ASSERT_EQ(bits_of(lb[i]), bits_of(reference[i]))
              << to_string(tier) << " m=" << m << " i=" << i << " row="
              << row[i] << " pcm=" << pcm[i] << " pmp=" << pmp[i];
        }
      }
    }
  }
}

TEST(SimdArgmin, BlockMinimaArgminLockstep) {
  std::mt19937_64 rng(base_seed() + 2);
  const auto tiers = executable_tiers();
  for (const std::size_t m : kSizes) {
    for (int round = 0; round < 8; ++round) {
      std::vector<float> lb(m);
      for (float& v : lb) v = fuzz_value(rng);
      const std::size_t full = m / 8;
      std::vector<float> ref_bmin(full, -1.0f);
      const simd::ArgminResult reference =
          simd::block_minima_argmin_scalar(lb.data(), m, ref_bmin.data());
      for (const SimdTier tier : tiers) {
        std::vector<float> bmin(full, -2.0f);
        const simd::ArgminResult got =
            block_argmin_tier(tier, lb.data(), m, bmin.data());
        ASSERT_EQ(bits_of(got.value), bits_of(reference.value))
            << to_string(tier) << " m=" << m;
        ASSERT_EQ(got.index, reference.index) << to_string(tier) << " m=" << m;
        for (std::size_t b = 0; b < full; ++b) {
          ASSERT_EQ(bits_of(bmin[b]), bits_of(ref_bmin[b]))
              << to_string(tier) << " m=" << m << " block=" << b;
        }
      }
    }
  }
}

TEST(SimdArgmin, BlockMinimaAllInfinityRow) {
  // Rows of pure +inf: the minimum stays at the FLT_MAX seed and the index
  // reports m ("nothing at or below the seed"), identically on every tier.
  for (const std::size_t m : {std::size_t{5}, std::size_t{8}, std::size_t{24},
                              std::size_t{33}}) {
    std::vector<float> lb(m, std::numeric_limits<float>::infinity());
    std::vector<float> bmin(m / 8);
    for (const SimdTier tier : executable_tiers()) {
      const simd::ArgminResult got =
          block_argmin_tier(tier, lb.data(), m, bmin.data());
      EXPECT_EQ(bits_of(got.value), bits_of(FLT_MAX))
          << to_string(tier) << " m=" << m;
      EXPECT_EQ(got.index, m) << to_string(tier) << " m=" << m;
    }
  }
}

TEST(SimdArgmin, BlockMinimaFirstIndexOnTies) {
  // Hand-built tie patterns: the SAME minimum in several lanes and blocks;
  // every tier must report the FIRST index.
  const std::size_t m = 40;
  std::vector<float> lb(m, 7.0f);
  for (const std::size_t first : {std::size_t{0}, std::size_t{3},
                                  std::size_t{8}, std::size_t{17},
                                  std::size_t{33}, std::size_t{39}}) {
    std::vector<float> row = lb;
    for (std::size_t i = first; i < m; i += 5) row[i] = 1.5f;  // many ties
    std::vector<float> bmin(m / 8);
    for (const SimdTier tier : executable_tiers()) {
      const simd::ArgminResult got =
          block_argmin_tier(tier, row.data(), m, bmin.data());
      EXPECT_EQ(got.index, first) << to_string(tier) << " first=" << first;
      EXPECT_EQ(bits_of(got.value), bits_of(1.5f)) << to_string(tier);
    }
  }
}

TEST(SimdArgmin, IdleLambdaArgminLockstep) {
  std::mt19937_64 rng(base_seed() + 3);
  const auto tiers = executable_tiers();
  const double epsilons[] = {0.2, 0.25, 1.0 / 3.0};
  for (const std::size_t m : kSizes) {
    for (int round = 0; round < 8; ++round) {
      std::vector<double> row(m);
      std::vector<std::uint32_t> pend(m);
      for (std::size_t i = 0; i < m; ++i) {
        // Positive finite doubles with tie mass (the row is effective
        // processing — never inf on the dense dispatch path).
        row[i] = 0.125 * static_cast<double>(rng() % 96 + 1);
        pend[i] = static_cast<std::uint32_t>(rng() % 3);  // ~1/3 idle
      }
      const double epsilon = epsilons[round % 3];
      const simd::IdleArgmin reference = simd::idle_lambda_argmin_scalar(
          row.data(), pend.data(), m, epsilon);
      for (const SimdTier tier : tiers) {
        const simd::IdleArgmin got =
            idle_argmin_tier(tier, row.data(), pend.data(), m, epsilon);
        ASSERT_EQ(got.index, reference.index)
            << to_string(tier) << " m=" << m << " round=" << round;
        ASSERT_EQ(bits_of(got.lambda), bits_of(reference.lambda))
            << to_string(tier) << " m=" << m << " round=" << round;
      }
    }
  }
}

TEST(SimdArgmin, IdleLambdaNoIdleMachine) {
  // All machines busy: index m, lambda +infinity, on every tier.
  for (const std::size_t m : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                              std::size_t{21}}) {
    std::vector<double> row(m, 2.0);
    std::vector<std::uint32_t> pend(m, 1);
    for (const SimdTier tier : executable_tiers()) {
      const simd::IdleArgmin got =
          idle_argmin_tier(tier, row.data(), pend.data(), m, 0.25);
      EXPECT_EQ(got.index, m) << to_string(tier) << " m=" << m;
      EXPECT_TRUE(std::isinf(got.lambda)) << to_string(tier) << " m=" << m;
    }
  }
}

TEST(SimdArgmin, DispatchedWrappersMatchScalar) {
  // The public (dispatched) entry points route to SOME tier; whatever it
  // is, results must equal the scalar reference bit for bit.
  std::mt19937_64 rng(base_seed() + 4);
  const std::size_t m = 67;
  std::vector<float> row(m), pcm(m), pmp(m);
  for (std::size_t i = 0; i < m; ++i) {
    row[i] = fuzz_value(rng);
    pcm[i] = static_cast<float>(rng() % 4);
    pmp[i] = fuzz_value(rng);
  }
  std::vector<float> a(m), b(m);
  simd::lb_fill(row.data(), pcm.data(), pmp.data(), 1.5f, a.data(), m);
  simd::lb_fill_scalar(row.data(), pcm.data(), pmp.data(), 1.5f, b.data(), m);
  for (std::size_t i = 0; i < m; ++i) {
    ASSERT_EQ(bits_of(a[i]), bits_of(b[i])) << i;
  }
  std::vector<float> bmin_a(m / 8), bmin_b(m / 8);
  const simd::ArgminResult ra =
      simd::block_minima_argmin(a.data(), m, bmin_a.data());
  const simd::ArgminResult rb =
      simd::block_minima_argmin_scalar(b.data(), m, bmin_b.data());
  EXPECT_EQ(bits_of(ra.value), bits_of(rb.value));
  EXPECT_EQ(ra.index, rb.index);
}

}  // namespace
}  // namespace osched::util
