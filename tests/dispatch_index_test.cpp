// Differential wall for the machine-selection dispatch index.
//
// Every policy with an argmin-lambda dispatch (Theorem 1, Theorem 2, the
// weighted extension) carries two dispatch modes: kIndexed — cached
// per-machine lower bounds, best-first heap, idle-machine order walk — and
// kLinearScan — the reference exhaustive scan, no pruning. The contract
// under test: both modes make BIT-IDENTICAL decisions (same schedule under
// a zero-tolerance diff, same counters, same certificates, double for
// double) for every workload family, eligibility density, machine count
// and seed, including the Rule-2 victim ablations whose random draws would
// amplify any divergence. The rotating OSCHED_FUZZ_SEED hook lets CI
// explore fresh instances every run, reproducibly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "core/energy_flow/energy_flow.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "fuzz_seed.hpp"
#include "sim/schedule_io.hpp"
#include "util/simd_argmin.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("dispatch_index_test", 77);
}

Instance make_workload(double eligibility, std::uint64_t seed, std::size_t n,
                       std::size_t m, bool weighted) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.2;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  if (weighted) config.weights = workload::WeightDistribution::kUniform;
  if (eligibility < 1.0) {
    config.machines.model = workload::MachineModel::kRestricted;
    config.machines.eligibility = eligibility;
  }
  return workload::generate_workload(config);
}

void expect_same_schedule(const Schedule& a, const Schedule& b,
                          const std::string& context) {
  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;  // byte-identical, not tolerance-equal
  const auto diffs = diff_schedules(a, b, strict);
  ASSERT_TRUE(diffs.empty()) << context << ": " << diffs.size()
                             << " schedule diffs; first: " << diffs.front();
}

// The grid every policy is exercised over: eligibility densities from
// fully dense to very sparse, machine counts around the dispatch's
// block/cutover boundaries (including non-multiples of 8).
const double kDensities[] = {1.0, 0.5, 0.1};
const std::size_t kMachineCounts[] = {3, 8, 33, 64};
constexpr std::size_t kJobs = 600;
constexpr std::uint64_t kSeeds = 3;

TEST(DispatchIndex, Theorem1IndexedEqualsLinearScan) {
  for (const double density : kDensities) {
    for (const std::size_t m : kMachineCounts) {
      for (std::uint64_t s = 0; s < kSeeds; ++s) {
        const Instance instance =
            make_workload(density, base_seed() + 13 * s, kJobs, m, false);
        RejectionFlowOptions indexed;
        indexed.epsilon = 0.25;
        indexed.dispatch = DispatchMode::kIndexed;
        RejectionFlowOptions linear = indexed;
        linear.dispatch = DispatchMode::kLinearScan;

        const RejectionFlowResult a = run_rejection_flow(instance, indexed);
        const RejectionFlowResult b = run_rejection_flow(instance, linear);
        const std::string context = "t1 density=" + std::to_string(density) +
                                    " m=" + std::to_string(m) + " seed+" +
                                    std::to_string(13 * s);
        expect_same_schedule(a.schedule, b.schedule, context);
        EXPECT_EQ(a.rule1_rejections, b.rule1_rejections) << context;
        EXPECT_EQ(a.rule2_rejections, b.rule2_rejections) << context;
        EXPECT_EQ(a.sum_lambda, b.sum_lambda) << context;
        EXPECT_EQ(a.beta_integral, b.beta_integral) << context;
        EXPECT_EQ(a.dual_objective, b.dual_objective) << context;
        EXPECT_EQ(a.opt_lower_bound, b.opt_lower_bound) << context;
        ASSERT_EQ(a.lambda.size(), b.lambda.size()) << context;
        for (std::size_t j = 0; j < a.lambda.size(); ++j) {
          ASSERT_EQ(a.lambda[j], b.lambda[j]) << context << " job " << j;
          ASSERT_EQ(a.definitive_finish[j], b.definitive_finish[j])
              << context << " job " << j;
        }
      }
    }
  }
}

TEST(DispatchIndex, Theorem1VictimAblationsStayIdentical) {
  // kRandom draws from the victim RNG in dispatch order; kSmallest/kNewest
  // change which erase paths run. All of them must be mode-invariant.
  const Rule2Victim victims[] = {Rule2Victim::kLargest, Rule2Victim::kSmallest,
                                 Rule2Victim::kNewest, Rule2Victim::kRandom};
  const Instance instance = make_workload(1.0, base_seed() + 99, kJobs, 16, false);
  for (const Rule2Victim victim : victims) {
    RejectionFlowOptions indexed;
    indexed.epsilon = 0.2;
    indexed.rule2_victim = victim;
    indexed.dispatch = DispatchMode::kIndexed;
    RejectionFlowOptions linear = indexed;
    linear.dispatch = DispatchMode::kLinearScan;
    const RejectionFlowResult a = run_rejection_flow(instance, indexed);
    const RejectionFlowResult b = run_rejection_flow(instance, linear);
    const std::string context = std::string("victim=") + to_string(victim);
    expect_same_schedule(a.schedule, b.schedule, context);
    EXPECT_EQ(a.rule2_rejections, b.rule2_rejections) << context;
    EXPECT_EQ(a.sum_lambda, b.sum_lambda) << context;
  }
}

TEST(DispatchIndex, Theorem1SpeedAugmentedStaysIdentical) {
  // speed != 1 exercises the effective-processing division and the
  // rounded-up float speed in the bound path.
  const Instance instance = make_workload(0.5, base_seed() + 7, kJobs, 9, false);
  for (const double speed : {1.0, 1.5, 2.0}) {
    RejectionFlowOptions indexed;
    indexed.epsilon = 0.25;
    indexed.speed = speed;
    indexed.dispatch = DispatchMode::kIndexed;
    RejectionFlowOptions linear = indexed;
    linear.dispatch = DispatchMode::kLinearScan;
    const RejectionFlowResult a = run_rejection_flow(instance, indexed);
    const RejectionFlowResult b = run_rejection_flow(instance, linear);
    const std::string context = "speed=" + std::to_string(speed);
    expect_same_schedule(a.schedule, b.schedule, context);
    EXPECT_EQ(a.sum_lambda, b.sum_lambda) << context;
  }
}

TEST(DispatchIndex, WeightedExtIndexedEqualsLinearScan) {
  for (const double density : kDensities) {
    for (const std::size_t m : kMachineCounts) {
      for (std::uint64_t s = 0; s < kSeeds; ++s) {
        const Instance instance =
            make_workload(density, base_seed() + 31 * s, kJobs, m, true);
        WeightedFlowOptions indexed;
        indexed.epsilon = 0.25;
        indexed.dispatch = DispatchMode::kIndexed;
        WeightedFlowOptions linear = indexed;
        linear.dispatch = DispatchMode::kLinearScan;

        const WeightedFlowResult a = run_weighted_rejection_flow(instance, indexed);
        const WeightedFlowResult b = run_weighted_rejection_flow(instance, linear);
        const std::string context = "wext density=" + std::to_string(density) +
                                    " m=" + std::to_string(m) + " seed+" +
                                    std::to_string(31 * s);
        expect_same_schedule(a.schedule, b.schedule, context);
        EXPECT_EQ(a.rule1_rejections, b.rule1_rejections) << context;
        EXPECT_EQ(a.rule2_rejections, b.rule2_rejections) << context;
        EXPECT_EQ(a.rejected_weight, b.rejected_weight) << context;
      }
    }
  }
}

TEST(DispatchIndex, Theorem2IndexedEqualsLinearScan) {
  for (const double density : {1.0, 0.5}) {
    for (const std::size_t m : {3, 8, 17}) {
      for (std::uint64_t s = 0; s < kSeeds; ++s) {
        const Instance instance = make_workload(
            density, base_seed() + 41 * s, 300, static_cast<std::size_t>(m), true);
        EnergyFlowOptions indexed;
        indexed.epsilon = 0.5;
        indexed.alpha = 2.0;
        indexed.dispatch = DispatchMode::kIndexed;
        EnergyFlowOptions linear = indexed;
        linear.dispatch = DispatchMode::kLinearScan;

        const EnergyFlowResult a = run_energy_flow(instance, indexed);
        const EnergyFlowResult b = run_energy_flow(instance, linear);
        const std::string context = "t2 density=" + std::to_string(density) +
                                    " m=" + std::to_string(m) + " seed+" +
                                    std::to_string(41 * s);
        expect_same_schedule(a.schedule, b.schedule, context);
        EXPECT_EQ(a.rejections, b.rejections) << context;
        EXPECT_EQ(a.sum_lambda, b.sum_lambda) << context;
        EXPECT_EQ(a.v_integral, b.v_integral) << context;
        EXPECT_EQ(a.dual_objective, b.dual_objective) << context;
        ASSERT_EQ(a.lambda.size(), b.lambda.size()) << context;
        for (std::size_t j = 0; j < a.lambda.size(); ++j) {
          ASSERT_EQ(a.lambda[j], b.lambda[j]) << context << " job " << j;
        }
      }
    }
  }
}

// The order table stores machine ids as uint16 below m = 65536 and widens
// to uint32 at the boundary — construction never skips it. This pins the
// exact cutover (65535 → width 16, 65536/65537 → width 32), proves both
// widths make bit-identical decisions against the exhaustive scan, and
// checks the facade surfaces the width. Sparse rows keep the 65537-machine
// instances tiny (memory is O(eligible entries), not n×m).
TEST(DispatchIndex, OrderTableWidensAtTheUint16IdCeiling) {
  for (const std::size_t m :
       {std::size_t{65535}, std::size_t{65536}, std::size_t{65537}}) {
    std::vector<Job> jobs;
    std::vector<std::vector<SparseEntry>> rows;
    for (std::size_t k = 0; k < 12; ++k) {
      Job job;
      job.id = static_cast<JobId>(k);
      job.release = static_cast<Time>(k) * 0.25;
      jobs.push_back(job);
      // Eligible on a handful of machines spread across the full id range —
      // including m-1, the id that overflows uint16 once m > 65536.
      rows.push_back({{static_cast<MachineId>(k % 7), 2.0 + 0.125 * k},
                      {static_cast<MachineId>(m / 2 + k), 1.0 + 0.25 * k},
                      {static_cast<MachineId>(m - 1 - k), 3.0 + 0.5 * k}});
      std::sort(rows.back().begin(), rows.back().end(),
                [](const SparseEntry& a, const SparseEntry& b) {
                  return a.machine < b.machine;
                });
    }
    const Instance instance =
        Instance::from_sparse_rows(std::move(jobs), m, std::move(rows));
    const int expect_width = m < 65536 ? 16 : 32;
    EXPECT_TRUE(instance.dispatch_index_active()) << "m=" << m;
    EXPECT_EQ(instance.dispatch_order_width(), expect_width) << "m=" << m;
    // Exactly one of the width-specific rows exists.
    EXPECT_EQ(instance.p_order_row(0) != nullptr, expect_width == 16)
        << "m=" << m;
    EXPECT_EQ(instance.p_order32_row(0) != nullptr, expect_width == 32)
        << "m=" << m;

    // Either side of the boundary, indexed dispatch (uint16 or uint32
    // table) stays bit-identical to the exhaustive scan.
    RejectionFlowOptions indexed;
    indexed.epsilon = 0.5;
    RejectionFlowOptions linear = indexed;
    linear.dispatch = DispatchMode::kLinearScan;
    const RejectionFlowResult a = run_rejection_flow(instance, indexed);
    const RejectionFlowResult b = run_rejection_flow(instance, linear);
    expect_same_schedule(a.schedule, b.schedule, "m=" + std::to_string(m));

    // And the facade surfaces activity, width, and a sane SIMD tier.
    const api::RunSummary summary =
        api::run(api::Algorithm::kTheorem1, instance);
    EXPECT_TRUE(summary.dispatch_index_active) << "m=" << m;
    EXPECT_EQ(summary.dispatch_order_width, expect_width) << "m=" << m;
    EXPECT_TRUE(util::simd_tier_supported(summary.dispatch_simd_tier))
        << "m=" << m;
  }
}

// The same three boundary cells through the WEIGHTED policy (a second,
// independent instantiation of the uint32 store views), dense rows this
// time so the order table covers every id from 0 to m-1 contiguously.
// Dense at m = 65537 would be 65537 doubles per job, so n is kept tiny.
TEST(DispatchIndex, WeightedExtCrossesTheWidthBoundaryIdentically) {
  for (const std::size_t m :
       {std::size_t{65535}, std::size_t{65536}, std::size_t{65537}}) {
    std::vector<Job> jobs;
    for (std::size_t k = 0; k < 4; ++k) {
      Job job;
      job.id = static_cast<JobId>(k);
      job.release = static_cast<Time>(k) * 0.5;
      job.weight = 1.0 + 0.5 * k;
      jobs.push_back(job);
    }
    // Machine-major matrix; deterministic, collision-rich sizes: many exact
    // ties so the (p, id) tie-break in both order widths is exercised.
    std::vector<std::vector<Work>> processing(m, std::vector<Work>(4));
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = 0; k < 4; ++k) {
        processing[i][k] = 1.0 + static_cast<double>((i * 7 + k) % 13);
      }
    }
    const Instance instance(std::move(jobs), std::move(processing));
    EXPECT_EQ(instance.dispatch_order_width(), m < 65536 ? 16 : 32)
        << "m=" << m;

    WeightedFlowOptions indexed;
    indexed.epsilon = 0.4;
    indexed.dispatch = DispatchMode::kIndexed;
    WeightedFlowOptions linear = indexed;
    linear.dispatch = DispatchMode::kLinearScan;
    const WeightedFlowResult a = run_weighted_rejection_flow(instance, indexed);
    const WeightedFlowResult b = run_weighted_rejection_flow(instance, linear);
    const std::string context = "wext m=" + std::to_string(m);
    expect_same_schedule(a.schedule, b.schedule, context);
    EXPECT_EQ(a.rejected_weight, b.rejected_weight) << context;
  }
}

}  // namespace
}  // namespace osched
