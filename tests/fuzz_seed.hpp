// Shared rotating-seed hook for the fuzz/differential test binaries.
//
// OSCHED_FUZZ_SEED (decimal env var) reseeds a whole test binary; CI
// derives it from the workflow run id so every run explores fresh
// workloads/mutations, and the value is echoed once per binary so any
// failure reproduces locally with `OSCHED_FUZZ_SEED=<value> ./build/<test>`.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>

namespace osched::testing {

/// Returns OSCHED_FUZZ_SEED, or `fallback` when unset, logging the value
/// once under `tag` (the test binary's name).
inline std::uint64_t fuzz_base_seed(const char* tag, std::uint64_t fallback) {
  static const std::uint64_t seed = [&] {
    const char* env = std::getenv("OSCHED_FUZZ_SEED");
    const std::uint64_t value =
        env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
    std::cout << "[" << tag << "] OSCHED_FUZZ_SEED=" << value
              << " (export to reproduce)\n";
    return value;
  }();
  return seed;
}

}  // namespace osched::testing
