// Differential wall for the tournament-tree event queue.
//
// sim/event_queue.hpp aliases EventQueue to util::TournamentEventQueue and
// keeps the previous lazy-cancel binary heap as HeapEventQueue. The
// contract: both implementations deliver IDENTICAL event sequences — same
// (time, seq, machine, job), same peek_time at every step — under any
// interleaving of schedule/cancel/pop, because both order by (time,
// insertion sequence). The fuzz driver below runs randomized op tapes over
// both queues in lockstep (with the rotating OSCHED_FUZZ_SEED); the
// structured tests pin the tournament-specific shapes (bucket churn on one
// machine, growth across the power-of-two capacity, interleaved cancels
// racing the winner path).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "fuzz_seed.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("event_queue_diff_test", 4242);
}

TEST(EventQueueDiff, LockstepFuzzAgainstHeap) {
  struct LiveEvent {
    std::uint64_t tournament_handle;
    std::uint64_t heap_handle;
    JobId job;  ///< unique per event: identifies the pair a pop fired
  };
  for (std::uint64_t round = 0; round < 8; ++round) {
    util::Rng rng(base_seed() + round);
    util::TournamentEventQueue tournament;
    HeapEventQueue heap;
    std::vector<LiveEvent> live;
    const std::size_t machines = 1 + rng.index(40);

    for (std::size_t op = 0; op < 3000; ++op) {
      ASSERT_EQ(tournament.empty(), heap.empty());
      ASSERT_EQ(tournament.peek_time().has_value(),
                heap.peek_time().has_value());
      if (!heap.empty()) {
        ASSERT_EQ(*tournament.peek_time(), *heap.peek_time());
      }
      const std::size_t what = rng.index(10);
      if (what < 5 || live.empty()) {
        // Schedule: same (time, machine, job) into both. Coarse times force
        // plenty of exact ties, exercising the seq tie-break.
        const Time time = 0.25 * static_cast<double>(rng.index(64));
        const auto machine = static_cast<MachineId>(rng.index(machines));
        const auto job = static_cast<JobId>(op);
        live.push_back(LiveEvent{tournament.schedule(time, machine, job),
                                 heap.schedule(time, machine, job), job});
      } else if (what < 7) {
        // Cancel a random live event in both.
        const std::size_t pick = rng.index(live.size());
        tournament.cancel(live[pick].tournament_handle);
        heap.cancel(live[pick].heap_handle);
        live[pick] = live.back();
        live.pop_back();
      } else if (!heap.empty()) {
        // Pop: the delivered events must match field for field.
        const SimEvent a = tournament.pop();
        const SimEvent b = heap.pop();
        ASSERT_EQ(a.time, b.time);
        ASSERT_EQ(a.id, b.id);
        ASSERT_EQ(a.machine, b.machine);
        ASSERT_EQ(a.job, b.job);
        for (std::size_t k = 0; k < live.size(); ++k) {
          if (live[k].job == a.job) {
            live[k] = live.back();
            live.pop_back();
            break;
          }
        }
      }
    }
    // Drain both to the end.
    while (!heap.empty()) {
      ASSERT_FALSE(tournament.empty());
      const SimEvent a = tournament.pop();
      const SimEvent b = heap.pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.id, b.id);
      ASSERT_EQ(a.machine, b.machine);
      ASSERT_EQ(a.job, b.job);
    }
    EXPECT_TRUE(tournament.empty());
  }
}

TEST(EventQueueDiff, SingleMachineBucketChurn) {
  util::TournamentEventQueue queue;
  // Many events on ONE machine: the bucket path (linear rescans) must still
  // deliver global (time, seq) order.
  std::vector<std::uint64_t> handles;
  for (int k = 0; k < 100; ++k) {
    handles.push_back(queue.schedule(100.0 - k, 3, k));
  }
  // Cancel every third.
  for (int k = 0; k < 100; k += 3) queue.cancel(handles[k]);
  Time last = -1.0;
  int popped = 0;
  while (!queue.empty()) {
    const SimEvent event = queue.pop();
    EXPECT_GT(event.time, last);
    last = event.time;
    EXPECT_NE(event.job % 3, 0) << "cancelled event fired";
    ++popped;
  }
  EXPECT_EQ(popped, 66);
}

TEST(EventQueueDiff, CapacityGrowthKeepsOrder) {
  util::TournamentEventQueue queue;
  queue.schedule(5.0, 0, 0);
  // Growing past successive power-of-two capacities must preserve the
  // already-queued winners.
  queue.schedule(1.0, 9, 1);
  queue.schedule(3.0, 70, 2);
  queue.schedule(0.5, 1000, 3);
  EXPECT_EQ(queue.pop().job, 3);
  EXPECT_EQ(queue.pop().job, 1);
  EXPECT_EQ(queue.pop().job, 2);
  EXPECT_EQ(queue.pop().job, 0);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace osched
