// Tests for the Theorem 1 scheduler: policy semantics (dispatch order,
// Rule 1, Rule 2), dual bookkeeping, the theorem's guarantees (rejection
// budget, ratio vs certified lower bound), and schedule feasibility on
// randomized instances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/flow/rejection_flow.hpp"
#include "instance/builders.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/rng.hpp"

namespace osched {
namespace {

// -------------------------------------------------------------- unit cases

TEST(ReferenceLambda, EmptyQueue) {
  // lambda = p/eps + p with nothing pending.
  EXPECT_DOUBLE_EQ(reference_lambda_ij({}, 10.0, 0.5), 30.0);
}

TEST(ReferenceLambda, MixedQueue) {
  // pending {2, 5}, p=3, eps=0.5: 3/0.5 + (2+3) + 1*3 = 14.
  EXPECT_DOUBLE_EQ(reference_lambda_ij({2.0, 5.0}, 3.0, 0.5), 14.0);
}

TEST(ReferenceLambda, EqualProcessingOrdersBeforeNewJob) {
  // pending {3}, p=3: the pending job precedes j (earlier release).
  // lambda = 3/0.5 + (3+3) + 0 = 12.
  EXPECT_DOUBLE_EQ(reference_lambda_ij({3.0}, 3.0, 0.5), 12.0);
}

TEST(RejectionFlow, SingleJobRunsImmediately) {
  const Instance instance = single_machine_instance({{0.0, 5.0}});
  const auto result = run_rejection_flow(instance, {.epsilon = 0.5});
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.schedule.record(0).fate, JobFate::kCompleted);
  EXPECT_DOUBLE_EQ(result.schedule.record(0).start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.record(0).end, 5.0);
  // First job: lambda_j = eps/(1+eps) * (p/eps + p) = p exactly.
  EXPECT_NEAR(result.sum_lambda, 5.0, 1e-12);
}

TEST(RejectionFlow, SptOrderAmongPending) {
  // Long job occupies the machine; then shorter jobs queue and are served
  // shortest-first once it completes. eps=0.9 so no rejections occur
  // (thresholds: rule1 = ceil(1/0.9) = 2? No: 1/0.9 = 1.11 -> ceil = 2;
  // two arrivals during execution would reject). Use only 2 queued jobs.
  const Instance instance =
      single_machine_instance({{0.0, 10.0}, {1.0, 4.0}, {2.0, 2.0}});
  RejectionFlowOptions options;
  options.epsilon = 0.6;  // rule1 threshold ceil(1.67)=2: second arrival
                          // during the long job triggers Rule 1.
  options.enable_rule1 = false;  // isolate scheduling order
  options.enable_rule2 = false;
  const auto result = run_rejection_flow(instance, options);
  check_schedule(result.schedule, instance);
  // Job 0 runs [0,10); then job 2 (p=2) before job 1 (p=4).
  EXPECT_DOUBLE_EQ(result.schedule.record(2).start, 10.0);
  EXPECT_DOUBLE_EQ(result.schedule.record(1).start, 12.0);
  EXPECT_EQ(result.schedule.num_rejected(), 0u);
}

TEST(RejectionFlow, Rule1RejectsRunningJobAtThreshold) {
  // eps = 0.5: Rule 1 threshold = 2 arrivals during execution.
  const Instance instance = single_machine_instance(
      {{0.0, 100.0}, {1.0, 1.0}, {2.0, 1.0}});
  RejectionFlowOptions options;
  options.epsilon = 0.5;
  options.enable_rule2 = false;
  const auto result = run_rejection_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.rule1_rejections, 1u);
  EXPECT_EQ(result.schedule.record(0).fate, JobFate::kRejectedRunning);
  EXPECT_DOUBLE_EQ(result.schedule.record(0).rejection_time, 2.0);
  // Remaining jobs complete.
  EXPECT_EQ(result.schedule.record(1).fate, JobFate::kCompleted);
  EXPECT_EQ(result.schedule.record(2).fate, JobFate::kCompleted);
  // After the rejection at t=2 the machine starts the shortest pending.
  EXPECT_DOUBLE_EQ(result.schedule.record(1).start, 2.0);
}

TEST(RejectionFlow, Rule1CounterResetsForNextExecution) {
  // One arrival during each of two executions: never reaches threshold 2.
  const Instance instance = single_machine_instance(
      {{0.0, 10.0}, {1.0, 10.0}, {11.0, 1.0}});
  RejectionFlowOptions options;
  options.epsilon = 0.5;
  options.enable_rule2 = false;
  const auto result = run_rejection_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.rule1_rejections, 0u);
  EXPECT_EQ(result.schedule.num_rejected(), 0u);
}

TEST(RejectionFlow, Rule2RejectsLargestPending) {
  // eps = 0.5: Rule 2 threshold = ceil(1 + 2) = 3 dispatches.
  // Machine busy with a long job (Rule 1 disabled): pending grows.
  const Instance instance = single_machine_instance(
      {{0.0, 100.0}, {1.0, 7.0}, {2.0, 9.0}});
  RejectionFlowOptions options;
  options.epsilon = 0.5;
  options.enable_rule1 = false;
  const auto result = run_rejection_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.rule2_rejections, 1u);
  // Third dispatch (job 2) trips the counter; largest pending is job 2
  // itself (p=9 > 7).
  EXPECT_EQ(result.schedule.record(2).fate, JobFate::kRejectedPending);
  EXPECT_DOUBLE_EQ(result.schedule.record(2).rejection_time, 2.0);
  EXPECT_EQ(result.schedule.record(1).fate, JobFate::kCompleted);
}

TEST(RejectionFlow, HandComputedScenario) {
  // eps = 0.5 (rule1 threshold 2, rule2 threshold 3).
  // j0 (r=0, p=10) starts at 0. j1 (r=1, p=5) queues. j2 (r=2, p=3):
  //   second arrival during j0's run -> Rule 1 rejects j0 (remaining 8);
  //   third dispatch -> Rule 2 rejects the largest pending j1 (p=5);
  //   machine idle -> j2 starts at 2, completes at 5.
  const Instance instance =
      single_machine_instance({{0.0, 10.0}, {1.0, 5.0}, {2.0, 3.0}});
  const auto result = run_rejection_flow(instance, {.epsilon = 0.5});
  check_schedule(result.schedule, instance);

  EXPECT_EQ(result.schedule.record(0).fate, JobFate::kRejectedRunning);
  EXPECT_EQ(result.schedule.record(1).fate, JobFate::kRejectedPending);
  EXPECT_EQ(result.schedule.record(2).fate, JobFate::kCompleted);
  EXPECT_DOUBLE_EQ(result.schedule.record(2).end, 5.0);
  EXPECT_EQ(result.rule1_rejections, 1u);
  EXPECT_EQ(result.rule2_rejections, 1u);

  // ALG total flow (rejected pay until rejection): j0: 2, j1: 1, j2: 3.
  EXPECT_DOUBLE_EQ(result.schedule.total_flow(instance), 6.0);

  // Dual bookkeeping, hand-computed:
  //   lambda_0 = (1/3)(10/.5 + 10) = 10; lambda_1 = (1/3)(5/.5+5) = 5;
  //   lambda_2 = (1/3)(3/.5 + 3 + 3) = 4. Sum = 19.
  EXPECT_NEAR(result.sum_lambda, 19.0, 1e-9);
  //   C~_0 = 2 + 8 = 10 (its own remaining), C~_1 = 2 + 8 + (0 + 0 + 5) = 15,
  //   C~_2 = 5 + 8 = 13. Residence = 10 + 14 + 11 = 35.
  ASSERT_EQ(result.definitive_finish.size(), 3u);
  EXPECT_NEAR(result.definitive_finish[0], 10.0, 1e-9);
  EXPECT_NEAR(result.definitive_finish[1], 15.0, 1e-9);
  EXPECT_NEAR(result.definitive_finish[2], 13.0, 1e-9);
  //   beta integral = eps/(1+eps)^2 * 35 = 0.5/2.25 * 35.
  EXPECT_NEAR(result.beta_integral, 0.5 / 2.25 * 35.0, 1e-9);
  EXPECT_NEAR(result.dual_objective, 19.0 - 0.5 / 2.25 * 35.0, 1e-9);
}

TEST(RejectionFlow, DispatchPrefersLowerLambdaMachine) {
  // Machine 0 busy with a long job and a queue; machine 1 idle. Job should
  // go to machine 1 even though p is slightly larger there.
  InstanceBuilder builder(2);
  builder.add_job(0.0, {100.0, kTimeInfinity});
  builder.add_job(1.0, {10.0, kTimeInfinity});
  builder.add_job(2.0, {5.0, 6.0});
  const Instance instance = builder.build();
  RejectionFlowOptions options;
  options.epsilon = 0.3;
  options.enable_rule1 = false;
  options.enable_rule2 = false;
  const auto result = run_rejection_flow(instance, options);
  check_schedule(result.schedule, instance);
  // lambda_0j = 5/0.3 + (5) + 1*5 ~ 26.7; lambda_1j = 6/0.3 + 6 = 26 -> m1.
  EXPECT_EQ(result.schedule.record(2).machine, 1);
}

TEST(RejectionFlow, IneligibleMachinesNeverUsed) {
  InstanceBuilder builder(2);
  for (int k = 0; k < 6; ++k) {
    builder.add_job(static_cast<Time>(k), {kTimeInfinity, 2.0});
  }
  const Instance instance = builder.build();
  const auto result = run_rejection_flow(instance, {.epsilon = 0.4});
  check_schedule(result.schedule, instance);
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    EXPECT_EQ(result.schedule.record(static_cast<JobId>(j)).machine, 1);
  }
}

TEST(RejectionFlow, SpeedAugmentationShrinksProcessing) {
  const Instance instance = single_machine_instance({{0.0, 10.0}});
  RejectionFlowOptions options;
  options.epsilon = 0.5;
  options.speed = 2.0;
  const auto result = run_rejection_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_DOUBLE_EQ(result.schedule.record(0).end, 5.0);
  EXPECT_DOUBLE_EQ(result.schedule.record(0).speed, 2.0);
}

// ------------------------------------------------------- theorem properties

struct RandomWorkloadParams {
  std::size_t num_jobs;
  std::size_t num_machines;
  double load;        // arrival intensity relative to service capacity
  bool heavy_tail;
  std::uint64_t seed;
};

Instance make_random_instance(const RandomWorkloadParams& params) {
  util::Rng rng(params.seed);
  InstanceBuilder builder(params.num_machines);
  Time t = 0.0;
  for (std::size_t j = 0; j < params.num_jobs; ++j) {
    t += rng.exponential(params.load * static_cast<double>(params.num_machines));
    std::vector<Work> row(params.num_machines);
    const double base = params.heavy_tail ? rng.pareto(0.5, 1.8) : rng.uniform(0.5, 2.0);
    for (auto& p : row) {
      p = base * rng.uniform(0.5, 2.0);  // unrelated speeds
    }
    builder.add_job(t, row);
  }
  return builder.build();
}

class FlowTheoremTest
    : public ::testing::TestWithParam<std::tuple<double, int, bool>> {};

TEST_P(FlowTheoremTest, GuaranteesHoldOnRandomInstances) {
  const auto [eps, machines, heavy] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RandomWorkloadParams params;
    params.num_jobs = 400;
    params.num_machines = static_cast<std::size_t>(machines);
    params.load = 1.2;  // slightly overloaded: rejections matter
    params.heavy_tail = heavy;
    params.seed = util::derive_seed(777, seed);
    const Instance instance = make_random_instance(params);

    const auto result = run_rejection_flow(instance, {.epsilon = eps});

    // (1) Feasibility, independently validated.
    check_schedule(result.schedule, instance);

    // (2) Rejection budget: at most 2*eps*n jobs (Theorem 1).
    const double budget = theorem1_rejection_budget(eps) *
                          static_cast<double>(instance.num_jobs());
    EXPECT_LE(static_cast<double>(result.schedule.num_rejected()), budget + 1e-9)
        << "eps=" << eps << " seed=" << seed;

    // (3) Dual-certified competitive ratio within the theorem bound.
    const double alg = result.schedule.total_flow(instance);
    ASSERT_GT(result.opt_lower_bound, 0.0);
    const double measured_ratio = alg / result.opt_lower_bound;
    EXPECT_LE(measured_ratio, theorem1_ratio_bound(eps) * (1.0 + 1e-9))
        << "eps=" << eps << " machines=" << machines << " seed=" << seed;

    // (4) The aggregate identity of the analysis:
    //     sum lambda_j >= eps/(1+eps) * sum_j (C~_j - r_j).
    double residence = 0.0;
    for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
      const Time r = instance.job(static_cast<JobId>(j)).release;
      EXPECT_GE(result.definitive_finish[j], r - 1e-9);
      residence += result.definitive_finish[j] - r;
    }
    EXPECT_GE(result.sum_lambda, eps / (1.0 + eps) * residence - 1e-6)
        << "eps=" << eps << " seed=" << seed;

    // (5) C~_j dominates the actual flow: C~_j - r_j >= F_j.
    for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
      const auto job_id = static_cast<JobId>(j);
      const Time r = instance.job(job_id).release;
      EXPECT_GE(result.definitive_finish[j] - r,
                result.schedule.flow_time(job_id, instance) - 1e-6);
    }
  }
}

std::string FlowTheoremName(
    const ::testing::TestParamInfo<std::tuple<double, int, bool>>& info) {
  const double eps = std::get<0>(info.param);
  const int machines = std::get<1>(info.param);
  const bool heavy = std::get<2>(info.param);
  return "eps" + std::to_string(static_cast<int>(eps * 100)) + "_m" +
         std::to_string(machines) + (heavy ? "_pareto" : "_uniform");
}

INSTANTIATE_TEST_SUITE_P(
    EpsMachinesTail, FlowTheoremTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.8),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(false, true)),
    FlowTheoremName);

TEST(RejectionFlow, AblationNeitherRuleNeverRejects) {
  RandomWorkloadParams params{200, 2, 1.5, true, 42};
  const Instance instance = make_random_instance(params);
  RejectionFlowOptions options;
  options.epsilon = 0.2;
  options.enable_rule1 = false;
  options.enable_rule2 = false;
  const auto result = run_rejection_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.schedule.num_rejected(), 0u);
  EXPECT_EQ(result.schedule.num_completed(), instance.num_jobs());
}

TEST(RejectionFlow, RejectionsReduceFlowUnderBurst) {
  // A long job followed by a burst of short ones: with rejection the flow
  // should be far lower than without (the motivation for the paper).
  std::vector<std::pair<Time, Work>> jobs;
  jobs.push_back({0.0, 50.0});
  for (int k = 0; k < 40; ++k) {
    jobs.push_back({1.0 + 0.01 * k, 0.1});
  }
  const Instance instance = single_machine_instance(jobs);

  RejectionFlowOptions with;
  with.epsilon = 0.2;
  RejectionFlowOptions without = with;
  without.enable_rule1 = false;
  without.enable_rule2 = false;

  const auto rejected = run_rejection_flow(instance, with);
  const auto kept = run_rejection_flow(instance, without);
  check_schedule(rejected.schedule, instance);
  check_schedule(kept.schedule, instance);
  EXPECT_LT(rejected.schedule.total_flow(instance),
            0.5 * kept.schedule.total_flow(instance));
}

TEST(RejectionFlow, ObjectiveReportConsistent) {
  RandomWorkloadParams params{150, 4, 1.0, false, 7};
  const Instance instance = make_random_instance(params);
  const auto result = run_rejection_flow(instance, {.epsilon = 0.3});
  const ObjectiveReport report = evaluate(result.schedule, instance);
  EXPECT_EQ(report.num_jobs, instance.num_jobs());
  EXPECT_EQ(report.num_completed + report.num_rejected, instance.num_jobs());
  EXPECT_NEAR(report.total_flow,
              result.schedule.total_flow(instance), 1e-9);
  EXPECT_GE(report.total_flow, report.completed_flow);
}

}  // namespace
}  // namespace osched
