// Tests for schedule serialization (lossless CSV round trip) and diffing
// (the determinism witness used across the repository).
#include <gtest/gtest.h>

#include <sstream>

#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "sim/schedule_io.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

Schedule sample_schedule() {
  Schedule schedule(4);
  schedule.mark_dispatched(0, 1);
  schedule.mark_started(0, 0.5, 2.0);
  schedule.mark_completed(0, 3.25);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 1.0, 1.0);
  schedule.mark_rejected_running(1, 2.75);
  schedule.mark_dispatched(2, 0);
  schedule.mark_rejected_pending(2, 2.75);
  // Job 3: rejected at arrival without dispatch (no machine).
  schedule.mark_rejected_pending(3, 4.0);
  return schedule;
}

TEST(ScheduleIo, CsvRoundTripIsLossless) {
  const Schedule original = sample_schedule();
  std::stringstream buffer;
  write_schedule_csv(original, buffer);
  const Schedule parsed = read_schedule_csv(buffer);

  ASSERT_EQ(parsed.num_jobs(), original.num_jobs());
  EXPECT_TRUE(diff_schedules(original, parsed).empty());
  // Field-exact, not merely tolerance-equal.
  for (JobId j = 0; j < 4; ++j) {
    EXPECT_EQ(parsed.record(j).fate, original.record(j).fate);
    EXPECT_EQ(parsed.record(j).machine, original.record(j).machine);
    EXPECT_EQ(parsed.record(j).started, original.record(j).started);
    EXPECT_EQ(parsed.record(j).start, original.record(j).start);
    EXPECT_EQ(parsed.record(j).speed, original.record(j).speed);
    EXPECT_EQ(parsed.record(j).end, original.record(j).end);
    EXPECT_EQ(parsed.record(j).rejection_time, original.record(j).rejection_time);
  }
}

TEST(ScheduleIo, RoundTripPreservesFullDoublePrecision) {
  Schedule schedule(1);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 1.0 / 3.0, 1.0);
  schedule.mark_completed(0, 1.0 / 3.0 + 0.1);
  std::stringstream buffer;
  write_schedule_csv(schedule, buffer);
  const Schedule parsed = read_schedule_csv(buffer);
  EXPECT_EQ(parsed.record(0).start, 1.0 / 3.0);  // bit-exact via %.17g
}

TEST(ScheduleIo, DiffReportsFieldLevelChanges) {
  const Schedule a = sample_schedule();
  Schedule b = sample_schedule();
  b.record(0).end = 3.5;
  b.record(2).fate = JobFate::kCompleted;

  const auto differences = diff_schedules(a, b);
  ASSERT_EQ(differences.size(), 2u);
  EXPECT_NE(differences[0].find("job 0: end"), std::string::npos);
  EXPECT_NE(differences[1].find("job 2: fate"), std::string::npos);
}

TEST(ScheduleIo, DiffHonorsTimeTolerance) {
  const Schedule a = sample_schedule();
  Schedule b = sample_schedule();
  b.record(0).start += 1e-12;
  EXPECT_TRUE(diff_schedules(a, b).empty());
  ScheduleDiffOptions strict;
  strict.time_tolerance = 1e-15;
  EXPECT_FALSE(diff_schedules(a, b, strict).empty());
}

TEST(ScheduleIo, DiffCapsAtMaxDifferences) {
  const Schedule a = sample_schedule();
  Schedule b = sample_schedule();
  for (JobId j = 0; j < 4; ++j) b.record(j).machine += 1;
  ScheduleDiffOptions capped;
  capped.max_differences = 2;
  EXPECT_EQ(diff_schedules(a, b, capped).size(), 2u);
}

TEST(ScheduleIo, DiffDetectsSizeMismatch) {
  const auto differences = diff_schedules(Schedule(2), Schedule(3));
  ASSERT_EQ(differences.size(), 1u);
  EXPECT_NE(differences[0].find("job counts differ"), std::string::npos);
}

// The determinism contract, witnessed through the diff: the same seed
// yields record-identical schedules for every stochastic policy.
TEST(ScheduleIo, SchedulersAreDeterministicUnderDiff) {
  workload::WorkloadConfig config;
  config.num_jobs = 300;
  config.num_machines = 3;
  config.load = 1.4;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = 99;
  const Instance instance = workload::generate_workload(config);

  const auto t1_a = run_rejection_flow(instance, {.epsilon = 0.3});
  const auto t1_b = run_rejection_flow(instance, {.epsilon = 0.3});
  EXPECT_TRUE(diff_schedules(t1_a.schedule, t1_b.schedule,
                             {.time_tolerance = 0.0})
                  .empty());

  RejectionFlowOptions random_victim;
  random_victim.epsilon = 0.3;
  random_victim.rule2_victim = Rule2Victim::kRandom;
  const auto rv_a = run_rejection_flow(instance, random_victim);
  const auto rv_b = run_rejection_flow(instance, random_victim);
  EXPECT_TRUE(diff_schedules(rv_a.schedule, rv_b.schedule,
                             {.time_tolerance = 0.0})
                  .empty());

  const auto w_a = run_weighted_rejection_flow(instance, {.epsilon = 0.3});
  const auto w_b = run_weighted_rejection_flow(instance, {.epsilon = 0.3});
  EXPECT_TRUE(diff_schedules(w_a.schedule, w_b.schedule,
                             {.time_tolerance = 0.0})
                  .empty());
}

}  // namespace
}  // namespace osched
