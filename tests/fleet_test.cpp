// Fault-injection wall for dynamic fleet membership (sim/fleet.hpp).
//
// Three layers of guarantees:
//  * semantics — hand-built instances pin down exactly what join/drain/fail
//    do: a killed running job restarts elsewhere (or is shed under budget),
//    queued work survives a drain, a join cancels a drain, initially-down
//    machines are invisible until they join, and a speed change scales only
//    jobs STARTED at or after it (in-flight work keeps its start-time speed);
//  * degradation — a fleet plan can starve or kill machines, but no policy
//    may ever crash, deadlock, or leave a job undecided: every job completes
//    or is rejected, across every algorithm x storage backend x plan shape,
//    with the independent validator on;
//  * equivalence — the indexed dispatch path and the linear-scan reference
//    stay bit-identical under fleet masking, and a streamed session fed the
//    same plan makes bit-identical decisions to the batch engine (fleet
//    events share the completions' delivery discipline, so the streaming
//    differential contract extends to them).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/energy_flow/energy_flow.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "fuzz_seed.hpp"
#include "service/scheduler_session.hpp"
#include "sim/schedule_io.hpp"
#include "workload/generated_family.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() { return testing::fuzz_base_seed("fleet_test", 7); }

const api::Algorithm kFleetCapable[] = {
    api::Algorithm::kTheorem1,    api::Algorithm::kTheorem2,
    api::Algorithm::kWeightedExt, api::Algorithm::kGreedySpt,
    api::Algorithm::kFifo,        api::Algorithm::kImmediateReject,
};

/// Dense two-machine instance from explicit (release, p_m0, p_m1) rows.
Instance two_machine_instance(
    const std::vector<std::array<double, 3>>& rows) {
  std::vector<Job> jobs(rows.size());
  std::vector<std::vector<Work>> processing(2,
                                            std::vector<Work>(rows.size()));
  for (std::size_t k = 0; k < rows.size(); ++k) {
    jobs[k].id = static_cast<JobId>(k);
    jobs[k].release = rows[k][0];
    processing[0][k] = rows[k][1];
    processing[1][k] = rows[k][2];
  }
  return Instance(std::move(jobs), std::move(processing));
}

/// `f`-quantile of the instance's (sorted) release times — fleet plans built
/// from these land exactly on arrival instants, exercising the
/// events<=fleet<=arrivals tie order.
Time release_quantile(const Instance& instance, double f) {
  const auto last = static_cast<double>(instance.num_jobs() - 1);
  const auto idx = static_cast<JobId>(f * last);
  return instance.job(idx).release;
}

/// Kill/recover churn: fail machine 0 early, bring it back, fail machine 1
/// late, with a small shed budget.
FleetPlan churn_plan(const Instance& instance) {
  FleetPlan plan;
  plan.events = {
      {release_quantile(instance, 0.25), 0, FleetEventKind::kFail},
      {release_quantile(instance, 0.50), 0, FleetEventKind::kJoin},
      {release_quantile(instance, 0.75), 1, FleetEventKind::kFail},
  };
  plan.rejection_budget = 3;
  return plan;
}

/// Capacity churn without sheds: a machine that starts outside the fleet,
/// a drain later cancelled by a join, and a no-budget fail whose killed job
/// must be restarted (shed_killed_running off).
FleetPlan drain_plan(const Instance& instance) {
  FleetPlan plan;
  plan.initially_down = {2};
  plan.events = {
      {release_quantile(instance, 0.25), 3, FleetEventKind::kDrain},
      {release_quantile(instance, 0.40), 2, FleetEventKind::kJoin},
      {release_quantile(instance, 0.60), 4, FleetEventKind::kFail},
      {release_quantile(instance, 0.80), 3, FleetEventKind::kJoin},
  };
  plan.rejection_budget = 0;
  plan.shed_killed_running = false;
  return plan;
}

/// Mid-run speed degradation interleaved with membership churn: throttles
/// and recoveries, including a multiplier applied while its machine is down
/// (it must take effect when the machine rejoins), so scaled x down masking
/// and the scaled-dispatch fixups are both exercised.
FleetPlan speed_plan(const Instance& instance) {
  FleetPlan plan;
  plan.events = {
      {release_quantile(instance, 0.15), 1, FleetEventKind::kSpeedChange, 0.5},
      {release_quantile(instance, 0.30), 0, FleetEventKind::kFail},
      {release_quantile(instance, 0.45), 0, FleetEventKind::kSpeedChange, 0.25},
      {release_quantile(instance, 0.60), 0, FleetEventKind::kJoin},
      {release_quantile(instance, 0.75), 2, FleetEventKind::kSpeedChange, 2.0},
      {release_quantile(instance, 0.90), 1, FleetEventKind::kSpeedChange, 1.0},
  };
  plan.rejection_budget = 2;
  return plan;
}

TEST(FleetPlan, ValidateCatchesStructuralProblems) {
  const auto problems_of = [](const FleetPlan& plan, std::size_t m) {
    return plan.validate(m);
  };

  FleetPlan ok;
  ok.events = {{1.0, 0, FleetEventKind::kFail},
               {2.0, 0, FleetEventKind::kJoin}};
  EXPECT_EQ(problems_of(ok, 2), "");

  FleetPlan out_of_range;
  out_of_range.events = {{1.0, 5, FleetEventKind::kFail}};
  EXPECT_NE(problems_of(out_of_range, 2), "");

  FleetPlan unsorted;
  unsorted.events = {{2.0, 0, FleetEventKind::kFail},
                     {1.0, 1, FleetEventKind::kFail}};
  EXPECT_NE(problems_of(unsorted, 2), "");

  FleetPlan join_of_active;
  join_of_active.events = {{1.0, 0, FleetEventKind::kJoin}};
  EXPECT_NE(problems_of(join_of_active, 2), "");

  FleetPlan drain_of_down;
  drain_of_down.events = {{1.0, 0, FleetEventKind::kFail},
                          {2.0, 0, FleetEventKind::kDrain}};
  EXPECT_NE(problems_of(drain_of_down, 2), "");

  FleetPlan fail_of_down;
  fail_of_down.events = {{1.0, 0, FleetEventKind::kFail},
                         {2.0, 0, FleetEventKind::kFail}};
  EXPECT_NE(problems_of(fail_of_down, 2), "");

  FleetPlan dup_down;
  dup_down.initially_down = {1, 1};
  EXPECT_NE(problems_of(dup_down, 2), "");

  FleetPlan negative_time;
  negative_time.events = {{-1.0, 0, FleetEventKind::kFail}};
  EXPECT_NE(problems_of(negative_time, 2), "");
}

TEST(FleetPlan, ValidateCatchesBadSpeedEvents) {
  FleetPlan ok;  // same instant on DIFFERENT machines stays legal
  ok.events = {{1.0, 0, FleetEventKind::kSpeedChange, 0.5},
               {1.0, 1, FleetEventKind::kSpeedChange, 2.0},
               {2.0, 0, FleetEventKind::kSpeedChange, 1.0}};
  EXPECT_EQ(ok.validate(2), "");

  FleetPlan on_down;  // legal in any membership state
  on_down.initially_down = {0};
  on_down.events = {{1.0, 0, FleetEventKind::kSpeedChange, 0.5}};
  EXPECT_EQ(on_down.validate(2), "");

  for (const double bad : {0.0, -0.5, std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    FleetPlan plan;
    plan.events = {{1.0, 0, FleetEventKind::kSpeedChange, bad}};
    EXPECT_NE(plan.validate(2), "") << "multiplier " << bad;
  }

  FleetPlan speed_out_of_range;
  speed_out_of_range.events = {{1.0, 7, FleetEventKind::kSpeedChange, 0.5}};
  EXPECT_NE(speed_out_of_range.validate(2), "");

  // Two events on one machine at one instant have no defined order: rejected
  // outright, for speed pairs and across kinds alike.
  FleetPlan dup_speed;
  dup_speed.events = {{1.0, 0, FleetEventKind::kSpeedChange, 0.5},
                      {1.0, 0, FleetEventKind::kSpeedChange, 2.0}};
  EXPECT_NE(dup_speed.validate(2), "");

  FleetPlan dup_mixed;
  dup_mixed.events = {{1.0, 0, FleetEventKind::kFail},
                      {1.0, 0, FleetEventKind::kJoin}};
  EXPECT_NE(dup_mixed.validate(2), "");
}

TEST(FleetPlan, ValidateAcceptsRandomSpeedPlansAndCatchesMutations) {
  // Property check: any time-sorted, duplicate-free speed plan with finite
  // positive multipliers validates clean, and one injected corruption —
  // whichever kind — always turns the verdict non-empty.
  std::mt19937_64 rng(base_seed() + 909);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 2 + rng() % 5;
    FleetPlan plan;
    Time t = 0.0;
    const std::size_t n = 1 + rng() % 8;
    for (std::size_t k = 0; k < n; ++k) {
      t += 0.25 + static_cast<double>(rng() % 8) * 0.25;  // strictly increasing
      plan.events.push_back({t, static_cast<MachineId>(rng() % m),
                             FleetEventKind::kSpeedChange,
                             0.25 + static_cast<double>(rng() % 16) * 0.25});
    }
    ASSERT_EQ(plan.validate(m), "") << "trial " << trial;

    FleetPlan bad = plan;
    const std::size_t victim = rng() % bad.events.size();
    switch (rng() % 5) {
      case 0: bad.events[victim].speed = 0.0; break;
      case 1: bad.events[victim].speed = -1.0; break;
      case 2:
        bad.events[victim].speed = std::numeric_limits<double>::quiet_NaN();
        break;
      case 3: bad.events[victim].machine = static_cast<MachineId>(m); break;
      case 4: bad.events.push_back(bad.events.back()); break;  // duplicate
    }
    EXPECT_NE(bad.validate(m), "") << "trial " << trial;
  }
}

TEST(FleetSemantics, FailRestartsTheKilledRunningJobElsewhere) {
  // One job, running on the faster machine when it fails mid-execution.
  // Non-preemptive: the 5 time units of progress are lost; with no shed
  // budget the job must restart from scratch on the survivor.
  const Instance instance = two_machine_instance({{0.0, 10.0, 20.0}});
  ListSchedulerOptions options;  // greedy-spt: picks machine 0 (10 < 20)
  options.fleet.events = {{5.0, 0, FleetEventKind::kFail}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  const JobRecord& rec = schedule.record(0);
  EXPECT_TRUE(rec.completed());
  EXPECT_EQ(rec.machine, 1);
  EXPECT_EQ(rec.start, 5.0);   // restarted the instant the fail hit
  EXPECT_EQ(rec.end, 25.0);    // full p_1j = 20 from scratch
  EXPECT_EQ(stats.fails, 1u);
  EXPECT_EQ(stats.redispatched, 1u);
  EXPECT_EQ(stats.fault_rejections, 0u);
}

TEST(FleetSemantics, BudgetShedsTheKilledRunningJobInstead) {
  const Instance instance = two_machine_instance({{0.0, 10.0, 20.0}});
  ListSchedulerOptions options;
  options.fleet.events = {{5.0, 0, FleetEventKind::kFail}};
  options.fleet.rejection_budget = 1;  // shed_killed_running defaults on
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  const JobRecord& rec = schedule.record(0);
  EXPECT_EQ(rec.fate, JobFate::kRejectedRunning);
  EXPECT_EQ(rec.rejection_time, 5.0);
  EXPECT_EQ(stats.fault_rejections, 1u);
  EXPECT_EQ(stats.budget_spent, 1u);
  EXPECT_EQ(stats.redispatched, 0u);
}

TEST(FleetSemantics, TotalFleetLossForceRejectsButNeverDeadlocks) {
  // Machine 0 dies holding a running job; the only other machine is never
  // in the fleet. The killed job and the post-fail arrival both have no
  // active eligible machine: forced rejections, past the zero budget — the
  // run completes and validates rather than wedging.
  std::vector<Job> jobs(2);
  jobs[0].id = 0;
  jobs[0].release = 0.0;
  jobs[1].id = 1;
  jobs[1].release = 6.0;
  Instance instance(std::move(jobs), {{10.0, 5.0}});

  for (const api::Algorithm algorithm : kFleetCapable) {
    api::RunOptions options;
    options.fleet.events = {{5.0, 0, FleetEventKind::kFail}};
    const api::RunSummary summary = api::run(algorithm, instance, options);
    EXPECT_EQ(summary.report.num_rejected, 2u) << api::to_string(algorithm);
    EXPECT_EQ(summary.report.num_completed, 0u) << api::to_string(algorithm);
    EXPECT_EQ(summary.fleet.forced_rejections, 2u) << api::to_string(algorithm);
    EXPECT_EQ(summary.fleet.fault_rejections, 2u) << api::to_string(algorithm);
  }
}

TEST(FleetSemantics, DrainFinishesQueuedWorkAndJoinCancelsIt) {
  const Instance instance = two_machine_instance({
      {0.0, 4.0, 4.5},    // -> m0, runs [0, 4)
      {0.0, 4.0, 4.5},    // -> m1 (m0 busy), runs [0, 4.5)
      {1.0, 1.0, 1.0},    // -> m0's queue; must survive the drain
      {3.0, 1.0, 3.0},    // arrives while m0 drains -> m1
      {7.0, 1.0, 100.0},  // arrives after m0 rejoined -> m0
  });
  ListSchedulerOptions options;
  options.fleet.events = {{2.0, 0, FleetEventKind::kDrain},
                          {6.0, 0, FleetEventKind::kJoin}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  EXPECT_EQ(schedule.record(2).machine, 0);  // queued before the drain: stays
  EXPECT_TRUE(schedule.record(2).completed());
  EXPECT_EQ(schedule.record(3).machine, 1);  // drain masks m0 for new work
  EXPECT_EQ(schedule.record(4).machine, 0);  // join cancelled the drain
  EXPECT_EQ(stats.drains, 1u);
  EXPECT_EQ(stats.joins, 1u);
  EXPECT_EQ(stats.fails, 0u);
}

TEST(FleetSemantics, SpeedChangeScalesStartsNotInFlightWork) {
  // Job 0 is running on m0 when the t=5 throttle lands: non-preemptive work
  // keeps its start-time speed, so it still ends at 10. Job 1 is DISPATCHED
  // under the throttle (effective p = 4/0.5 = 8 beats m1's 100) and STARTS
  // at 10, after the throttle, so it runs 8 wall-clock units. Job 2 starts
  // after the t=12 recovery to 2x and runs 6/2 = 3 units.
  const Instance instance = two_machine_instance({
      {0.0, 10.0, 100.0},
      {6.0, 4.0, 100.0},
      {13.0, 6.0, 100.0},
  });
  ListSchedulerOptions options;
  options.fleet.events = {{5.0, 0, FleetEventKind::kSpeedChange, 0.5},
                          {12.0, 0, FleetEventKind::kSpeedChange, 2.0}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  EXPECT_EQ(schedule.record(0).machine, 0);
  EXPECT_EQ(schedule.record(0).end, 10.0);  // in-flight: throttle-proof
  EXPECT_EQ(schedule.record(1).machine, 0);
  EXPECT_EQ(schedule.record(1).start, 10.0);
  EXPECT_EQ(schedule.record(1).end, 18.0);  // 4 / 0.5
  EXPECT_EQ(schedule.record(2).machine, 0);
  EXPECT_EQ(schedule.record(2).start, 18.0);
  EXPECT_EQ(schedule.record(2).end, 21.0);  // 6 / 2.0
  EXPECT_EQ(stats.speed_changes, 2u);
  EXPECT_EQ(stats.throttles, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.min_speed_multiplier, 0.5);
}

TEST(FleetSemantics, ThrottleRedirectsDispatchOnMerit) {
  // Before the throttle m0 wins (4 < 5). Job 1 arrives after m0 dropped to
  // quarter speed: its effective p there is 16, so min-completion now sends
  // it to the idle m1 even with m0 finishing soon.
  const Instance instance = two_machine_instance({
      {0.0, 4.0, 5.0},
      {2.0, 4.0, 5.0},
  });
  ListSchedulerOptions options;
  options.fleet.events = {{1.0, 0, FleetEventKind::kSpeedChange, 0.25}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  EXPECT_EQ(schedule.record(0).machine, 0);
  EXPECT_EQ(schedule.record(0).end, 4.0);
  EXPECT_EQ(schedule.record(1).machine, 1);
  EXPECT_EQ(schedule.record(1).start, 2.0);
  EXPECT_EQ(schedule.record(1).end, 7.0);
  EXPECT_EQ(stats.throttles, 1u);
  EXPECT_EQ(stats.min_speed_multiplier, 0.25);
}

TEST(FleetSemantics, SpeedChangeOnDownMachineTakesEffectAtRejoin) {
  // m0 fails while idle, is throttled while DOWN, and rejoins: the stored
  // multiplier must survive the membership round-trip. Job 1 then avoids the
  // half-speed m0 (effective p 20 vs 11); job 2 takes it at half speed.
  const Instance instance = two_machine_instance({
      {0.0, 2.0, 50.0},
      {4.0, 10.0, 11.0},
      {4.0, 3.0, 50.0},
  });
  ListSchedulerOptions options;
  options.fleet.events = {{2.5, 0, FleetEventKind::kFail},
                          {3.0, 0, FleetEventKind::kSpeedChange, 0.5},
                          {3.5, 0, FleetEventKind::kJoin}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  EXPECT_EQ(schedule.record(0).machine, 0);
  EXPECT_EQ(schedule.record(0).end, 2.0);
  EXPECT_EQ(schedule.record(1).machine, 1);
  EXPECT_EQ(schedule.record(1).end, 15.0);
  EXPECT_EQ(schedule.record(2).machine, 0);
  EXPECT_EQ(schedule.record(2).start, 4.0);
  EXPECT_EQ(schedule.record(2).end, 10.0);  // 3 / 0.5
  EXPECT_EQ(stats.fails, 1u);
  EXPECT_EQ(stats.joins, 1u);
  EXPECT_EQ(stats.speed_changes, 1u);
  EXPECT_EQ(stats.throttles, 1u);
}

TEST(FleetSemantics, InitiallyDownMachineIsInvisibleUntilItJoins) {
  const Instance instance = two_machine_instance({
      {0.0, 5.0, 0.5},  // m1 would win, but it is not in the fleet yet
      {2.0, 5.0, 0.5},  // after the join m1 wins on merit
  });
  ListSchedulerOptions options;
  options.fleet.initially_down = {1};
  options.fleet.events = {{1.0, 1, FleetEventKind::kJoin}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  EXPECT_EQ(schedule.record(0).machine, 0);
  EXPECT_EQ(schedule.record(1).machine, 1);
  EXPECT_EQ(stats.joins, 1u);
}

TEST(FleetWall, NoPolicyCrashesOrLeaksJobsOnAnyBackend) {
  // The degradation wall: every algorithm x every storage backend x both
  // plan shapes, with the independent validator on. Machines die holding
  // running and queued jobs; every job must still end terminal.
  const StorageBackend backends[] = {StorageBackend::kDense,
                                     StorageBackend::kSparseCsr,
                                     StorageBackend::kGenerator};
  for (std::uint64_t s = 0; s < 2; ++s) {
    workload::ClosedFormConfig config;
    config.num_jobs = 250;
    config.num_machines = 6;
    config.seed = base_seed() + 31 * s;
    config.load = 1.3;
    for (const StorageBackend backend : backends) {
      const Instance instance =
          workload::make_closed_form_instance(config, backend);
      const FleetPlan plans[] = {churn_plan(instance), drain_plan(instance),
                                 speed_plan(instance)};
      for (std::size_t p = 0; p < 3; ++p) {
        for (const api::Algorithm algorithm : kFleetCapable) {
          api::RunOptions options;
          options.fleet = plans[p];
          const api::RunSummary summary =
              api::run(algorithm, instance, options);
          const std::string context = std::string(api::to_string(algorithm)) +
                                      " backend=" + to_string(backend) +
                                      " plan=" + std::to_string(p) +
                                      " seed+=" + std::to_string(31 * s);
          EXPECT_EQ(summary.report.num_completed + summary.report.num_rejected,
                    config.num_jobs)
              << context << ": a job was left undecided";
          const FleetStats& fleet = summary.fleet;
          const std::size_t expected_fails[] = {2u, 1u, 1u};
          EXPECT_EQ(fleet.fails, expected_fails[p]) << context;
          EXPECT_LE(fleet.budget_spent, plans[p].rejection_budget) << context;
          EXPECT_LE(fleet.forced_rejections, fleet.fault_rejections) << context;
          if (p == 2) {
            EXPECT_EQ(fleet.speed_changes, 4u) << context;
            EXPECT_EQ(fleet.throttles, 2u) << context;
            EXPECT_EQ(fleet.recoveries, 2u) << context;
            EXPECT_EQ(fleet.min_speed_multiplier, 0.25) << context;
          }
        }
      }
    }
  }
}

TEST(FleetWall, IndexedDispatchMatchesLinearScanUnderFleetMasking) {
  // The PR-4 dispatch index masks inactive machines out of its float-shadow
  // sweep; the linear-scan reference simply skips them. Both must remain
  // bit-identical with machines failing, draining, joining, and changing
  // speed mid-run (speed rewrites the masked shadow rows in place).
  workload::ClosedFormConfig config;
  config.num_jobs = 300;
  config.num_machines = 6;
  config.seed = base_seed() + 101;
  config.load = 1.2;
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const FleetPlan plans[] = {churn_plan(instance), drain_plan(instance),
                             speed_plan(instance)};

  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;
  for (const FleetPlan& plan : plans) {
    {
      RejectionFlowOptions a{.fleet = plan};
      RejectionFlowOptions b{.dispatch = DispatchMode::kLinearScan,
                             .fleet = plan};
      const auto indexed = run_rejection_flow(instance, a);
      const auto linear = run_rejection_flow(instance, b);
      const auto diffs =
          diff_schedules(indexed.schedule, linear.schedule, strict);
      EXPECT_TRUE(diffs.empty()) << "theorem1: " << diffs.size() << " diffs";
      EXPECT_EQ(indexed.fleet.redispatched, linear.fleet.redispatched);
    }
    {
      EnergyFlowOptions a;
      a.fleet = plan;
      EnergyFlowOptions b = a;
      b.dispatch = DispatchMode::kLinearScan;
      const auto indexed = run_energy_flow(instance, a);
      const auto linear = run_energy_flow(instance, b);
      const auto diffs =
          diff_schedules(indexed.schedule, linear.schedule, strict);
      EXPECT_TRUE(diffs.empty()) << "theorem2: " << diffs.size() << " diffs";
      EXPECT_EQ(indexed.fleet.redispatched, linear.fleet.redispatched);
    }
    {
      WeightedFlowOptions a{.fleet = plan};
      WeightedFlowOptions b{.dispatch = DispatchMode::kLinearScan,
                            .fleet = plan};
      const auto indexed = run_weighted_rejection_flow(instance, a);
      const auto linear = run_weighted_rejection_flow(instance, b);
      const auto diffs =
          diff_schedules(indexed.schedule, linear.schedule, strict);
      EXPECT_TRUE(diffs.empty()) << "weighted: " << diffs.size() << " diffs";
      EXPECT_EQ(indexed.fleet.redispatched, linear.fleet.redispatched);
    }
  }
}

TEST(FleetWall, StreamedFleetRunIsBitIdenticalToBatch) {
  // The streaming differential contract extended to fleet plans: fleet
  // events are delivered with the completions' discipline, so any chunking
  // (including chunk=1, with advance() calls landing between fleet events)
  // reproduces the batch run exactly — schedule, report, and counters.
  workload::ClosedFormConfig config;
  config.num_jobs = 250;
  config.num_machines = 6;
  config.seed = base_seed() + 202;
  config.load = 1.25;
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kDense);

  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;
  const FleetPlan plans[] = {churn_plan(instance), drain_plan(instance),
                             speed_plan(instance)};
  for (const FleetPlan& plan : plans) {
    api::RunOptions options;
    options.fleet = plan;
    for (const api::Algorithm algorithm : kFleetCapable) {
      const api::RunSummary batch = api::run(algorithm, instance, options);
      for (const std::size_t chunk : {std::size_t{1}, std::size_t{64}}) {
        const api::RunSummary streamed =
            service::streamed_run(algorithm, instance, options, chunk);
        const std::string context = std::string(api::to_string(algorithm)) +
                                    " chunk=" + std::to_string(chunk);
        const auto diffs =
            diff_schedules(batch.schedule, streamed.schedule, strict);
        EXPECT_TRUE(diffs.empty())
            << context << ": " << diffs.size() << " schedule diffs";
        EXPECT_EQ(batch.report.total_flow, streamed.report.total_flow)
            << context;
        EXPECT_EQ(batch.report.num_rejected, streamed.report.num_rejected)
            << context;
        EXPECT_EQ(batch.fleet.redispatched, streamed.fleet.redispatched)
            << context;
        EXPECT_EQ(batch.fleet.fault_rejections, streamed.fleet.fault_rejections)
            << context;
        EXPECT_EQ(batch.fleet.forced_rejections, streamed.fleet.forced_rejections)
            << context;
        EXPECT_EQ(batch.fleet.budget_spent, streamed.fleet.budget_spent)
            << context;
        EXPECT_EQ(batch.fleet.speed_changes, streamed.fleet.speed_changes)
            << context;
        EXPECT_EQ(batch.fleet.throttles, streamed.fleet.throttles) << context;
        EXPECT_EQ(batch.fleet.recoveries, streamed.fleet.recoveries) << context;
        EXPECT_EQ(batch.fleet.min_speed_multiplier,
                  streamed.fleet.min_speed_multiplier)
            << context;
      }
    }
  }
}

}  // namespace
}  // namespace osched
