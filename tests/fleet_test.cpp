// Fault-injection wall for dynamic fleet membership (sim/fleet.hpp).
//
// Three layers of guarantees:
//  * semantics — hand-built instances pin down exactly what join/drain/fail
//    do: a killed running job restarts elsewhere (or is shed under budget),
//    queued work survives a drain, a join cancels a drain, initially-down
//    machines are invisible until they join;
//  * degradation — a fleet plan can starve or kill machines, but no policy
//    may ever crash, deadlock, or leave a job undecided: every job completes
//    or is rejected, across every algorithm x storage backend x plan shape,
//    with the independent validator on;
//  * equivalence — the indexed dispatch path and the linear-scan reference
//    stay bit-identical under fleet masking, and a streamed session fed the
//    same plan makes bit-identical decisions to the batch engine (fleet
//    events share the completions' delivery discipline, so the streaming
//    differential contract extends to them).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/energy_flow/energy_flow.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "fuzz_seed.hpp"
#include "service/scheduler_session.hpp"
#include "sim/schedule_io.hpp"
#include "workload/generated_family.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() { return testing::fuzz_base_seed("fleet_test", 7); }

const api::Algorithm kFleetCapable[] = {
    api::Algorithm::kTheorem1,    api::Algorithm::kTheorem2,
    api::Algorithm::kWeightedExt, api::Algorithm::kGreedySpt,
    api::Algorithm::kFifo,        api::Algorithm::kImmediateReject,
};

/// Dense two-machine instance from explicit (release, p_m0, p_m1) rows.
Instance two_machine_instance(
    const std::vector<std::array<double, 3>>& rows) {
  std::vector<Job> jobs(rows.size());
  std::vector<std::vector<Work>> processing(2,
                                            std::vector<Work>(rows.size()));
  for (std::size_t k = 0; k < rows.size(); ++k) {
    jobs[k].id = static_cast<JobId>(k);
    jobs[k].release = rows[k][0];
    processing[0][k] = rows[k][1];
    processing[1][k] = rows[k][2];
  }
  return Instance(std::move(jobs), std::move(processing));
}

/// `f`-quantile of the instance's (sorted) release times — fleet plans built
/// from these land exactly on arrival instants, exercising the
/// events<=fleet<=arrivals tie order.
Time release_quantile(const Instance& instance, double f) {
  const auto last = static_cast<double>(instance.num_jobs() - 1);
  const auto idx = static_cast<JobId>(f * last);
  return instance.job(idx).release;
}

/// Kill/recover churn: fail machine 0 early, bring it back, fail machine 1
/// late, with a small shed budget.
FleetPlan churn_plan(const Instance& instance) {
  FleetPlan plan;
  plan.events = {
      {release_quantile(instance, 0.25), 0, FleetEventKind::kFail},
      {release_quantile(instance, 0.50), 0, FleetEventKind::kJoin},
      {release_quantile(instance, 0.75), 1, FleetEventKind::kFail},
  };
  plan.rejection_budget = 3;
  return plan;
}

/// Capacity churn without sheds: a machine that starts outside the fleet,
/// a drain later cancelled by a join, and a no-budget fail whose killed job
/// must be restarted (shed_killed_running off).
FleetPlan drain_plan(const Instance& instance) {
  FleetPlan plan;
  plan.initially_down = {2};
  plan.events = {
      {release_quantile(instance, 0.25), 3, FleetEventKind::kDrain},
      {release_quantile(instance, 0.40), 2, FleetEventKind::kJoin},
      {release_quantile(instance, 0.60), 4, FleetEventKind::kFail},
      {release_quantile(instance, 0.80), 3, FleetEventKind::kJoin},
  };
  plan.rejection_budget = 0;
  plan.shed_killed_running = false;
  return plan;
}

TEST(FleetPlan, ValidateCatchesStructuralProblems) {
  const auto problems_of = [](const FleetPlan& plan, std::size_t m) {
    return plan.validate(m);
  };

  FleetPlan ok;
  ok.events = {{1.0, 0, FleetEventKind::kFail},
               {2.0, 0, FleetEventKind::kJoin}};
  EXPECT_EQ(problems_of(ok, 2), "");

  FleetPlan out_of_range;
  out_of_range.events = {{1.0, 5, FleetEventKind::kFail}};
  EXPECT_NE(problems_of(out_of_range, 2), "");

  FleetPlan unsorted;
  unsorted.events = {{2.0, 0, FleetEventKind::kFail},
                     {1.0, 1, FleetEventKind::kFail}};
  EXPECT_NE(problems_of(unsorted, 2), "");

  FleetPlan join_of_active;
  join_of_active.events = {{1.0, 0, FleetEventKind::kJoin}};
  EXPECT_NE(problems_of(join_of_active, 2), "");

  FleetPlan drain_of_down;
  drain_of_down.events = {{1.0, 0, FleetEventKind::kFail},
                          {2.0, 0, FleetEventKind::kDrain}};
  EXPECT_NE(problems_of(drain_of_down, 2), "");

  FleetPlan fail_of_down;
  fail_of_down.events = {{1.0, 0, FleetEventKind::kFail},
                         {2.0, 0, FleetEventKind::kFail}};
  EXPECT_NE(problems_of(fail_of_down, 2), "");

  FleetPlan dup_down;
  dup_down.initially_down = {1, 1};
  EXPECT_NE(problems_of(dup_down, 2), "");

  FleetPlan negative_time;
  negative_time.events = {{-1.0, 0, FleetEventKind::kFail}};
  EXPECT_NE(problems_of(negative_time, 2), "");
}

TEST(FleetSemantics, FailRestartsTheKilledRunningJobElsewhere) {
  // One job, running on the faster machine when it fails mid-execution.
  // Non-preemptive: the 5 time units of progress are lost; with no shed
  // budget the job must restart from scratch on the survivor.
  const Instance instance = two_machine_instance({{0.0, 10.0, 20.0}});
  ListSchedulerOptions options;  // greedy-spt: picks machine 0 (10 < 20)
  options.fleet.events = {{5.0, 0, FleetEventKind::kFail}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  const JobRecord& rec = schedule.record(0);
  EXPECT_TRUE(rec.completed());
  EXPECT_EQ(rec.machine, 1);
  EXPECT_EQ(rec.start, 5.0);   // restarted the instant the fail hit
  EXPECT_EQ(rec.end, 25.0);    // full p_1j = 20 from scratch
  EXPECT_EQ(stats.fails, 1u);
  EXPECT_EQ(stats.redispatched, 1u);
  EXPECT_EQ(stats.fault_rejections, 0u);
}

TEST(FleetSemantics, BudgetShedsTheKilledRunningJobInstead) {
  const Instance instance = two_machine_instance({{0.0, 10.0, 20.0}});
  ListSchedulerOptions options;
  options.fleet.events = {{5.0, 0, FleetEventKind::kFail}};
  options.fleet.rejection_budget = 1;  // shed_killed_running defaults on
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  const JobRecord& rec = schedule.record(0);
  EXPECT_EQ(rec.fate, JobFate::kRejectedRunning);
  EXPECT_EQ(rec.rejection_time, 5.0);
  EXPECT_EQ(stats.fault_rejections, 1u);
  EXPECT_EQ(stats.budget_spent, 1u);
  EXPECT_EQ(stats.redispatched, 0u);
}

TEST(FleetSemantics, TotalFleetLossForceRejectsButNeverDeadlocks) {
  // Machine 0 dies holding a running job; the only other machine is never
  // in the fleet. The killed job and the post-fail arrival both have no
  // active eligible machine: forced rejections, past the zero budget — the
  // run completes and validates rather than wedging.
  std::vector<Job> jobs(2);
  jobs[0].id = 0;
  jobs[0].release = 0.0;
  jobs[1].id = 1;
  jobs[1].release = 6.0;
  Instance instance(std::move(jobs), {{10.0, 5.0}});

  for (const api::Algorithm algorithm : kFleetCapable) {
    api::RunOptions options;
    options.fleet.events = {{5.0, 0, FleetEventKind::kFail}};
    const api::RunSummary summary = api::run(algorithm, instance, options);
    EXPECT_EQ(summary.report.num_rejected, 2u) << api::to_string(algorithm);
    EXPECT_EQ(summary.report.num_completed, 0u) << api::to_string(algorithm);
    EXPECT_EQ(summary.fleet.forced_rejections, 2u) << api::to_string(algorithm);
    EXPECT_EQ(summary.fleet.fault_rejections, 2u) << api::to_string(algorithm);
  }
}

TEST(FleetSemantics, DrainFinishesQueuedWorkAndJoinCancelsIt) {
  const Instance instance = two_machine_instance({
      {0.0, 4.0, 4.5},    // -> m0, runs [0, 4)
      {0.0, 4.0, 4.5},    // -> m1 (m0 busy), runs [0, 4.5)
      {1.0, 1.0, 1.0},    // -> m0's queue; must survive the drain
      {3.0, 1.0, 3.0},    // arrives while m0 drains -> m1
      {7.0, 1.0, 100.0},  // arrives after m0 rejoined -> m0
  });
  ListSchedulerOptions options;
  options.fleet.events = {{2.0, 0, FleetEventKind::kDrain},
                          {6.0, 0, FleetEventKind::kJoin}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  EXPECT_EQ(schedule.record(2).machine, 0);  // queued before the drain: stays
  EXPECT_TRUE(schedule.record(2).completed());
  EXPECT_EQ(schedule.record(3).machine, 1);  // drain masks m0 for new work
  EXPECT_EQ(schedule.record(4).machine, 0);  // join cancelled the drain
  EXPECT_EQ(stats.drains, 1u);
  EXPECT_EQ(stats.joins, 1u);
  EXPECT_EQ(stats.fails, 0u);
}

TEST(FleetSemantics, InitiallyDownMachineIsInvisibleUntilItJoins) {
  const Instance instance = two_machine_instance({
      {0.0, 5.0, 0.5},  // m1 would win, but it is not in the fleet yet
      {2.0, 5.0, 0.5},  // after the join m1 wins on merit
  });
  ListSchedulerOptions options;
  options.fleet.initially_down = {1};
  options.fleet.events = {{1.0, 1, FleetEventKind::kJoin}};
  FleetStats stats;
  const Schedule schedule = run_list_scheduler(instance, options, &stats);

  EXPECT_EQ(schedule.record(0).machine, 0);
  EXPECT_EQ(schedule.record(1).machine, 1);
  EXPECT_EQ(stats.joins, 1u);
}

TEST(FleetWall, NoPolicyCrashesOrLeaksJobsOnAnyBackend) {
  // The degradation wall: every algorithm x every storage backend x both
  // plan shapes, with the independent validator on. Machines die holding
  // running and queued jobs; every job must still end terminal.
  const StorageBackend backends[] = {StorageBackend::kDense,
                                     StorageBackend::kSparseCsr,
                                     StorageBackend::kGenerator};
  for (std::uint64_t s = 0; s < 2; ++s) {
    workload::ClosedFormConfig config;
    config.num_jobs = 250;
    config.num_machines = 6;
    config.seed = base_seed() + 31 * s;
    config.load = 1.3;
    for (const StorageBackend backend : backends) {
      const Instance instance =
          workload::make_closed_form_instance(config, backend);
      const FleetPlan plans[] = {churn_plan(instance), drain_plan(instance)};
      for (std::size_t p = 0; p < 2; ++p) {
        for (const api::Algorithm algorithm : kFleetCapable) {
          api::RunOptions options;
          options.fleet = plans[p];
          const api::RunSummary summary =
              api::run(algorithm, instance, options);
          const std::string context = std::string(api::to_string(algorithm)) +
                                      " backend=" + to_string(backend) +
                                      " plan=" + std::to_string(p) +
                                      " seed+=" + std::to_string(31 * s);
          EXPECT_EQ(summary.report.num_completed + summary.report.num_rejected,
                    config.num_jobs)
              << context << ": a job was left undecided";
          const FleetStats& fleet = summary.fleet;
          const std::size_t expected_fails = p == 0 ? 2u : 1u;
          EXPECT_EQ(fleet.fails, expected_fails) << context;
          EXPECT_LE(fleet.budget_spent, plans[p].rejection_budget) << context;
          EXPECT_LE(fleet.forced_rejections, fleet.fault_rejections) << context;
        }
      }
    }
  }
}

TEST(FleetWall, IndexedDispatchMatchesLinearScanUnderFleetMasking) {
  // The PR-4 dispatch index masks inactive machines out of its float-shadow
  // sweep; the linear-scan reference simply skips them. Both must remain
  // bit-identical with machines failing, draining, and joining mid-run.
  workload::ClosedFormConfig config;
  config.num_jobs = 300;
  config.num_machines = 6;
  config.seed = base_seed() + 101;
  config.load = 1.2;
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const FleetPlan plans[] = {churn_plan(instance), drain_plan(instance)};

  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;
  for (const FleetPlan& plan : plans) {
    {
      RejectionFlowOptions a{.fleet = plan};
      RejectionFlowOptions b{.dispatch = DispatchMode::kLinearScan,
                             .fleet = plan};
      const auto indexed = run_rejection_flow(instance, a);
      const auto linear = run_rejection_flow(instance, b);
      const auto diffs =
          diff_schedules(indexed.schedule, linear.schedule, strict);
      EXPECT_TRUE(diffs.empty()) << "theorem1: " << diffs.size() << " diffs";
      EXPECT_EQ(indexed.fleet.redispatched, linear.fleet.redispatched);
    }
    {
      EnergyFlowOptions a;
      a.fleet = plan;
      EnergyFlowOptions b = a;
      b.dispatch = DispatchMode::kLinearScan;
      const auto indexed = run_energy_flow(instance, a);
      const auto linear = run_energy_flow(instance, b);
      const auto diffs =
          diff_schedules(indexed.schedule, linear.schedule, strict);
      EXPECT_TRUE(diffs.empty()) << "theorem2: " << diffs.size() << " diffs";
      EXPECT_EQ(indexed.fleet.redispatched, linear.fleet.redispatched);
    }
    {
      WeightedFlowOptions a{.fleet = plan};
      WeightedFlowOptions b{.dispatch = DispatchMode::kLinearScan,
                            .fleet = plan};
      const auto indexed = run_weighted_rejection_flow(instance, a);
      const auto linear = run_weighted_rejection_flow(instance, b);
      const auto diffs =
          diff_schedules(indexed.schedule, linear.schedule, strict);
      EXPECT_TRUE(diffs.empty()) << "weighted: " << diffs.size() << " diffs";
      EXPECT_EQ(indexed.fleet.redispatched, linear.fleet.redispatched);
    }
  }
}

TEST(FleetWall, StreamedFleetRunIsBitIdenticalToBatch) {
  // The streaming differential contract extended to fleet plans: fleet
  // events are delivered with the completions' discipline, so any chunking
  // (including chunk=1, with advance() calls landing between fleet events)
  // reproduces the batch run exactly — schedule, report, and counters.
  workload::ClosedFormConfig config;
  config.num_jobs = 250;
  config.num_machines = 6;
  config.seed = base_seed() + 202;
  config.load = 1.25;
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kDense);

  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;
  const FleetPlan plans[] = {churn_plan(instance), drain_plan(instance)};
  for (const FleetPlan& plan : plans) {
    api::RunOptions options;
    options.fleet = plan;
    for (const api::Algorithm algorithm : kFleetCapable) {
      const api::RunSummary batch = api::run(algorithm, instance, options);
      for (const std::size_t chunk : {std::size_t{1}, std::size_t{64}}) {
        const api::RunSummary streamed =
            service::streamed_run(algorithm, instance, options, chunk);
        const std::string context = std::string(api::to_string(algorithm)) +
                                    " chunk=" + std::to_string(chunk);
        const auto diffs =
            diff_schedules(batch.schedule, streamed.schedule, strict);
        EXPECT_TRUE(diffs.empty())
            << context << ": " << diffs.size() << " schedule diffs";
        EXPECT_EQ(batch.report.total_flow, streamed.report.total_flow)
            << context;
        EXPECT_EQ(batch.report.num_rejected, streamed.report.num_rejected)
            << context;
        EXPECT_EQ(batch.fleet.redispatched, streamed.fleet.redispatched)
            << context;
        EXPECT_EQ(batch.fleet.fault_rejections, streamed.fleet.fault_rejections)
            << context;
        EXPECT_EQ(batch.fleet.forced_rejections, streamed.fleet.forced_rejections)
            << context;
        EXPECT_EQ(batch.fleet.budget_spent, streamed.fleet.budget_spent)
            << context;
      }
    }
  }
}

}  // namespace
}  // namespace osched
