// Tests for Theorem 3: speed profiles, strategy enumeration, the greedy
// configuration primal-dual scheduler, the brute-force optimum, and the
// alpha^alpha guarantee on randomized small instances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/energy_min/bruteforce.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "core/energy_min/strategy.hpp"
#include "instance/builders.hpp"
#include "sim/validator.hpp"
#include "util/rng.hpp"

namespace osched {
namespace {

// ---------------------------------------------------------------- profiles

TEST(SpeedProfile, SingleIntervalCost) {
  SpeedProfile profile;
  profile.add(1.0, 3.0, 2.0);
  PolynomialPower p2(2.0);
  EXPECT_NEAR(profile.total_cost(p2), 4.0 * 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(profile.speed_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(2.9), 2.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(3.0), 0.0);
}

TEST(SpeedProfile, OverlappingAddsSpeeds) {
  SpeedProfile profile;
  profile.add(0.0, 4.0, 1.0);
  profile.add(2.0, 6.0, 2.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(3.0), 3.0);
  EXPECT_DOUBLE_EQ(profile.speed_at(5.0), 2.0);
  PolynomialPower p2(2.0);
  // [0,2): 1; [2,4): 9; [4,6): 4 => 2 + 18 + 8 = 28.
  EXPECT_NEAR(profile.total_cost(p2), 28.0, 1e-12);
}

TEST(SpeedProfile, MarginalCostAgainstEmpty) {
  SpeedProfile profile;
  PolynomialPower p3(3.0);
  EXPECT_NEAR(profile.marginal_cost(0.0, 2.0, 2.0, p3), 8.0 * 2.0, 1e-12);
}

TEST(SpeedProfile, MarginalCostStraddlesSegments) {
  SpeedProfile profile;
  profile.add(1.0, 3.0, 1.0);
  PolynomialPower p2(2.0);
  // Add v=1 over [0,4): [0,1) (4-0... (0+1)^2-0 =1)*1 + [1,3) ((2^2-1)=3)*2 +
  // [3,4) (1)*1 = 1 + 6 + 1 = 8.
  EXPECT_NEAR(profile.marginal_cost(0.0, 4.0, 1.0, p2), 8.0, 1e-12);
}

TEST(SpeedProfile, MarginalMatchesCostDifference) {
  util::Rng rng(8);
  PolynomialPower p(2.5);
  for (int trial = 0; trial < 50; ++trial) {
    SpeedProfile profile;
    for (int k = 0; k < 5; ++k) {
      const Time a = rng.uniform(0.0, 10.0);
      profile.add(a, a + rng.uniform(0.1, 5.0), rng.uniform(0.1, 2.0));
    }
    const Time b = rng.uniform(0.0, 10.0);
    const Time e = b + rng.uniform(0.1, 5.0);
    const Speed v = rng.uniform(0.1, 2.0);
    const double before = profile.total_cost(p);
    const double marginal = profile.marginal_cost(b, e, v, p);
    profile.add(b, e, v);
    const double after = profile.total_cost(p);
    ASSERT_NEAR(marginal, after - before, 1e-9);
  }
}

// ---------------------------------------------------------------- strategies

Instance deadline_instance(
    const std::vector<std::tuple<Time, Time, Work>>& jobs_rdp,
    std::size_t machines = 1) {
  InstanceBuilder builder(machines);
  for (const auto& [r, d, p] : jobs_rdp) {
    builder.add_job(r, std::vector<Work>(machines, p), 1.0, d);
  }
  return builder.build();
}

TEST(Strategies, RespectWindow) {
  const Instance instance = deadline_instance({{0.0, 10.0, 4.0}});
  const auto strategies =
      enumerate_strategies(instance, 0, {1.0, 2.0}, /*start_grid=*/1.0);
  ASSERT_FALSE(strategies.empty());
  for (const Strategy& s : strategies) {
    const Time end = s.start + s.duration(4.0);
    EXPECT_GE(s.start, 0.0 - 1e-9);
    EXPECT_LE(end, 10.0 + 1e-9);
  }
  // Speed 1: starts 0..6 (7) ; speed 2: starts 0..8 (9). Latest starts are
  // on the grid already.
  EXPECT_EQ(strategies.size(), 7u + 9u);
}

TEST(Strategies, ExactFitSpeedAddedWhenGridInfeasible) {
  // Window 2, p = 4: needs speed >= 2; grid only has 1 -> exact fit 2.
  const Instance instance = deadline_instance({{0.0, 2.0, 4.0}});
  const auto strategies = enumerate_strategies(instance, 0, {1.0}, 1.0);
  ASSERT_FALSE(strategies.empty());
  for (const Strategy& s : strategies) {
    EXPECT_NEAR(s.speed, 2.0, 1e-12);
    EXPECT_NEAR(s.start, 0.0, 1e-12);
  }
}

TEST(Strategies, LatestStartIncludedWhenOffGrid) {
  // Window [0, 5.5], p=2, speed 1: latest start 3.5 off the unit grid.
  const Instance instance = deadline_instance({{0.0, 5.5, 2.0}});
  const auto strategies = enumerate_strategies(instance, 0, {1.0}, 1.0);
  bool has_latest = false;
  for (const Strategy& s : strategies) {
    if (std::abs(s.start - 3.5) < 1e-9) has_latest = true;
  }
  EXPECT_TRUE(has_latest);
}

TEST(Strategies, SkipIneligibleMachines) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {kTimeInfinity, 3.0}, 1.0, 6.0);
  const Instance instance = builder.build();
  const auto strategies = enumerate_strategies(instance, 0, {1.0}, 1.0);
  ASSERT_FALSE(strategies.empty());
  for (const Strategy& s : strategies) EXPECT_EQ(s.machine, 1);
}

TEST(SpeedGrid, CoversRequiredSpeeds) {
  const Instance instance =
      deadline_instance({{0.0, 10.0, 1.0}, {0.0, 2.0, 4.0}});
  const auto grid = make_speed_grid(instance, 6);
  ASSERT_EQ(grid.size(), 6u);
  // Slowest useful = 1/10; fastest required = 4/2 = 2; headroom 4 => 8.
  EXPECT_NEAR(grid.front(), 0.1, 1e-9);
  EXPECT_NEAR(grid.back(), 8.0, 1e-9);
  for (std::size_t k = 1; k < grid.size(); ++k) EXPECT_GT(grid[k], grid[k - 1]);
}

// ---------------------------------------------------------------- greedy PD

TEST(ConfigPD, SingleJobPicksSlowestFeasibleSpeed) {
  // Energy p^alpha/v^{alpha-1}... running slower is always cheaper for a
  // lone job, so the greedy picks the smallest feasible grid speed.
  const Instance instance = deadline_instance({{0.0, 8.0, 4.0}});
  ConfigPDOptions options;
  options.alpha = 2.0;
  options.speeds = {0.5, 1.0, 2.0};
  const auto result = run_config_primal_dual(instance, options);
  EXPECT_NEAR(result.chosen[0].speed, 0.5, 1e-12);
  // Energy = v^2 * (p/v) = v * p = 2.
  EXPECT_NEAR(result.algorithm_energy, 2.0, 1e-9);

  ValidationOptions vopts;
  vopts.allow_parallel_execution = true;
  vopts.require_deadlines = true;
  check_schedule(result.schedule, instance, vopts);
}

TEST(ConfigPD, AvoidsOverlapWhenCheaper) {
  // Two unit jobs with disjoint-feasible windows wide enough to separate:
  // stacking speeds would cost (2v)^2*t, separating costs 2*v^2*t.
  const Instance instance =
      deadline_instance({{0.0, 4.0, 1.0}, {0.0, 4.0, 1.0}});
  ConfigPDOptions options;
  options.alpha = 2.0;
  options.speeds = {0.5};
  options.start_grid = 1.0;
  const auto result = run_config_primal_dual(instance, options);
  // Each runs 2 time units at 0.5 in the 4-window: no overlap possible to
  // avoid? Windows allow [0,2) and [2,4): greedy should separate.
  const auto& a = result.schedule.record(0);
  const auto& b = result.schedule.record(1);
  const bool disjoint = a.end <= b.start + 1e-9 || b.end <= a.start + 1e-9;
  EXPECT_TRUE(disjoint) << "a=[" << a.start << "," << a.end << ") b=[" << b.start
                        << "," << b.end << ")";
  EXPECT_NEAR(result.algorithm_energy, 2 * 0.25 * 2.0, 1e-9);
}

TEST(ConfigPD, SpreadsAcrossMachines) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {2.0, 2.0}, 1.0, 2.0);
  builder.add_job(0.0, {2.0, 2.0}, 1.0, 2.0);
  const Instance instance = builder.build();
  ConfigPDOptions options;
  options.alpha = 3.0;
  options.speeds = {1.0};
  const auto result = run_config_primal_dual(instance, options);
  EXPECT_NE(result.schedule.record(0).machine, result.schedule.record(1).machine);
}

TEST(ConfigPD, EnergyMatchesScheduleIntegration) {
  // Internal profile cost must equal the independent schedule-based energy.
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::tuple<Time, Time, Work>> jobs;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 5));
    for (int k = 0; k < n; ++k) {
      const Time r = rng.uniform(0.0, 10.0);
      const Time window = rng.uniform(1.0, 10.0);
      jobs.push_back({r, r + window, rng.uniform(0.5, 4.0)});
    }
    const Instance instance = deadline_instance(jobs, 2);
    ConfigPDOptions options;
    options.alpha = 2.0;
    const auto result = run_config_primal_dual(instance, options);
    const PolynomialPower power(2.0);
    EXPECT_NEAR(result.algorithm_energy,
                compute_energy(result.schedule, instance, power),
                1e-6 * std::max(1.0, result.algorithm_energy));
  }
}

TEST(ConfigPD, DualObjectiveIsAlgOverAlphaPowerAlpha) {
  const Instance instance = deadline_instance({{0.0, 6.0, 3.0}, {1.0, 7.0, 2.0}});
  ConfigPDOptions options;
  options.alpha = 2.0;
  const auto result = run_config_primal_dual(instance, options);
  EXPECT_NEAR(result.dual_objective,
              result.algorithm_energy / theorem3_ratio_bound(2.0), 1e-9);
}

TEST(ConfigPD, ObserverSeesPreCommitState) {
  const Instance instance = deadline_instance({{0.0, 4.0, 2.0}, {0.0, 4.0, 2.0}});
  ConfigPDOptions options;
  options.alpha = 2.0;
  options.speeds = {1.0};
  int calls = 0;
  const auto observer = [&](const ArrivalObservation& obs) {
    ++calls;
    ASSERT_NE(obs.profiles, nullptr);
    ASSERT_NE(obs.strategies, nullptr);
    EXPECT_LT(obs.chosen, obs.strategies->size());
    if (obs.job == 0) {
      // Before the first commit every profile is empty.
      for (const auto& profile : *obs.profiles) EXPECT_TRUE(profile.empty());
      // Chosen marginal = isolated cost = v^alpha * duration = 1 * 2.
      EXPECT_NEAR(obs.chosen_marginal, 2.0, 1e-9);
    }
  };
  run_config_primal_dual(instance, options, observer);
  EXPECT_EQ(calls, 2);
}

TEST(ConfigPD, HeterogeneousAlphasPreferLowExponentMachine) {
  // Two identical machines except the power exponent: a job forced to run
  // fast is cheaper on the low-alpha machine (speed 2: 2^2=4 vs 2^3=8).
  InstanceBuilder builder(2);
  builder.add_job(0.0, {4.0, 4.0}, 1.0, /*deadline=*/2.0);  // needs speed 2
  const Instance instance = builder.build();
  ConfigPDOptions options;
  options.machine_alphas = {3.0, 2.0};
  options.speeds = {2.0};
  const auto result = run_config_primal_dual(instance, options);
  EXPECT_EQ(result.schedule.record(0).machine, 1);
  EXPECT_NEAR(result.algorithm_energy, 4.0 * 2.0, 1e-9);
}

TEST(ConfigPD, HeterogeneousDualUsesMaxAlpha) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {2.0, 2.0}, 1.0, 4.0);
  const Instance instance = builder.build();
  ConfigPDOptions options;
  options.machine_alphas = {2.0, 3.0};
  options.speeds = {1.0};
  const auto result = run_config_primal_dual(instance, options);
  // lambda/(1-mu) at alpha_max = 3 is 27.
  EXPECT_NEAR(result.dual_objective, result.algorithm_energy / 27.0, 1e-9);
}

TEST(ConfigPD, ResolveMachineAlphasBroadcasts) {
  ConfigPDOptions options;
  options.alpha = 2.5;
  const auto resolved = resolve_machine_alphas(options, 3);
  ASSERT_EQ(resolved.size(), 3u);
  for (double a : resolved) EXPECT_DOUBLE_EQ(a, 2.5);
}

TEST(BruteForce, HeterogeneousAlphasMatchGreedyOnSingleJob) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {4.0, 4.0}, 1.0, 2.0);
  const Instance instance = builder.build();
  BruteForceOptions options;
  options.machine_alphas = {3.0, 2.0};
  options.speeds = {2.0};
  const auto exact = brute_force_energy(instance, options);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(exact->optimal_energy, 8.0, 1e-9);
  EXPECT_EQ(exact->chosen[0].machine, 1);
}

// ---------------------------------------------------------------- bruteforce

TEST(BruteForce, MatchesExhaustiveTwoJobCase) {
  const Instance instance = deadline_instance({{0.0, 2.0, 1.0}, {0.0, 2.0, 1.0}});
  BruteForceOptions options;
  options.alpha = 2.0;
  options.speeds = {1.0};
  options.start_grid = 1.0;
  const auto result = brute_force_energy(instance, options);
  ASSERT_TRUE(result.has_value());
  // Separate at speed 1: 1^2*1 + 1^2*1 = 2 (stacking would cost 4).
  EXPECT_NEAR(result->optimal_energy, 2.0, 1e-9);
  ValidationOptions vopts;
  vopts.allow_parallel_execution = true;
  vopts.require_deadlines = true;
  check_schedule(result->schedule, instance, vopts);
}

TEST(BruteForce, NeverWorseThanGreedy) {
  util::Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::tuple<Time, Time, Work>> jobs;
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int k = 0; k < n; ++k) {
      const Time r = std::floor(rng.uniform(0.0, 4.0));
      const Time window = std::floor(rng.uniform(2.0, 6.0));
      jobs.push_back({r, r + window, std::floor(rng.uniform(1.0, 4.0))});
    }
    const Instance instance = deadline_instance(jobs, 1);
    ConfigPDOptions greedy_options;
    greedy_options.alpha = 2.0;
    greedy_options.speed_levels = 4;
    const auto greedy = run_config_primal_dual(instance, greedy_options);
    BruteForceOptions bf_options;
    bf_options.alpha = 2.0;
    bf_options.speed_levels = 4;
    const auto exact = brute_force_energy(instance, bf_options);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(exact->optimal_energy, greedy.algorithm_energy + 1e-9);
  }
}

// Theorem 3 end-to-end: greedy within alpha^alpha of the exact optimum over
// the same strategy space, across alpha values.
class Theorem3Test : public ::testing::TestWithParam<double> {};

TEST_P(Theorem3Test, GreedyWithinAlphaPowerAlphaOfOpt) {
  const double alpha = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(alpha * 1000));
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::tuple<Time, Time, Work>> jobs;
    const int n = 3 + static_cast<int>(rng.uniform_int(0, 1));
    for (int k = 0; k < n; ++k) {
      const Time r = std::floor(rng.uniform(0.0, 6.0));
      const Time window = std::floor(rng.uniform(2.0, 8.0));
      jobs.push_back({r, r + window, std::floor(rng.uniform(1.0, 5.0))});
    }
    const Instance instance = deadline_instance(jobs, 2);

    ConfigPDOptions greedy_options;
    greedy_options.alpha = alpha;
    greedy_options.speed_levels = 4;
    const auto greedy = run_config_primal_dual(instance, greedy_options);

    BruteForceOptions bf_options;
    bf_options.alpha = alpha;
    bf_options.speed_levels = 4;
    const auto exact = brute_force_energy(instance, bf_options);
    ASSERT_TRUE(exact.has_value());

    ASSERT_GT(exact->optimal_energy, 0.0);
    const double ratio = greedy.algorithm_energy / exact->optimal_energy;
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(ratio, theorem3_ratio_bound(alpha) + 1e-9)
        << "alpha=" << alpha << " trial=" << trial;

    // The dual lower bound must not exceed the true optimum.
    EXPECT_LE(greedy.opt_lower_bound, exact->optimal_energy + 1e-9);
  }
}

std::string Theorem3Name(const ::testing::TestParamInfo<double>& info) {
  return "alpha" + std::to_string(static_cast<int>(info.param * 10));
}

INSTANTIATE_TEST_SUITE_P(Alphas, Theorem3Test,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0), Theorem3Name);

}  // namespace
}  // namespace osched
