// Tests for the ASCII Gantt / speed-profile renderer. Rendering is string
// building over the Schedule record, so the tests pin glyph placement,
// idle/interruption markers, machine clipping, and profile stacking.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "instance/builders.hpp"
#include "viz/gantt.hpp"

namespace osched::viz {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    lines.push_back(text.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return lines;
}

TEST(Gantt, DrawsExecutionsAtScaledPositions) {
  // Machine 0 runs job 0 over [0, 5), machine 1 runs job 1 over [5, 10).
  InstanceBuilder builder(2);
  builder.add_job(0.0, {5.0, 5.0});
  builder.add_job(0.0, {5.0, 5.0});
  const Instance instance = builder.build();

  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 5.0);
  schedule.mark_dispatched(1, 1);
  schedule.mark_started(1, 5.0, 1.0);
  schedule.mark_completed(1, 10.0);

  GanttOptions options;
  options.width = 20;  // 2 columns per time unit
  const auto lines = lines_of(render_gantt(schedule, instance, options));
  ASSERT_GE(lines.size(), 3u);
  const std::string& m0 = lines[1];
  const std::string& m1 = lines[2];
  ASSERT_NE(m0.find('|'), std::string::npos);

  // Job 0 occupies the first half of machine 0's row, idle afterwards.
  const std::string m0_cells = m0.substr(m0.find('|') + 1, 20);
  EXPECT_EQ(m0_cells.substr(0, 10), std::string(10, '0'));
  EXPECT_EQ(m0_cells.substr(10, 10), std::string(10, '.'));
  // Job 1 occupies the second half of machine 1's row.
  const std::string m1_cells = m1.substr(m1.find('|') + 1, 20);
  EXPECT_EQ(m1_cells.substr(0, 10), std::string(10, '.'));
  EXPECT_EQ(m1_cells.substr(10, 10), std::string(10, '1'));
}

TEST(Gantt, MarksInterruptionsAndQueueRejections) {
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, 10.0);  // interrupted at 5
  builder.add_identical_job(1.0, 2.0);   // queue-rejected at 5
  const Instance instance = builder.build();

  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_rejected_running(0, 5.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_rejected_pending(1, 5.0);

  const std::string text = render_gantt(schedule, instance, {.width = 20});
  EXPECT_NE(text.find('x'), std::string::npos);
  EXPECT_NE(text.find("queue rejections:"), std::string::npos);
  EXPECT_NE(text.find("1@t=5"), std::string::npos);
}

TEST(Gantt, HonorsMachineClipAndHorizon) {
  InstanceBuilder builder(3);
  builder.add_job(0.0, {2.0, 2.0, 2.0});
  const Instance instance = builder.build();
  Schedule schedule(1);
  schedule.mark_dispatched(0, 2);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 2.0);

  GanttOptions options;
  options.width = 16;
  options.max_machines = 2;  // machine 2 hidden
  const auto lines = lines_of(render_gantt(schedule, instance, options));
  std::size_t machine_rows = 0;
  for (const auto& line : lines) {
    if (line.rfind("m", 0) == 0) ++machine_rows;
  }
  EXPECT_EQ(machine_rows, 2u);
}

TEST(SpeedProfile, StacksConcurrentExecutions) {
  // Two jobs at speed 1 overlapping on [2, 4) within horizon [0, 8).
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, 4.0);
  builder.add_identical_job(0.0, 2.0);
  const Instance instance = builder.build();

  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 4.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_started(1, 2.0, 1.0);
  schedule.mark_completed(1, 4.0);

  const PolynomialPower power(2.0);
  ProfileOptions options;
  options.width = 32;
  options.height = 4;
  options.horizon = 8.0;
  const std::string text =
      render_speed_profile(schedule, instance, 0, power, options);
  EXPECT_NE(text.find("peak 2"), std::string::npos);
  // Energy ~ 1^2*2 + 2^2*2 = 10 over [0,8) (sampled estimate).
  EXPECT_NE(text.find("energy ~10"), std::string::npos);

  // The top band of the chart is only filled where both jobs overlap
  // (columns 8..15 of 32 at horizon 8 => t in [2,4)).
  const auto lines = lines_of(text);
  ASSERT_GE(lines.size(), 2u);
  const std::string top = lines[1].substr(3);  // strip "s^ " prefix
  EXPECT_EQ(top.find('#'), 8u);
  EXPECT_EQ(top.rfind('#'), 15u);
}

}  // namespace
}  // namespace osched::viz
