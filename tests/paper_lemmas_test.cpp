// Direct property tests for the paper's structural lemmas that are not
// covered by the dual-feasibility checkers:
//   * Corollary 1 (of Lemma 3): |U_i(t)| <= (1/eps)(|R_i(t)| + 1) for the
//     Theorem 1 scheduler, reconstructed from schedule records.
//   * Lemma 5: V_i(t) is monotone under adding a job to a machine's input
//     (single-machine setting so the assignment is fixed).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/energy_flow/energy_flow.hpp"
#include "core/flow/rejection_flow.hpp"
#include "duality/fractional_weight.hpp"
#include "instance/builders.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

// ---------------------------------------------------------- Corollary 1

// Reconstructs |U_i(t)| (pending-or-running jobs on machine i at time t) and
// |R_i(t)| (Rule-2-rejected jobs not yet definitively finished) from the
// run's records and verifies Corollary 1 at every structural breakpoint.
void expect_corollary1(const Instance& instance,
                       const RejectionFlowResult& result, double eps) {
  for (std::size_t i = 0; i < instance.num_machines(); ++i) {
    const auto machine = static_cast<MachineId>(i);
    std::vector<Time> breakpoints;
    for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
      const auto j = static_cast<JobId>(idx);
      const JobRecord& rec = result.schedule.record(j);
      if (rec.machine != machine) continue;
      breakpoints.push_back(instance.job(j).release);
      breakpoints.push_back(rec.rejected() ? rec.rejection_time : rec.end);
      breakpoints.push_back(result.definitive_finish[idx]);
    }
    std::sort(breakpoints.begin(), breakpoints.end());
    breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                      breakpoints.end());

    for (Time t : breakpoints) {
      std::size_t u_count = 0;
      std::size_t r_count = 0;
      for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
        const auto j = static_cast<JobId>(idx);
        const JobRecord& rec = result.schedule.record(j);
        if (rec.machine != machine) continue;
        const Time release = instance.job(j).release;
        const Time completion = rec.rejected() ? rec.rejection_time : rec.end;
        if (release <= t && t < completion) ++u_count;
        // R_i(t): Rule-2 rejections (the only source of rejected-pending
        // fates in Theorem 1) that have left U but not V.
        if (rec.fate == JobFate::kRejectedPending && completion <= t &&
            t < result.definitive_finish[idx]) {
          ++r_count;
        }
      }
      EXPECT_LE(static_cast<double>(u_count),
                (1.0 / eps) * (static_cast<double>(r_count) + 1.0) + 1e-9)
          << "machine " << machine << " t=" << t << " |U|=" << u_count
          << " |R|=" << r_count << " eps=" << eps;
    }
  }
}

class Corollary1Test : public ::testing::TestWithParam<double> {};

TEST_P(Corollary1Test, HoldsOnRandomOverloadedInstances) {
  const double eps = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    workload::WorkloadConfig config;
    config.num_jobs = 300;
    config.num_machines = 2;
    config.load = 1.6;  // overloaded: queues grow, Rule 2 fires
    config.sizes.dist = workload::SizeDistribution::kPareto;
    config.seed = util::derive_seed(1313, seed);
    const Instance instance = workload::generate_workload(config);
    const auto result = run_rejection_flow(instance, {.epsilon = eps});
    expect_corollary1(instance, result, eps);
  }
}

// Both integral 1/eps (0.2, 0.5) and fractional 1/eps (0.15, 0.4, 0.7,
// 0.85): the fractional cases pin the floor-based Rule 2 threshold (a ceil
// threshold violates the corollary at eps = 0.4 with |U| = 3 > 2.5).
INSTANTIATE_TEST_SUITE_P(Eps, Corollary1Test,
                         ::testing::Values(0.15, 0.2, 0.4, 0.5, 0.7, 0.85),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "eps" + std::to_string(int(i.param * 100));
                         });

TEST(Corollary1, BurstTrapStressesRule2) {
  workload::BurstTrapConfig trap;
  trap.num_rounds = 4;
  trap.burst_jobs = 80;
  trap.seed = 5;
  const Instance instance = workload::generate_burst_trap(trap);
  const auto result = run_rejection_flow(instance, {.epsilon = 0.25});
  expect_corollary1(instance, result, 0.25);
}

// ------------------------------------------------------------- Lemma 5

// Single machine so the dispatch decision is forced: adding a job to the
// input must never decrease the fractional weight V(t) at any time.
class Lemma5Test : public ::testing::TestWithParam<double> {};

TEST_P(Lemma5Test, AddingAJobNeverDecreasesV) {
  const double alpha = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(alpha * 100) + 3);
  for (int trial = 0; trial < 6; ++trial) {
    // Base instance.
    std::vector<std::tuple<Time, Work, Weight>> jobs;
    const int n = 10 + static_cast<int>(rng.uniform_int(0, 10));
    Time t = 0.0;
    for (int k = 0; k < n; ++k) {
      t += rng.exponential(1.0);
      jobs.push_back({t, rng.uniform(0.5, 3.0), rng.uniform(0.5, 2.0)});
    }
    const Instance smaller = single_machine_weighted_instance(jobs);

    // Augmented instance: one extra job somewhere in the middle.
    auto jobs_plus = jobs;
    jobs_plus.push_back(
        {rng.uniform(0.0, t), rng.uniform(0.5, 3.0), rng.uniform(0.5, 2.0)});
    const Instance larger = single_machine_weighted_instance(jobs_plus);

    EnergyFlowOptions options;
    options.epsilon = 0.9;  // keep rejections out of the comparison
    options.alpha = alpha;
    options.gamma = 1.0;
    const auto small_run = run_energy_flow(smaller, options);
    const auto large_run = run_energy_flow(larger, options);
    if (small_run.rejections != 0 || large_run.rejections != 0) continue;

    const FractionalWeightProfile v_small(smaller, small_run);
    const FractionalWeightProfile v_large(larger, large_run);

    // Compare at the union of both runs' breakpoints (and midpoints).
    std::vector<Time> times = v_small.breakpoints();
    const auto more = v_large.breakpoints();
    times.insert(times.end(), more.begin(), more.end());
    std::sort(times.begin(), times.end());
    for (std::size_t k = 0; k + 1 < times.size(); ++k) {
      times.push_back(0.5 * (times[k] + times[k + 1]));
    }
    for (Time sample : times) {
      EXPECT_GE(v_large.total_weight_at(sample),
                v_small.total_weight_at(sample) - 1e-6)
          << "alpha=" << alpha << " trial=" << trial << " t=" << sample;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, Lemma5Test, ::testing::Values(2.0, 3.0),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "alpha" + std::to_string(int(i.param * 10));
                         });

TEST(FractionalWeight, SingleJobShape) {
  // One job (r=0, p=4, w=2), gamma=1, alpha=2: speed = sqrt(2) once started.
  const Instance instance = single_machine_weighted_instance({{0.0, 4.0, 2.0}});
  EnergyFlowOptions options;
  options.epsilon = 0.5;
  options.alpha = 2.0;
  options.gamma = 1.0;
  const auto result = run_energy_flow(instance, options);
  const FractionalWeightProfile profile(instance, result);
  // At start: full weight.
  EXPECT_NEAR(profile.total_weight_at(0.0), 2.0, 1e-9);
  // Midway through execution (duration 4/sqrt(2)): half the volume remains.
  const double duration = 4.0 / std::sqrt(2.0);
  EXPECT_NEAR(profile.total_weight_at(duration / 2.0), 1.0, 1e-9);
  // After completion: zero.
  EXPECT_NEAR(profile.total_weight_at(duration + 0.1), 0.0, 1e-12);
}

TEST(FractionalWeight, FrozenResidueAfterRejection) {
  // Running job rejected mid-flight keeps its residue until C~.
  const Instance instance = single_machine_weighted_instance(
      {{0.0, 10.0, 1.0}, {1.0, 1.0, 5.0}});
  EnergyFlowOptions options;
  options.epsilon = 0.5;  // w_k/eps = 2 < 5: rejection on arrival of job 1
  options.alpha = 2.0;
  options.gamma = 1.0;
  const auto result = run_energy_flow(instance, options);
  ASSERT_EQ(result.rejections, 1u);
  const FractionalWeightProfile profile(instance, result);
  const JobRecord& rejected = result.schedule.record(0);
  ASSERT_EQ(rejected.fate, JobFate::kRejectedRunning);
  // Just after the rejection, job 0 still carries w * q_end / p > 0.
  const double just_after = rejected.rejection_time + 1e-6;
  EXPECT_GT(profile.job_weight_at(0, just_after), 0.5);
  // And it vanishes exactly at the definitive finish.
  EXPECT_NEAR(profile.job_weight_at(0, result.definitive_finish[0] + 1e-9), 0.0,
              1e-12);
}

}  // namespace
}  // namespace osched
