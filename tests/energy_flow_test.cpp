// Tests for the Theorem 2 scheduler (weighted flow + energy, speed
// scaling): speed policy, density order, weight-counter rejection, weight
// budget, dual bookkeeping and ratio bounds on randomized instances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/energy_flow/energy_flow.hpp"
#include "instance/builders.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/rng.hpp"

namespace osched {
namespace {

TEST(Theorem2Gamma, PaperFormulaForLargeAlpha) {
  // alpha = 3: gamma = (eps/(1+eps))^{1/2} * (1/2) * (2 + ln 2)^{2/3}.
  const double eps = 0.5;
  const double expected = std::sqrt(eps / (1 + eps)) * 0.5 *
                          std::pow(2.0 + std::log(2.0), 2.0 / 3.0);
  EXPECT_NEAR(theorem2_gamma(eps, 3.0), expected, 1e-12);
}

TEST(Theorem2Gamma, FallbackForSmallAlpha) {
  // alpha = 1.3: alpha-1+ln(alpha-1) < 0, fallback to the leading factor.
  const double eps = 0.5;
  EXPECT_NEAR(theorem2_gamma(eps, 1.3),
              std::pow(eps / (1 + eps), 1.0 / 0.3), 1e-12);
  EXPECT_GT(theorem2_gamma(eps, 1.3), 0.0);
}

TEST(IsolatedJobConstant, MatchesDirectMinimization) {
  // c1(alpha) = min_s (1/s + s^{alpha-1}); check numerically for alpha = 2.5.
  const double alpha = 2.5;
  double best = 1e300;
  for (double s = 0.01; s < 20.0; s += 0.0005) {
    best = std::min(best, 1.0 / s + std::pow(s, alpha - 1.0));
  }
  EXPECT_NEAR(isolated_job_constant(alpha), best, 1e-3);
}

TEST(ReferenceEnergyLambda, EmptyQueue) {
  // lambda = w (p/eps + p/(gamma w^{1/alpha})).
  const double w = 2.0, p = 3.0, eps = 0.5, alpha = 2.0, gamma = 0.25;
  const double expected =
      w * (p / eps + p / (gamma * std::sqrt(w)));
  EXPECT_NEAR(reference_energy_lambda_ij({}, w, p, eps, alpha, gamma), expected,
              1e-12);
}

TEST(ReferenceEnergyLambda, PrefixWeightsAccumulate) {
  // Two pending denser jobs (w=1,p=1 => density 1) before j (w=1,p=2 =>
  // density .5), gamma=1, alpha=2, eps=1? use eps=0.5.
  // W after l1: 1, after l2: 2, j: 3.
  // lambda = 1*(2/0.5 + 1/sqrt(1) + 1/sqrt(2) + 2/sqrt(3)) + 0.
  const double expected = 4.0 + 1.0 + 1.0 / std::sqrt(2.0) + 2.0 / std::sqrt(3.0);
  EXPECT_NEAR(reference_energy_lambda_ij({{1.0, 1.0}, {1.0, 1.0}}, 1.0, 2.0, 0.5,
                                         2.0, 1.0),
              expected, 1e-12);
}

TEST(ReferenceEnergyLambda, LowerDensityPendingCountsAsAfter) {
  // Pending job with density 0.1 (w=1, p=10) vs j density 1 (w=1,p=1):
  // j precedes it. lambda = 1*(1/eps + 1/(g*1)) + 1 * 1/(g*1) with W_j = 1.
  const double eps = 0.5, gamma = 2.0;
  const double expected = (1.0 / eps + 1.0 / gamma) + 1.0 / gamma;
  EXPECT_NEAR(reference_energy_lambda_ij({{1.0, 10.0}}, 1.0, 1.0, eps, 2.0, gamma),
              expected, 1e-12);
}

TEST(EnergyFlow, SingleJobSpeedFormula) {
  const Instance instance = single_machine_weighted_instance({{0.0, 8.0, 2.0}});
  EnergyFlowOptions options;
  options.epsilon = 0.5;
  options.alpha = 2.0;
  options.gamma = 0.5;
  const auto result = run_energy_flow(instance, options);
  check_schedule(result.schedule, instance);
  const JobRecord& rec = result.schedule.record(0);
  EXPECT_EQ(rec.fate, JobFate::kCompleted);
  // Speed = gamma * (total pending weight)^{1/alpha} = 0.5 * sqrt(2).
  EXPECT_NEAR(rec.speed, 0.5 * std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(rec.end, 8.0 / (0.5 * std::sqrt(2.0)), 1e-9);
}

TEST(EnergyFlow, SpeedFrozenDuringExecution) {
  // Second arrival raises pending weight but must not change the running
  // job's speed.
  const Instance instance = single_machine_weighted_instance(
      {{0.0, 4.0, 1.0}, {1.0, 4.0, 9.0}});
  EnergyFlowOptions options;
  options.epsilon = 0.9;  // avoid rejection (threshold w/eps = 1.11 < 9 adds)
  options.alpha = 2.0;
  options.gamma = 1.0;
  const auto result = run_energy_flow(instance, options);
  check_schedule(result.schedule, instance);
  const JobRecord& first = result.schedule.record(0);
  // Started alone: speed = 1 * sqrt(1) = 1 regardless of the later arrival.
  EXPECT_NEAR(first.speed, 1.0, 1e-12);
  // But job 1 was dispatched during job 0's run with weight 9 > 1/0.9: the
  // rejection counter v > w_k/eps -> job 0 is rejected. Verify semantics.
  EXPECT_EQ(first.fate, JobFate::kRejectedRunning);
}

TEST(EnergyFlow, AblationSwitchDisablesRejectionEntirely) {
  // Same instance that triggers the counter above; with the ablation switch
  // off the elephant runs to completion and nothing is ever rejected.
  const Instance instance = single_machine_weighted_instance(
      {{0.0, 10.0, 1.0}, {0.5, 1.0, 9.0}});
  EnergyFlowOptions options;
  options.epsilon = 0.9;
  options.alpha = 2.0;
  options.gamma = 1.0;
  options.enable_rejection = false;
  const auto result = run_energy_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.rejections, 0u);
  EXPECT_EQ(result.schedule.record(0).fate, JobFate::kCompleted);
  EXPECT_EQ(result.schedule.record(1).fate, JobFate::kCompleted);
}

TEST(EnergyFlow, NoRejectionWhenCounterStaysUnderThreshold) {
  const Instance instance = single_machine_weighted_instance(
      {{0.0, 4.0, 10.0}, {1.0, 4.0, 1.0}});
  EnergyFlowOptions options;
  options.epsilon = 0.5;  // threshold w_k/eps = 20 > 1
  options.alpha = 2.0;
  options.gamma = 1.0;
  const auto result = run_energy_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.rejections, 0u);
  EXPECT_EQ(result.schedule.record(0).fate, JobFate::kCompleted);
}

TEST(EnergyFlow, HighestDensityFirstAmongPending) {
  // Three jobs queued behind a running one; service order by w/p.
  const Instance instance = single_machine_weighted_instance({
      {0.0, 5.0, 100.0},   // runs first (alone); heavy so no rejection
      {0.1, 4.0, 1.0},     // density 0.25
      {0.2, 1.0, 2.0},     // density 2
      {0.3, 2.0, 1.0},     // density 0.5
  });
  EnergyFlowOptions options;
  options.epsilon = 0.2;  // threshold 500: no rejection
  options.alpha = 2.0;
  options.gamma = 1.0;
  const auto result = run_energy_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.rejections, 0u);
  // Start order after job 0: job 2 (density 2), job 3 (0.5), job 1 (0.25).
  EXPECT_LT(result.schedule.record(2).start, result.schedule.record(3).start);
  EXPECT_LT(result.schedule.record(3).start, result.schedule.record(1).start);
}

TEST(EnergyFlow, RejectionRequiresStrictExceedance) {
  // v accumulates to exactly w_k/eps: no rejection (strict >).
  const Instance instance = single_machine_weighted_instance(
      {{0.0, 10.0, 1.0}, {1.0, 1.0, 2.0}});
  EnergyFlowOptions options;
  options.epsilon = 0.5;  // threshold w/eps = 2.0; v = 2.0 NOT >
  options.alpha = 2.0;
  options.gamma = 1.0;
  const auto result = run_energy_flow(instance, options);
  check_schedule(result.schedule, instance);
  EXPECT_EQ(result.rejections, 0u);
}

// ------------------------------------------------------- theorem properties

Instance random_weighted_instance(std::uint64_t seed, std::size_t n,
                                  std::size_t m, double load) {
  util::Rng rng(seed);
  InstanceBuilder builder(m);
  Time t = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    t += rng.exponential(load * static_cast<double>(m));
    std::vector<Work> row(m);
    const double base = rng.pareto(0.5, 2.0);
    for (auto& p : row) p = base * rng.uniform(0.5, 2.0);
    builder.add_job(t, row, /*weight=*/rng.uniform(0.5, 4.0));
  }
  return builder.build();
}

class EnergyFlowTheoremTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EnergyFlowTheoremTest, GuaranteesHoldOnRandomInstances) {
  const auto [eps, alpha] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance =
        random_weighted_instance(util::derive_seed(4242, seed), 300, 3, 1.0);
    EnergyFlowOptions options;
    options.epsilon = eps;
    options.alpha = alpha;
    const auto result = run_energy_flow(instance, options);

    // Feasibility (non-preemptive, single job at a time).
    check_schedule(result.schedule, instance);

    // Rejected weight budget: at most eps * total weight (Theorem 2).
    const Weight rejected = result.schedule.rejected_weight(instance);
    EXPECT_LE(rejected, eps * instance.total_weight() + 1e-9)
        << "eps=" << eps << " alpha=" << alpha << " seed=" << seed;

    // ALG cost and certified lower bounds.
    const PolynomialPower power(alpha);
    const double alg = result.schedule.total_weighted_flow(instance) +
                       compute_energy(result.schedule, instance, power);
    EXPECT_GT(result.iso_lower_bound, 0.0);
    const double lb = result.best_lower_bound();
    ASSERT_GT(lb, 0.0);
    // Note: ratio < 1 is legitimate in the rejection model — ALG only pays
    // partial flow for rejected jobs while OPT must complete everything.
    const double ratio = alg / lb;
    EXPECT_GT(ratio, 0.0);

    // The theorem's guarantee O((1+1/eps)^{alpha/(alpha-1)}): check against
    // the exact closed form where it is valid (alpha > 2), else against a
    // conservative constant times the envelope.
    const double bound = theorem2_ratio_bound(eps, alpha);
    const double slack = alpha > 2.0 ? 1.0 : 10.0;
    EXPECT_LE(ratio, slack * bound)
        << "eps=" << eps << " alpha=" << alpha << " seed=" << seed
        << " alg=" << alg << " lb=" << lb;

    // Dual bookkeeping internals.
    EXPECT_GT(result.v_integral, 0.0);
    EXPECT_GE(result.sum_lambda, 0.0);
    for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
      EXPECT_GE(result.definitive_finish[j],
                result.schedule.record(static_cast<JobId>(j)).end - 1e-9);
    }
  }
}

std::string EnergyFlowName(
    const ::testing::TestParamInfo<std::tuple<double, double>>& info) {
  const int eps_pct = static_cast<int>(std::get<0>(info.param) * 100);
  const int alpha_x10 = static_cast<int>(std::get<1>(info.param) * 10);
  return "eps" + std::to_string(eps_pct) + "_alpha" + std::to_string(alpha_x10);
}

INSTANTIATE_TEST_SUITE_P(EpsAlpha, EnergyFlowTheoremTest,
                         ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                                            ::testing::Values(1.8, 2.0, 2.5, 3.0)),
                         EnergyFlowName);

TEST(EnergyFlow, ObjectiveReportIncludesEnergy) {
  const Instance instance = random_weighted_instance(99, 100, 2, 1.0);
  EnergyFlowOptions options;
  options.epsilon = 0.4;
  options.alpha = 2.0;
  const auto result = run_energy_flow(instance, options);
  const PolynomialPower power(2.0);
  const ObjectiveReport report = evaluate(result.schedule, instance, &power);
  EXPECT_GT(report.energy, 0.0);
  EXPECT_NEAR(report.flow_plus_energy(),
              result.schedule.total_weighted_flow(instance) + report.energy,
              1e-9);
}

TEST(EnergyFlow, HigherEpsilonRejectsMoreWeight) {
  // Overloaded instance: with a larger budget the scheduler sheds more.
  const Instance instance = random_weighted_instance(123, 400, 1, 3.0);
  EnergyFlowOptions low, high;
  low.epsilon = 0.1;
  low.alpha = high.alpha = 2.0;
  high.epsilon = 0.8;
  const auto a = run_energy_flow(instance, low);
  const auto b = run_energy_flow(instance, high);
  EXPECT_LE(a.schedule.rejected_weight(instance),
            0.1 * instance.total_weight() + 1e-9);
  EXPECT_GE(b.schedule.num_rejected(), a.schedule.num_rejected());
}

}  // namespace
}  // namespace osched
