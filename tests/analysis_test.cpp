// Tests for the sweep driver: metric bookkeeping, aggregation, seed
// derivation (bit-identical results regardless of thread count), table/CSV
// rendering, and the bootstrap interval.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/sweep.hpp"
#include "util/rng.hpp"

namespace osched::analysis {
namespace {

TEST(MetricRow, PreservesInsertionOrderAndOverwrites) {
  MetricRow row;
  row.set("b", 2.0);
  row.set("a", 1.0);
  row.set("b", 3.0);
  ASSERT_EQ(row.entries().size(), 2u);
  EXPECT_EQ(row.entries()[0].first, "b");
  EXPECT_DOUBLE_EQ(row.entries()[0].second, 3.0);
  EXPECT_EQ(row.entries()[1].first, "a");
  EXPECT_TRUE(row.contains("a"));
  EXPECT_FALSE(row.contains("c"));
  EXPECT_DOUBLE_EQ(row.get("a"), 1.0);
}

TEST(RunSweep, AggregatesAcrossRepetitions) {
  std::vector<SweepCase> cases;
  cases.push_back({"const", [](std::uint64_t) {
                     MetricRow row;
                     row.set("value", 7.0);
                     return row;
                   }});
  cases.push_back({"seeded", [](std::uint64_t seed) {
                     MetricRow row;
                     util::Rng rng(seed);
                     row.set("value", rng.uniform(0.0, 1.0));
                     return row;
                   }});

  SweepOptions options;
  options.repetitions = 8;
  options.seed = 42;
  const SweepResult result = run_sweep(cases, options);

  ASSERT_EQ(result.cases.size(), 2u);
  EXPECT_EQ(result.cases[0].label, "const");
  EXPECT_EQ(result.cases[0].metric("value").count(), 8u);
  EXPECT_DOUBLE_EQ(result.cases[0].metric("value").mean(), 7.0);
  EXPECT_DOUBLE_EQ(result.cases[0].metric("value").stddev(), 0.0);
  // Different seeds per repetition: nonzero spread with overwhelming
  // probability.
  EXPECT_GT(result.cases[1].metric("value").stddev(), 0.0);
}

TEST(RunSweep, ResultsAreIndependentOfThreadCount) {
  const auto runner = [](std::uint64_t seed) {
    MetricRow row;
    util::Rng rng(seed);
    row.set("x", rng.uniform(0.0, 100.0));
    row.set("y", rng.exponential(0.5));
    return row;
  };
  std::vector<SweepCase> cases;
  for (int c = 0; c < 4; ++c) {
    cases.push_back({"case" + std::to_string(c), runner});
  }

  SweepOptions serial;
  serial.repetitions = 6;
  serial.seed = 2024;
  serial.threads = 1;
  SweepOptions parallel = serial;
  parallel.threads = 8;

  const SweepResult a = run_sweep(cases, serial);
  const SweepResult b = run_sweep(cases, parallel);
  ASSERT_EQ(a.cases.size(), b.cases.size());
  for (std::size_t c = 0; c < a.cases.size(); ++c) {
    ASSERT_EQ(a.cases[c].metric_order, b.cases[c].metric_order);
    for (std::size_t k = 0; k < a.cases[c].metrics.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.cases[c].metrics[k].mean(), b.cases[c].metrics[k].mean());
      EXPECT_DOUBLE_EQ(a.cases[c].metrics[k].min(), b.cases[c].metrics[k].min());
      EXPECT_DOUBLE_EQ(a.cases[c].metrics[k].max(), b.cases[c].metrics[k].max());
    }
  }
}

TEST(RunSweep, CasesWithDifferentMetricsShareTheTable) {
  std::vector<SweepCase> cases;
  cases.push_back({"flow", [](std::uint64_t) {
                     MetricRow row;
                     row.set("flow", 10.0);
                     return row;
                   }});
  cases.push_back({"energy", [](std::uint64_t) {
                     MetricRow row;
                     row.set("energy", 5.0);
                     return row;
                   }});
  const SweepResult result = run_sweep(cases, {.repetitions = 2});

  std::ostringstream rendered;
  result.to_table().print(rendered);
  const std::string text = rendered.str();
  // Both metric columns appear; missing cells render as '-'.
  EXPECT_NE(text.find("flow"), std::string::npos);
  EXPECT_NE(text.find("energy"), std::string::npos);
  EXPECT_NE(text.find('-'), std::string::npos);
}

TEST(RunSweep, CsvHasOneLinePerCaseMetric) {
  std::vector<SweepCase> cases;
  cases.push_back({"a", [](std::uint64_t) {
                     MetricRow row;
                     row.set("m1", 1.0);
                     row.set("m2", 2.0);
                     return row;
                   }});
  const SweepResult result = run_sweep(cases, {.repetitions = 3});
  std::ostringstream csv;
  result.write_csv(csv);
  const std::string text = csv.str();
  std::size_t lines = 0;
  for (char ch : text) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);  // header + 2 metrics
  EXPECT_NE(text.find("a,m1,1"), std::string::npos);
  EXPECT_NE(text.find("a,m2,2"), std::string::npos);
}

TEST(Bootstrap, DegenerateSampleGivesPointInterval) {
  const auto interval = bootstrap_mean_ci({3.0});
  EXPECT_DOUBLE_EQ(interval.point, 3.0);
  EXPECT_DOUBLE_EQ(interval.lower, 3.0);
  EXPECT_DOUBLE_EQ(interval.upper, 3.0);
}

TEST(Bootstrap, IntervalCoversTheSampleMeanAndShrinksWithN) {
  util::Rng rng(7);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal(50.0, 10.0));
  for (int i = 0; i < 400; ++i) large.push_back(rng.normal(50.0, 10.0));

  const auto ci_small = bootstrap_mean_ci(small);
  const auto ci_large = bootstrap_mean_ci(large);
  EXPECT_LE(ci_small.lower, ci_small.point);
  EXPECT_GE(ci_small.upper, ci_small.point);
  EXPECT_LT(ci_large.upper - ci_large.lower, ci_small.upper - ci_small.lower);
  EXPECT_NEAR(ci_large.point, 50.0, 2.5);
}

TEST(Bootstrap, IsDeterministicForFixedSeed) {
  const std::vector<double> values{1.0, 5.0, 2.0, 8.0, 3.0};
  const auto a = bootstrap_mean_ci(values, 0.9, 500, 123);
  const auto b = bootstrap_mean_ci(values, 0.9, 500, 123);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

}  // namespace
}  // namespace osched::analysis
