// Tests for the scheduler facade: name round-trips, per-algorithm wiring
// (certificates, counters, energy in the report), and the validator hookup.
#include <gtest/gtest.h>

#include <cctype>

#include "api/scheduler_api.hpp"
#include "core/flow/rejection_flow.hpp"
#include "instance/builders.hpp"
#include "workload/generators.hpp"

namespace osched::api {
namespace {

TEST(Api, AlgorithmNamesRoundTrip) {
  for (const std::string& name : algorithm_names()) {
    const auto parsed = parse_algorithm(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(to_string(*parsed), name);
  }
  EXPECT_FALSE(parse_algorithm("nope").has_value());
  EXPECT_FALSE(parse_algorithm("").has_value());
}

TEST(Api, ParseAlgorithmIsCaseInsensitiveOverTheFullTable) {
  // Table-driven over every published name: the exact string, UPPER,
  // Capitalized and mIxEd forms all parse to the same algorithm; near-miss
  // spellings do not.
  const struct {
    const char* name;
    Algorithm expected;
  } table[] = {
      {"theorem1", Algorithm::kTheorem1},
      {"theorem2", Algorithm::kTheorem2},
      {"theorem3", Algorithm::kTheorem3},
      {"weighted-ext", Algorithm::kWeightedExt},
      {"greedy-spt", Algorithm::kGreedySpt},
      {"fifo", Algorithm::kFifo},
      {"immediate-reject", Algorithm::kImmediateReject},
  };
  ASSERT_EQ(std::size(table), algorithm_names().size())
      << "table out of sync with algorithm_names()";
  for (const auto& entry : table) {
    std::string upper = entry.name;
    std::string mixed = entry.name;
    for (std::size_t i = 0; i < upper.size(); ++i) {
      upper[i] = static_cast<char>(std::toupper(upper[i]));
      if (i % 2 == 0) mixed[i] = upper[i];
    }
    for (const std::string& variant : {std::string(entry.name), upper, mixed}) {
      const auto parsed = parse_algorithm(variant);
      ASSERT_TRUE(parsed.has_value()) << variant;
      EXPECT_EQ(*parsed, entry.expected) << variant;
    }
  }
  // Case folding is not fuzzy matching.
  EXPECT_FALSE(parse_algorithm("theorem").has_value());
  EXPECT_FALSE(parse_algorithm("THEOREM1 ").has_value());
  EXPECT_FALSE(parse_algorithm("greedy_spt").has_value());
}

Instance flow_workload(std::uint64_t seed, std::size_t jobs = 150) {
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = 3;
  config.load = 1.3;
  config.seed = seed;
  return workload::generate_workload(config);
}

TEST(Api, Theorem1MatchesTheDirectCall) {
  const Instance instance = flow_workload(5);
  RunOptions options;
  options.epsilon = 0.25;
  const RunSummary summary = run(Algorithm::kTheorem1, instance, options);

  const auto direct = run_rejection_flow(instance, {.epsilon = 0.25});
  EXPECT_DOUBLE_EQ(summary.report.total_flow,
                   direct.schedule.total_flow(instance));
  EXPECT_DOUBLE_EQ(summary.certified_lower_bound, direct.opt_lower_bound);
  EXPECT_EQ(summary.rule1_rejections, direct.rule1_rejections);
  EXPECT_EQ(summary.rule2_rejections, direct.rule2_rejections);
  EXPECT_GT(summary.certified_lower_bound, 0.0);
}

TEST(Api, FlowAlgorithmsReportNoEnergy) {
  const Instance instance = flow_workload(6);
  for (Algorithm algorithm : {Algorithm::kTheorem1, Algorithm::kWeightedExt,
                              Algorithm::kGreedySpt, Algorithm::kFifo,
                              Algorithm::kImmediateReject}) {
    const RunSummary summary = run(algorithm, instance);
    EXPECT_EQ(summary.report.energy, 0.0) << to_string(algorithm);
    EXPECT_EQ(summary.report.num_jobs, instance.num_jobs());
    EXPECT_EQ(summary.algorithm, algorithm);
  }
}

TEST(Api, NoRejectionBaselinesCompleteEverything) {
  const Instance instance = flow_workload(7);
  for (Algorithm algorithm : {Algorithm::kGreedySpt, Algorithm::kFifo}) {
    const RunSummary summary = run(algorithm, instance);
    EXPECT_EQ(summary.report.num_completed, instance.num_jobs());
    EXPECT_EQ(summary.report.num_rejected, 0u);
  }
}

TEST(Api, Theorem2FillsEnergyInTheReport) {
  const Instance instance = flow_workload(8, 60);
  RunOptions options;
  options.epsilon = 0.4;
  options.alpha = 2.5;
  const RunSummary summary = run(Algorithm::kTheorem2, instance, options);
  EXPECT_GT(summary.report.energy, 0.0);
  EXPECT_GT(summary.report.total_weighted_flow, 0.0);
}

TEST(Api, Theorem3RunsDeadlineInstancesAndCertifies) {
  workload::WorkloadConfig config;
  config.num_jobs = 25;
  config.num_machines = 2;
  config.load = 0.7;
  config.with_deadlines = true;
  config.seed = 9;
  const Instance instance = workload::generate_workload(config);

  RunOptions options;
  options.alpha = 2.0;
  options.speed_levels = 6;
  const RunSummary summary = run(Algorithm::kTheorem3, instance, options);
  EXPECT_EQ(summary.report.num_completed, instance.num_jobs());
  EXPECT_GT(summary.report.energy, 0.0);
  EXPECT_GT(summary.certified_lower_bound, 0.0);
  // Theorem 3: ALG <= alpha^alpha * OPT, and the certificate is a lower
  // bound on OPT within the strategy space, so ALG / LB <= alpha^alpha must
  // hold on every instance.
  EXPECT_LE(summary.report.energy,
            std::pow(options.alpha, options.alpha) *
                    summary.certified_lower_bound +
                1e-6);
}

TEST(Api, ImmediateRejectStaysWithinItsBudget) {
  const Instance instance = flow_workload(10);
  RunOptions options;
  options.epsilon = 0.2;
  const RunSummary summary = run(Algorithm::kImmediateReject, instance, options);
  EXPECT_LE(summary.report.rejected_fraction, 0.2 + 1e-9);
}

TEST(Api, RunByNameMatchesEnumDispatchAndRejectsUnknown) {
  const Instance instance = flow_workload(11);
  RunOptions options;
  options.epsilon = 0.25;
  const auto by_name = run_by_name("theorem1", instance, options);
  ASSERT_TRUE(by_name.has_value());
  const RunSummary direct = run(Algorithm::kTheorem1, instance, options);
  EXPECT_DOUBLE_EQ(by_name->report.total_flow, direct.report.total_flow);
  EXPECT_EQ(by_name->report.num_rejected, direct.report.num_rejected);

  EXPECT_FALSE(run_by_name("no-such-policy", instance, options).has_value());
}

}  // namespace
}  // namespace osched::api
