// Tests for the instance model: job sorting/renumbering, validation, power
// functions and smoothness parameters.
#include <gtest/gtest.h>

#include "instance/builders.hpp"
#include "instance/instance.hpp"
#include "instance/power.hpp"

namespace osched {
namespace {

TEST(Instance, SortsJobsByReleaseAndRenumbers) {
  std::vector<Job> jobs(3);
  jobs[0] = Job{0, 5.0, 1.0, kTimeInfinity};
  jobs[1] = Job{1, 1.0, 1.0, kTimeInfinity};
  jobs[2] = Job{2, 3.0, 1.0, kTimeInfinity};
  // One machine; processing identifies the original job: 50, 10, 30.
  Instance instance(jobs, {{50.0, 10.0, 30.0}});

  ASSERT_EQ(instance.num_jobs(), 3u);
  EXPECT_DOUBLE_EQ(instance.job(0).release, 1.0);
  EXPECT_DOUBLE_EQ(instance.job(1).release, 3.0);
  EXPECT_DOUBLE_EQ(instance.job(2).release, 5.0);
  // Matrix columns permuted with the jobs.
  EXPECT_DOUBLE_EQ(instance.processing(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(instance.processing(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(instance.processing(0, 2), 50.0);
  // Renumbered ids.
  EXPECT_EQ(instance.job(0).id, 0);
  EXPECT_EQ(instance.job(2).id, 2);
}

TEST(Instance, ReleaseTiesBrokenByOriginalId) {
  std::vector<Job> jobs(2);
  jobs[0] = Job{0, 2.0, 1.0, kTimeInfinity};
  jobs[1] = Job{1, 2.0, 1.0, kTimeInfinity};
  Instance instance(jobs, {{7.0, 9.0}});
  EXPECT_DOUBLE_EQ(instance.processing(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(instance.processing(0, 1), 9.0);
}

TEST(Instance, EligibilityAndMinProcessing) {
  InstanceBuilder builder(3);
  builder.add_job(0.0, {4.0, kTimeInfinity, 2.0});
  const Instance instance = builder.build();
  EXPECT_TRUE(instance.eligible(0, 0));
  EXPECT_FALSE(instance.eligible(1, 0));
  EXPECT_DOUBLE_EQ(instance.min_processing(0), 2.0);
}

TEST(Instance, ProcessingSpreadIgnoresInfinities) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {1.0, kTimeInfinity});
  builder.add_job(0.0, {kTimeInfinity, 100.0});
  const Instance instance = builder.build();
  EXPECT_DOUBLE_EQ(instance.processing_spread(), 100.0);
}

TEST(Instance, ValidateCatchesProblems) {
  {
    std::vector<Job> jobs(1);
    jobs[0] = Job{0, -1.0, 1.0, kTimeInfinity};
    Instance instance(jobs, {{1.0}});
    EXPECT_NE(instance.validate().find("negative release"), std::string::npos);
  }
  {
    std::vector<Job> jobs(1);
    jobs[0] = Job{0, 0.0, 1.0, kTimeInfinity};
    Instance instance(jobs, {{kTimeInfinity}});
    EXPECT_NE(instance.validate().find("no eligible machine"), std::string::npos);
  }
  {
    std::vector<Job> jobs(1);
    jobs[0] = Job{0, 5.0, 1.0, 4.0};  // deadline before release
    Instance instance(jobs, {{1.0}});
    EXPECT_NE(instance.validate().find("deadline"), std::string::npos);
  }
  {
    std::vector<Job> jobs(1);
    jobs[0] = Job{0, 0.0, 0.0, kTimeInfinity};  // zero weight
    Instance instance(jobs, {{1.0}});
    EXPECT_NE(instance.validate().find("weight"), std::string::npos);
  }
}

TEST(Instance, TotalWeight) {
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, 1.0, 2.5);
  builder.add_identical_job(1.0, 1.0, 1.5);
  EXPECT_DOUBLE_EQ(builder.build().total_weight(), 4.0);
}

TEST(Builders, SingleMachineHelpers) {
  const Instance a = single_machine_instance({{0.0, 3.0}, {1.0, 2.0}});
  EXPECT_EQ(a.num_machines(), 1u);
  EXPECT_EQ(a.num_jobs(), 2u);

  const Instance b =
      single_machine_weighted_instance({{0.0, 3.0, 2.0}, {1.0, 2.0, 5.0}});
  EXPECT_DOUBLE_EQ(b.job(1).weight, 5.0);
}

TEST(Power, PolynomialValues) {
  PolynomialPower power(3.0);
  EXPECT_DOUBLE_EQ(power.power(2.0), 8.0);
  EXPECT_DOUBLE_EQ(power.power(0.0), 0.0);
  EXPECT_DOUBLE_EQ(power.energy(2.0, 0.5), 4.0);
  EXPECT_EQ(power.name(), "P(s)=s^3");
}

TEST(Power, SmoothnessParameters) {
  const auto params = polynomial_smoothness(3.0);
  EXPECT_DOUBLE_EQ(params.mu, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(params.lambda, 9.0);  // alpha^{alpha-1}
  // lambda/(1-mu) = alpha^alpha.
  EXPECT_NEAR(params.lambda / (1.0 - params.mu), theorem3_ratio_bound(3.0), 1e-12);
}

}  // namespace
}  // namespace osched
