// Unit tests for the util substrate: rng, stats, csv, thread pool, cli,
// table rendering, the dispatch-index structures (bound heap, MPSC queue)
// and the treap order-statistic/index-cache interaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "util/augmented_treap.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/dispatch_heap.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/sliding_vector.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace osched::util {
namespace {

// ------------------------------------------------------- SlidingVector

TEST(SlidingVector, GrowsLikeAVectorWhenNeverRetired) {
  SlidingVector<int> v;
  EXPECT_TRUE(v.empty());
  v.extend_to(5);
  EXPECT_EQ(v.end_index(), 5u);
  EXPECT_EQ(v.begin_index(), 0u);
  EXPECT_EQ(v[3], 0);  // value-initialized
  v[3] = 42;
  v.extend_to(3);  // shrink request is a no-op
  EXPECT_EQ(v.end_index(), 5u);
  EXPECT_EQ(v.at(3), 42);
}

TEST(SlidingVector, RetirementMovesTheLiveWindow) {
  SlidingVector<std::size_t> v;
  v.extend_to(10);
  for (std::size_t i = 0; i < 10; ++i) v[i] = i * i;
  v.retire_below(4);
  EXPECT_EQ(v.begin_index(), 4u);
  EXPECT_EQ(v.live_size(), 6u);
  EXPECT_FALSE(v.is_live(3));
  EXPECT_TRUE(v.is_live(4));
  for (std::size_t i = 4; i < 10; ++i) EXPECT_EQ(v.at(i), i * i);
  v.retire_below(2);  // going backwards is a no-op
  EXPECT_EQ(v.begin_index(), 4u);
  v.retire_below(100);  // beyond the end clamps
  EXPECT_EQ(v.begin_index(), 10u);
  EXPECT_TRUE(v.empty());
}

TEST(SlidingVector, CompactionPreservesLiveContentsOverLongStreams) {
  // Simulates the session pattern: ids stream through a bounded window.
  // After many retire/extend cycles the storage must have been compacted
  // (ids live far beyond the initial allocation) with contents intact.
  SlidingVector<std::size_t> v;
  const std::size_t window = 500;
  for (std::size_t id = 0; id < 100000; ++id) {
    v.extend_to(id + 1);
    v[id] = id * 7;
    if (id >= window) v.retire_below(id - window);
    if (id % 997 == 0) {
      for (std::size_t k = v.begin_index(); k < v.end_index(); ++k) {
        ASSERT_EQ(v.at(k), k * 7) << "id " << id;
      }
    }
  }
  EXPECT_LE(v.live_size(), window + 1);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 6, draws / 60);  // within 10% of uniform
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, ParetoRespectsScaleMinimum) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.pareto(3.0, 1.5), 3.0);
  }
}

TEST(Rng, ParetoTailHeavierThanExponential) {
  Rng rng(19);
  // With shape 1.1 the 99.9th percentile should dwarf the median.
  Summary sample;
  for (int i = 0; i < 100000; ++i) sample.add(rng.pareto(1.0, 1.1));
  EXPECT_GT(sample.quantile(0.999) / sample.median(), 50.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, DeriveSeedDistinctStreams) {
  const auto a = derive_seed(100, 0);
  const auto b = derive_seed(100, 1);
  const auto c = derive_seed(101, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(100, 0));  // reproducible
}

// ---------------------------------------------------------------- Stats

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(0, 1);
    all.add(v);
    (i < 500 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Summary, QuantilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 5; ++i) s.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 1.5);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(GeometricMean, MatchesClosedForm) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  // y = 3 x^0.5.
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::sqrt(v));
  }
  EXPECT_NEAR(loglog_slope(x, y), 0.5, 1e-12);
}

// ---------------------------------------------------------------- CSV

TEST(Csv, RoundTripWithQuoting) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  writer.row("x", 1.5, 2);

  const auto parsed = parse_csv(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0][1], "with,comma");
  EXPECT_EQ((*parsed)[0][2], "with\"quote");
  EXPECT_EQ((*parsed)[0][3], "multi\nline");
  EXPECT_EQ((*parsed)[1][0], "x");
  EXPECT_EQ((*parsed)[1][1], "1.5");
}

TEST(Csv, ParseRejectsUnbalancedQuote) {
  EXPECT_FALSE(parse_csv("a,\"unterminated").has_value());
}

TEST(Csv, ParseEmptyFields) {
  const auto parsed = parse_csv("a,,c\n,,\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].size(), 3u);
  EXPECT_EQ((*parsed)[0][1], "");
  EXPECT_EQ((*parsed)[1].size(), 3u);
}

TEST(Csv, ToleratesCrLf) {
  const auto parsed = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1][1], "d");
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SubmitTaskReturnsFutureWithResult) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit_task([i] { return i * 3; }));
  }
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 3);
  }
}

TEST(ThreadPool, SubmitTaskVoidAndMoveOnlyResult) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto done = pool.submit_task([&counter] { counter.fetch_add(1); });
  done.get();
  EXPECT_EQ(counter.load(), 1);

  auto boxed = pool.submit_task([] { return std::make_unique<int>(7); });
  EXPECT_EQ(*boxed.get(), 7);
}

TEST(ThreadPool, ParallelMapOrdersResults) {
  ThreadPool pool(4);
  auto out = parallel_map<int>(pool, 64, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i));
  }
}

// ---------------------------------------------------------------- Cli

TEST(Cli, ParsesEqualsAndSpaceForms) {
  Cli cli;
  cli.flag("eps", "0.2", "epsilon").flag("n", "100", "jobs").flag("verbose", "false", "verbosity");
  const char* argv[] = {"prog", "--eps=0.5", "--n", "250", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_DOUBLE_EQ(cli.num("eps"), 0.5);
  EXPECT_EQ(cli.integer("n"), 250);
  EXPECT_TRUE(cli.boolean("verbose"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  Cli cli;
  cli.flag("eps", "0.2", "epsilon");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.num("eps"), 0.2);
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli;
  cli.flag("eps", "0.2", "epsilon");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, NumListParsesCommaSeparated) {
  Cli cli;
  cli.flag("sweep", "0.1,0.2,0.5", "eps sweep");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  const auto list = cli.num_list("sweep");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[2], 0.5);
}

// ---------------------------------------------------------------- Table

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.row("alpha", 1.0);
  table.row("beta-long-name", 22.5);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("beta-long-name"), std::string::npos);
  EXPECT_NE(text.find("22.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, NumFormatsSignificantDigits) {
  EXPECT_EQ(Table::num(1234.5678, 4), "1235");
  EXPECT_EQ(Table::num(0.000123456, 3), "0.000123");
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(format_duration(0.5e-4), "50.0 us");
  EXPECT_EQ(format_duration(0.012), "12.0 ms");
  EXPECT_EQ(format_duration(2.0), "2.00 s");
}

TEST(ThreadPool, SubmitBulkRunsEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.submit_bulk(std::move(tasks));
  pool.wait_idle();
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  pool.submit_bulk({});  // empty bulk is a no-op
  pool.wait_idle();
}

// ---------------------------------------------------------------- DispatchHeap

TEST(DispatchHeap, PopsInKeyThenIdOrder) {
  DispatchHeap heap;
  heap.push(3.0, 7);
  heap.push(1.0, 9);
  heap.push(1.0, 2);  // key tie: smaller id first
  heap.push(2.0, 1);
  ASSERT_EQ(heap.size(), 4u);
  EXPECT_EQ(heap.min().id, 2u);
  EXPECT_EQ(heap.pop_min().id, 2u);
  EXPECT_EQ(heap.pop_min().id, 9u);
  EXPECT_EQ(heap.pop_min().id, 1u);
  EXPECT_EQ(heap.pop_min().id, 7u);
  EXPECT_TRUE(heap.empty());
}

TEST(DispatchHeap, MatchesSortReferenceUnderChurn) {
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    DispatchHeap heap;
    heap.reset();
    std::vector<DispatchHeap::Entry> reference;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < n; ++i) {
      // Coarse keys force plenty of ties; ids are unique.
      const double key = static_cast<double>(rng.uniform_int(0, 5));
      heap.push(key, static_cast<std::uint32_t>(i));
      reference.push_back({key, static_cast<std::uint32_t>(i)});
    }
    std::sort(reference.begin(), reference.end());
    for (const auto& expected : reference) {
      const auto got = heap.pop_min();
      ASSERT_EQ(got.key, expected.key) << "round " << round;
      ASSERT_EQ(got.id, expected.id) << "round " << round;
    }
    ASSERT_TRUE(heap.empty());
  }
}

// ---------------------------------------------------------------- MpscQueue

TEST(MpscQueue, DrainsInPushOrderSingleProducer) {
  MpscQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  for (int i = 0; i < 100; ++i) queue.push(i);
  EXPECT_FALSE(queue.empty());
  std::vector<int> out;
  EXPECT_EQ(queue.drain(out), 100u);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.drain(out), 0u);
}

TEST(MpscQueue, MultipleProducersLoseNothing) {
  MpscQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.push(p * kPerProducer + i);
      }
    });
  }
  std::vector<int> out;
  while (out.size() < kProducers * kPerProducer) {
    queue.drain(out);
  }
  for (auto& producer : producers) producer.join();
  queue.drain(out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  // Every value exactly once, and each producer's values in its push order.
  std::vector<int> last(kProducers, -1);
  std::set<int> seen;
  for (const int v : out) {
    ASSERT_TRUE(seen.insert(v).second) << "duplicate " << v;
    const int p = v / kPerProducer;
    ASSERT_GT(v, last[static_cast<std::size_t>(p)])
        << "producer " << p << " order violated";
    last[static_cast<std::size_t>(p)] = v;
  }
}

TEST(MpscQueue, DestructorReleasesUndrained) {
  // Covered by ASan in CI: push without drain must not leak.
  MpscQueue<std::vector<int>> queue;
  queue.push(std::vector<int>(100, 7));
  queue.push(std::vector<int>(50, 9));
}

// ------------------------------------------------- Treap kth + index caches

/// The policy-side index cache next to each pending treap: count and
/// minimum key component, updated incrementally exactly the way
/// RejectionFlowPolicy maintains pend_n_/pend_min_p_. The churn test keeps
/// treap, cache and a std::set reference in lockstep through the same
/// insert/pop/erase/kth mix the scheduler performs, and checks that the
/// cache never drifts from the ground truth the bounds depend on.
struct DoubleKey {
  double value = 0.0;
  int id = 0;
  bool operator<(const DoubleKey& other) const {
    if (value != other.value) return value < other.value;
    return id < other.id;
  }
};
struct DoubleKeyWeight {
  double operator()(const DoubleKey& key) const { return key.value; }
};

TEST(AugmentedTreap, KthAndIndexCacheSurviveChurn) {
  util::AugmentedTreap<DoubleKey, DoubleKeyWeight> treap;
  std::set<DoubleKey> reference;
  std::uint32_t cached_count = 0;
  float cached_min = std::numeric_limits<float>::max();
  Rng rng(424242);
  int next_id = 0;

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.5 || reference.empty()) {
      const DoubleKey key{rng.uniform(0.0, 100.0), next_id++};
      treap.insert(key);
      reference.insert(key);
      ++cached_count;
      const float low = float_lower(key.value);
      if (low < cached_min) cached_min = low;
    } else if (roll < 0.75) {
      // pop_min with successor peek, as start_next uses it.
      const DoubleKey* next = nullptr;
      const DoubleKey popped = treap.pop_min_peek_next(&next);
      ASSERT_EQ(popped.value, reference.begin()->value) << "step " << step;
      ASSERT_EQ(popped.id, reference.begin()->id) << "step " << step;
      reference.erase(reference.begin());
      --cached_count;
      if (next == nullptr) {
        ASSERT_TRUE(reference.empty()) << "step " << step;
        cached_min = std::numeric_limits<float>::max();
      } else {
        ASSERT_FALSE(reference.empty()) << "step " << step;
        ASSERT_EQ(next->value, reference.begin()->value) << "step " << step;
        ASSERT_EQ(next->id, reference.begin()->id) << "step " << step;
        cached_min = float_lower(next->value);
      }
    } else {
      // Rule-2 style erase of the kth order statistic.
      const std::size_t index = rng.index(reference.size());
      const DoubleKey victim = treap.kth(index);
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(index));
      ASSERT_EQ(victim.value, it->value) << "step " << step;
      ASSERT_EQ(victim.id, it->id) << "step " << step;
      ASSERT_TRUE(treap.erase(victim));
      reference.erase(it);
      --cached_count;
      if (float_lower(victim.value) <= cached_min) {
        cached_min = reference.empty()
                         ? std::numeric_limits<float>::max()
                         : float_lower(reference.begin()->value);
      }
    }

    // Cache invariants the dispatch bounds rely on.
    ASSERT_EQ(cached_count, reference.size()) << "step " << step;
    ASSERT_EQ(treap.size(), reference.size()) << "step " << step;
    if (!reference.empty()) {
      ASSERT_EQ(static_cast<double>(cached_min),
                static_cast<double>(float_lower(reference.begin()->value)))
          << "step " << step;
      ASSERT_LE(static_cast<double>(cached_min), reference.begin()->value)
          << "step " << step;  // the bound direction: never above the min
      // And kth stays consistent with the in-order rank at a random probe.
      const std::size_t probe = rng.index(reference.size());
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(probe));
      ASSERT_EQ(treap.kth(probe).id, it->id) << "step " << step;
    } else {
      ASSERT_EQ(cached_min, std::numeric_limits<float>::max()) << "step " << step;
    }
  }
}

// ---------------------------------------------------------- float bounds

TEST(FloatBounds, LowerNeverExceedsAndUpperNeverUndercuts) {
  Rng rng(99);
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.next_double() < 0.5 ? rng.uniform(0.0, 1e12)
                                             : rng.pareto(1e-6, 1.1);
    const float lo = float_lower(x);
    const float hi = float_upper(x);
    ASSERT_LE(static_cast<double>(lo), x);
    ASSERT_GE(static_cast<double>(hi), x);
    ASSERT_GT(static_cast<double>(float_next_up(lo)), x);
  }
  EXPECT_EQ(float_lower(std::numeric_limits<double>::infinity()),
            std::numeric_limits<float>::max());
  EXPECT_EQ(float_upper(std::numeric_limits<double>::infinity()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(float_next_up(std::numeric_limits<float>::infinity()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(float_lower(0.0), 0.0f);
  EXPECT_EQ(float_upper(0.0), 0.0f);
}

}  // namespace
}  // namespace osched::util
