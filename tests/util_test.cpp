// Unit tests for the util substrate: rng, stats, csv, thread pool, cli,
// table rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/sliding_vector.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace osched::util {
namespace {

// ------------------------------------------------------- SlidingVector

TEST(SlidingVector, GrowsLikeAVectorWhenNeverRetired) {
  SlidingVector<int> v;
  EXPECT_TRUE(v.empty());
  v.extend_to(5);
  EXPECT_EQ(v.end_index(), 5u);
  EXPECT_EQ(v.begin_index(), 0u);
  EXPECT_EQ(v[3], 0);  // value-initialized
  v[3] = 42;
  v.extend_to(3);  // shrink request is a no-op
  EXPECT_EQ(v.end_index(), 5u);
  EXPECT_EQ(v.at(3), 42);
}

TEST(SlidingVector, RetirementMovesTheLiveWindow) {
  SlidingVector<std::size_t> v;
  v.extend_to(10);
  for (std::size_t i = 0; i < 10; ++i) v[i] = i * i;
  v.retire_below(4);
  EXPECT_EQ(v.begin_index(), 4u);
  EXPECT_EQ(v.live_size(), 6u);
  EXPECT_FALSE(v.is_live(3));
  EXPECT_TRUE(v.is_live(4));
  for (std::size_t i = 4; i < 10; ++i) EXPECT_EQ(v.at(i), i * i);
  v.retire_below(2);  // going backwards is a no-op
  EXPECT_EQ(v.begin_index(), 4u);
  v.retire_below(100);  // beyond the end clamps
  EXPECT_EQ(v.begin_index(), 10u);
  EXPECT_TRUE(v.empty());
}

TEST(SlidingVector, CompactionPreservesLiveContentsOverLongStreams) {
  // Simulates the session pattern: ids stream through a bounded window.
  // After many retire/extend cycles the storage must have been compacted
  // (ids live far beyond the initial allocation) with contents intact.
  SlidingVector<std::size_t> v;
  const std::size_t window = 500;
  for (std::size_t id = 0; id < 100000; ++id) {
    v.extend_to(id + 1);
    v[id] = id * 7;
    if (id >= window) v.retire_below(id - window);
    if (id % 997 == 0) {
      for (std::size_t k = v.begin_index(); k < v.end_index(); ++k) {
        ASSERT_EQ(v.at(k), k * 7) << "id " << id;
      }
    }
  }
  EXPECT_LE(v.live_size(), window + 1);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 6, draws / 60);  // within 10% of uniform
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, ParetoRespectsScaleMinimum) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.pareto(3.0, 1.5), 3.0);
  }
}

TEST(Rng, ParetoTailHeavierThanExponential) {
  Rng rng(19);
  // With shape 1.1 the 99.9th percentile should dwarf the median.
  Summary sample;
  for (int i = 0; i < 100000; ++i) sample.add(rng.pareto(1.0, 1.1));
  EXPECT_GT(sample.quantile(0.999) / sample.median(), 50.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, DeriveSeedDistinctStreams) {
  const auto a = derive_seed(100, 0);
  const auto b = derive_seed(100, 1);
  const auto c = derive_seed(101, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(100, 0));  // reproducible
}

// ---------------------------------------------------------------- Stats

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(0, 1);
    all.add(v);
    (i < 500 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Summary, QuantilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 5; ++i) s.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 1.5);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(GeometricMean, MatchesClosedForm) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  // y = 3 x^0.5.
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::sqrt(v));
  }
  EXPECT_NEAR(loglog_slope(x, y), 0.5, 1e-12);
}

// ---------------------------------------------------------------- CSV

TEST(Csv, RoundTripWithQuoting) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  writer.row("x", 1.5, 2);

  const auto parsed = parse_csv(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0][1], "with,comma");
  EXPECT_EQ((*parsed)[0][2], "with\"quote");
  EXPECT_EQ((*parsed)[0][3], "multi\nline");
  EXPECT_EQ((*parsed)[1][0], "x");
  EXPECT_EQ((*parsed)[1][1], "1.5");
}

TEST(Csv, ParseRejectsUnbalancedQuote) {
  EXPECT_FALSE(parse_csv("a,\"unterminated").has_value());
}

TEST(Csv, ParseEmptyFields) {
  const auto parsed = parse_csv("a,,c\n,,\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].size(), 3u);
  EXPECT_EQ((*parsed)[0][1], "");
  EXPECT_EQ((*parsed)[1].size(), 3u);
}

TEST(Csv, ToleratesCrLf) {
  const auto parsed = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1][1], "d");
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SubmitTaskReturnsFutureWithResult) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit_task([i] { return i * 3; }));
  }
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 3);
  }
}

TEST(ThreadPool, SubmitTaskVoidAndMoveOnlyResult) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto done = pool.submit_task([&counter] { counter.fetch_add(1); });
  done.get();
  EXPECT_EQ(counter.load(), 1);

  auto boxed = pool.submit_task([] { return std::make_unique<int>(7); });
  EXPECT_EQ(*boxed.get(), 7);
}

TEST(ThreadPool, ParallelMapOrdersResults) {
  ThreadPool pool(4);
  auto out = parallel_map<int>(pool, 64, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i));
  }
}

// ---------------------------------------------------------------- Cli

TEST(Cli, ParsesEqualsAndSpaceForms) {
  Cli cli;
  cli.flag("eps", "0.2", "epsilon").flag("n", "100", "jobs").flag("verbose", "false", "verbosity");
  const char* argv[] = {"prog", "--eps=0.5", "--n", "250", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_DOUBLE_EQ(cli.num("eps"), 0.5);
  EXPECT_EQ(cli.integer("n"), 250);
  EXPECT_TRUE(cli.boolean("verbose"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  Cli cli;
  cli.flag("eps", "0.2", "epsilon");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.num("eps"), 0.2);
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli;
  cli.flag("eps", "0.2", "epsilon");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, NumListParsesCommaSeparated) {
  Cli cli;
  cli.flag("sweep", "0.1,0.2,0.5", "eps sweep");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  const auto list = cli.num_list("sweep");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[2], 0.5);
}

// ---------------------------------------------------------------- Table

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.row("alpha", 1.0);
  table.row("beta-long-name", 22.5);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("beta-long-name"), std::string::npos);
  EXPECT_NE(text.find("22.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, NumFormatsSignificantDigits) {
  EXPECT_EQ(Table::num(1234.5678, 4), "1235");
  EXPECT_EQ(Table::num(0.000123456, 3), "0.000123");
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(format_duration(0.5e-4), "50.0 us");
  EXPECT_EQ(format_duration(0.012), "12.0 ms");
  EXPECT_EQ(format_duration(2.0), "2.00 s");
}

}  // namespace
}  // namespace osched::util
