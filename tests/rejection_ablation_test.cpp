// Tests for the Rule-2 victim-choice ablation (E12) and the no-rejection
// lower-bound adversary.
//
// The paper proves Theorem 1 for the LARGEST-pending victim only; the
// alternatives keep the rejection budget (the counter logic is untouched)
// but forfeit the Lemma 3 partition. These tests pin exactly that contract:
// budget for every victim rule, Corollary 1 for the paper's rule, observable
// victim identity for the others, and the Omega(Delta) blow-up of the
// no-rejection baselines versus the flat behaviour of the Theorem 1
// scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/list_scheduler.hpp"
#include "core/flow/rejection_flow.hpp"
#include "instance/builders.hpp"
#include "sim/validator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"
#include "workload/no_reject_lower_bound.hpp"

namespace osched {
namespace {

// ------------------------------------------------------- Rule-2 victims

// One machine, eps = 0.5 => Rule 2 fires on the 3rd dispatch, which is the
// ARRIVAL OF JOB 2 (job 0's own dispatch already counted). Pending at that
// moment: job 1 (p=5) and job 2 (p=9); job 0 is running. Job 3 arrives
// after the counter reset and always completes.
Instance victim_probe_instance() {
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, 100.0);  // runs; Rule 1 disabled below
  builder.add_identical_job(1.0, 5.0);    // pending, smallest at the firing
  builder.add_identical_job(2.0, 9.0);    // pending, largest; the trigger
  builder.add_identical_job(3.0, 2.0);    // arrives after the reset
  return builder.build();
}

RejectionFlowOptions victim_options(Rule2Victim victim) {
  RejectionFlowOptions options;
  options.epsilon = 0.5;
  options.enable_rule1 = false;  // isolate Rule 2
  options.rule2_victim = victim;
  return options;
}

TEST(Rule2Victim, LargestRejectsTheBiggestPending) {
  const Instance instance = victim_probe_instance();
  const auto result =
      run_rejection_flow(instance, victim_options(Rule2Victim::kLargest));
  EXPECT_EQ(result.rule2_rejections, 1u);
  EXPECT_EQ(result.schedule.record(2).fate, JobFate::kRejectedPending);
  EXPECT_TRUE(result.schedule.record(1).completed());
  EXPECT_TRUE(result.schedule.record(3).completed());
  EXPECT_TRUE(result.schedule.record(0).completed());
}

TEST(Rule2Victim, SmallestRejectsTheCheapestPending) {
  const Instance instance = victim_probe_instance();
  const auto result =
      run_rejection_flow(instance, victim_options(Rule2Victim::kSmallest));
  EXPECT_EQ(result.rule2_rejections, 1u);
  EXPECT_EQ(result.schedule.record(1).fate, JobFate::kRejectedPending);
  EXPECT_TRUE(result.schedule.record(2).completed());
  EXPECT_TRUE(result.schedule.record(3).completed());
}

TEST(Rule2Victim, NewestRejectsTheTrigger) {
  const Instance instance = victim_probe_instance();
  const auto result =
      run_rejection_flow(instance, victim_options(Rule2Victim::kNewest));
  EXPECT_EQ(result.rule2_rejections, 1u);
  // Job 2's dispatch fired the counter; under kNewest it is its own victim
  // (here it coincides with kLargest by construction, so also check job 1
  // stays).
  EXPECT_EQ(result.schedule.record(2).fate, JobFate::kRejectedPending);
  EXPECT_TRUE(result.schedule.record(1).completed());
  EXPECT_TRUE(result.schedule.record(3).completed());
}

TEST(Rule2Victim, RandomIsSeededAndPicksAPendingJob) {
  const Instance instance = victim_probe_instance();
  auto options = victim_options(Rule2Victim::kRandom);
  const auto first = run_rejection_flow(instance, options);
  const auto second = run_rejection_flow(instance, options);
  EXPECT_EQ(first.rule2_rejections, 1u);
  // Determinism for a fixed seed.
  for (JobId j = 0; j < 4; ++j) {
    EXPECT_EQ(first.schedule.record(j).fate, second.schedule.record(j).fate);
  }
  // The victim is one of the pending jobs, never the running one.
  EXPECT_TRUE(first.schedule.record(0).completed() ||
              first.schedule.record(0).fate == JobFate::kPending);
  std::size_t rejected = 0;
  for (JobId j = 1; j < 4; ++j) {
    rejected += first.schedule.record(j).fate == JobFate::kRejectedPending;
  }
  EXPECT_EQ(rejected, 1u);
}

class VictimBudgetTest : public ::testing::TestWithParam<Rule2Victim> {};

// The 2-eps rejection budget of Theorem 1 is a counter property, so it must
// survive every victim rule.
TEST_P(VictimBudgetTest, BudgetHoldsOnOverloadedWorkloads) {
  for (std::uint64_t seed : {11ull, 12ull}) {
    workload::WorkloadConfig config;
    config.num_jobs = 400;
    config.num_machines = 3;
    config.load = 1.5;
    config.sizes.dist = workload::SizeDistribution::kPareto;
    config.seed = seed;
    const Instance instance = workload::generate_workload(config);

    RejectionFlowOptions options;
    options.epsilon = 0.3;
    options.rule2_victim = GetParam();
    const auto result = run_rejection_flow(instance, options);

    EXPECT_LE(static_cast<double>(result.schedule.num_rejected()),
              2.0 * options.epsilon * static_cast<double>(instance.num_jobs()) +
                  1e-9)
        << "victim=" << to_string(GetParam()) << " seed=" << seed;
    check_schedule(result.schedule, instance, {});
  }
}

INSTANTIATE_TEST_SUITE_P(AllRules, VictimBudgetTest,
                         ::testing::Values(Rule2Victim::kLargest,
                                           Rule2Victim::kSmallest,
                                           Rule2Victim::kNewest,
                                           Rule2Victim::kRandom),
                         [](const ::testing::TestParamInfo<Rule2Victim>& param) {
                           return to_string(param.param);
                         });

// ------------------------------------------- no-rejection lower bound

workload::PolicyRunner greedy_runner() {
  return [](const Instance& instance) { return run_greedy_spt(instance); };
}

TEST(NoRejectLb, BuildsTheStreamInsideTheLongJob) {
  workload::NoRejectLbConfig config;
  config.L = 16.0;
  const auto outcome = run_no_reject_lower_bound(greedy_runner(), config);
  EXPECT_FALSE(outcome.algorithm_waited);
  EXPECT_EQ(outcome.num_unit_jobs, 16u);
  EXPECT_DOUBLE_EQ(outcome.delta, 16.0);
  ASSERT_EQ(outcome.instance.num_jobs(), 17u);

  // Unit jobs are released strictly inside (t*, t* + L].
  for (std::size_t idx = 0; idx < outcome.instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    if (outcome.instance.processing(0, j) >= config.L) continue;
    EXPECT_GT(outcome.instance.job(j).release, outcome.long_job_start);
    EXPECT_LE(outcome.instance.job(j).release,
              outcome.long_job_start + config.L + 1e-9);
  }

  // The witness schedule is feasible and completes everything.
  check_schedule(outcome.adversary_schedule, outcome.instance, {});
  EXPECT_EQ(outcome.adversary_schedule.num_completed(),
            outcome.instance.num_jobs());
  EXPECT_NEAR(outcome.adversary_flow,
              outcome.adversary_schedule.total_flow(outcome.instance), 1e-9);
}

TEST(NoRejectLb, GreedyRatioGrowsLinearlyInDelta) {
  std::vector<double> Ls{8.0, 16.0, 32.0};
  std::vector<double> ratios;
  for (double L : Ls) {
    workload::NoRejectLbConfig config;
    config.L = L;
    const auto outcome = run_no_reject_lower_bound(greedy_runner(), config);
    const Schedule greedy = run_greedy_spt(outcome.instance);
    ratios.push_back(greedy.total_flow(outcome.instance) /
                     outcome.adversary_flow);
  }
  EXPECT_GT(ratios[0], 1.5);
  EXPECT_LT(ratios[0], ratios[1]);
  EXPECT_LT(ratios[1], ratios[2]);
  // Doubling Delta should (roughly) double the ratio.
  EXPECT_GT(ratios[2] / ratios[0], 2.0);
}

TEST(NoRejectLb, Theorem1SchedulerStaysFlatOnTheSameInstances) {
  std::vector<double> Ls{8.0, 16.0, 32.0};
  std::vector<double> ratios;
  for (double L : Ls) {
    workload::NoRejectLbConfig config;
    config.L = L;
    const auto outcome = run_no_reject_lower_bound(greedy_runner(), config);
    const auto t1 = run_rejection_flow(outcome.instance, {.epsilon = 0.25});
    ratios.push_back(t1.schedule.total_flow(outcome.instance) /
                     outcome.adversary_flow);
  }
  // Rejection caps the damage: the ratio stays bounded (Theorem 1's constant
  // for eps = 0.25 is 2*(5)^2 = 50, but on this family the scheduler
  // interrupts the elephant via Rule 1 and lands far below it).
  for (double r : ratios) EXPECT_LT(r, 6.0);
  // ... and does not scale with Delta like the greedy does.
  EXPECT_LT(ratios[2], ratios[0] * 2.0);
}

TEST(NoRejectLb, PatienceCaseProducesTheSingleJobInstance) {
  // A policy that idles past the patience bound before starting.
  const workload::PolicyRunner procrastinator = [](const Instance& instance) {
    Schedule schedule(instance.num_jobs());
    const Work p = instance.processing(0, 0);
    schedule.mark_dispatched(0, 0);
    schedule.mark_started(0, 1000.0, 1.0);
    schedule.mark_completed(0, 1000.0 + p);
    return schedule;
  };
  workload::NoRejectLbConfig config;
  config.L = 8.0;  // patience defaults to L^2 = 64 < 1000
  const auto outcome = run_no_reject_lower_bound(procrastinator, config);
  EXPECT_TRUE(outcome.algorithm_waited);
  EXPECT_EQ(outcome.instance.num_jobs(), 1u);
  EXPECT_DOUBLE_EQ(outcome.adversary_flow, 8.0);
}

}  // namespace
}  // namespace osched
