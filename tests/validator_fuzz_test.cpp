// Mutation/property fuzzing of the independent schedule validator.
//
// Until now the validator was only ever shown feasible schedules (every
// scheduler's output passes it), so a validator that silently accepted
// garbage would never be caught. This test closes that hole: it takes
// known-feasible schedules produced by real runs, applies one structured
// mutation of a known violation class, and asserts the validator reports
// THAT class (substring-matched against its message) — then fuzzes random
// mutation sequences and asserts nothing slips through clean.
//
// Seed rotation: OSCHED_FUZZ_SEED (decimal env var) reseeds the whole test;
// CI derives it from the run id and logs it, so every CI run explores fresh
// mutations and any failure is reproducible locally.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "fuzz_seed.hpp"
#include "sim/validator.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("validator_fuzz_test", 7);
}

Instance restricted_workload(std::uint64_t seed, std::size_t n = 200) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = 4;
  config.seed = seed;
  config.load = 1.1;
  // Restricted assignment: guarantees genuinely ineligible (i, j) pairs for
  // the move-to-ineligible-machine mutation class.
  config.machines.model = workload::MachineModel::kRestricted;
  config.machines.eligibility = 0.5;
  return workload::generate_workload(config);
}

/// A feasible (schedule, instance) pair from a real run.
struct Feasible {
  Instance instance;
  Schedule schedule;
};

Feasible feasible_run(std::uint64_t seed, api::Algorithm algorithm) {
  Feasible out{restricted_workload(seed), Schedule{}};
  out.schedule = api::run(algorithm, out.instance).schedule;
  return out;
}

/// Picks a random completed job (every run here completes most jobs).
JobId random_completed(util::Rng& rng, const Schedule& schedule) {
  for (;;) {
    const auto j =
        static_cast<JobId>(rng.index(schedule.num_jobs()));
    if (schedule.record(j).completed()) return j;
  }
}

bool any_violation_contains(const std::vector<std::string>& violations,
                            const std::string& needle) {
  for (const std::string& v : violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---- One test per mutation class: the validator must name the crime. ----

TEST(ValidatorFuzz, CleanSchedulesStayClean) {
  for (std::uint64_t s = 0; s < 3; ++s) {
    const Feasible run = feasible_run(base_seed() + s, api::Algorithm::kTheorem1);
    EXPECT_TRUE(validate_schedule(run.schedule, run.instance).empty());
  }
}

TEST(ValidatorFuzz, OverlappingIntervalsAreReported) {
  util::Rng rng(util::derive_seed(base_seed(), 1));
  for (int trial = 0; trial < 20; ++trial) {
    Feasible run = feasible_run(base_seed() + 10, api::Algorithm::kGreedySpt);
    // Pull one completed job's whole execution window onto the start of
    // another completed job on the same machine.
    const JobId a = random_completed(rng, run.schedule);
    JobId b = kInvalidJob;
    for (std::size_t idx = 0; idx < run.schedule.num_jobs(); ++idx) {
      const auto j = static_cast<JobId>(idx);
      if (j != a && run.schedule.record(j).completed() &&
          run.schedule.record(j).machine == run.schedule.record(a).machine) {
        b = j;
        break;
      }
    }
    if (b == kInvalidJob) continue;
    JobRecord& rec = run.schedule.record(b);
    const Time duration = rec.end - rec.start;
    rec.start = run.schedule.record(a).start;  // same machine, same moment
    rec.end = rec.start + duration;
    if (rec.start < run.instance.job(b).release) continue;  // keep one class
    const auto violations = validate_schedule(run.schedule, run.instance);
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(any_violation_contains(violations, "overlap"))
        << violations.front();
  }
}

TEST(ValidatorFuzz, StartBeforeReleaseIsReported) {
  util::Rng rng(util::derive_seed(base_seed(), 2));
  for (int trial = 0; trial < 20; ++trial) {
    Feasible run = feasible_run(base_seed() + 20, api::Algorithm::kTheorem1);
    const JobId j = random_completed(rng, run.schedule);
    const Job& job = run.instance.job(j);
    if (job.release <= 0.0) continue;
    JobRecord& rec = run.schedule.record(j);
    const Time duration = rec.end - rec.start;
    rec.start = job.release - rng.uniform(0.5, 2.0) - 1e-3;
    rec.end = rec.start + duration;  // duration intact: isolate the class
    const auto violations = validate_schedule(run.schedule, run.instance);
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(any_violation_contains(violations, "before release"))
        << violations.front();
  }
}

TEST(ValidatorFuzz, IneligibleMachineIsReported) {
  util::Rng rng(util::derive_seed(base_seed(), 3));
  int mutated = 0;
  for (int trial = 0; trial < 40 && mutated < 10; ++trial) {
    Feasible run = feasible_run(base_seed() + 30, api::Algorithm::kFifo);
    const JobId j = random_completed(rng, run.schedule);
    MachineId target = kInvalidMachine;
    for (std::size_t i = 0; i < run.instance.num_machines(); ++i) {
      if (!run.instance.eligible(static_cast<MachineId>(i), j)) {
        target = static_cast<MachineId>(i);
        break;
      }
    }
    if (target == kInvalidMachine) continue;  // fully eligible job
    ++mutated;
    run.schedule.record(j).machine = target;
    const auto violations = validate_schedule(run.schedule, run.instance);
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(any_violation_contains(violations, "ineligible machine"))
        << violations.front();
  }
  EXPECT_GT(mutated, 0) << "restricted workload produced no ineligible pair";
}

TEST(ValidatorFuzz, DroppedDecisionIsReported) {
  util::Rng rng(util::derive_seed(base_seed(), 4));
  for (int trial = 0; trial < 20; ++trial) {
    Feasible run = feasible_run(base_seed() + 40, api::Algorithm::kTheorem1);
    const auto j = static_cast<JobId>(rng.index(run.schedule.num_jobs()));
    run.schedule.record(j) = JobRecord{};  // as if the scheduler lost it
    const auto violations = validate_schedule(run.schedule, run.instance);
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(any_violation_contains(violations, "undecided"))
        << violations.front();
    // The drop is only a violation because the run claims to be complete:
    ValidationOptions mid_run;
    mid_run.require_all_decided = false;
    EXPECT_TRUE(validate_schedule(run.schedule, run.instance, mid_run).empty());
  }
}

TEST(ValidatorFuzz, DeadlineViolationIsReported) {
  // Deadline workload, checked under the deadline-enforcing options.
  workload::WorkloadConfig config;
  config.num_jobs = 120;
  config.num_machines = 3;
  config.seed = base_seed() + 50;
  config.load = 0.7;
  config.with_deadlines = true;
  const Instance instance = workload::generate_workload(config);
  const Schedule original = api::run(api::Algorithm::kGreedySpt, instance).schedule;

  ValidationOptions options;
  options.require_deadlines = true;
  util::Rng rng(util::derive_seed(base_seed(), 5));
  int mutated = 0;
  for (int trial = 0; trial < 40 && mutated < 10; ++trial) {
    Schedule schedule = original;
    const JobId j = random_completed(rng, schedule);
    const Job& job = instance.job(j);
    if (!job.has_deadline()) continue;
    JobRecord& rec = schedule.record(j);
    const Time duration = rec.end - rec.start;
    // Slide the whole execution past the deadline; duration stays exact so
    // only the deadline class (plus possible overlap) can fire.
    rec.start = job.deadline + rng.uniform(0.0, 3.0);
    rec.end = rec.start + duration;
    ++mutated;
    const auto violations = validate_schedule(schedule, instance, options);
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(any_violation_contains(violations, "misses deadline"))
        << violations.front();
  }
  EXPECT_GT(mutated, 0);
}

TEST(ValidatorFuzz, DurationMismatchIsReported) {
  util::Rng rng(util::derive_seed(base_seed(), 6));
  for (int trial = 0; trial < 20; ++trial) {
    Feasible run = feasible_run(base_seed() + 60, api::Algorithm::kTheorem1);
    const JobId j = random_completed(rng, run.schedule);
    JobRecord& rec = run.schedule.record(j);
    rec.end += rng.uniform(0.5, 3.0);  // claims to have run too long
    const auto violations = validate_schedule(run.schedule, run.instance);
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(any_violation_contains(violations, "duration mismatch"))
        << violations.front();
  }
}

// ---- Random mutation fuzzing: whatever we break, the validator notices. --

TEST(ValidatorFuzz, RandomMutationsNeverPassClean) {
  util::Rng rng(util::derive_seed(base_seed(), 99));
  const Feasible original =
      feasible_run(base_seed() + 70, api::Algorithm::kTheorem1);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Schedule schedule = original.schedule;
    const JobId j = random_completed(rng, schedule);
    JobRecord& rec = schedule.record(j);
    bool expect_catch = true;
    switch (rng.index(5)) {
      case 0:  // shift start earlier, end fixed: duration inflates
        rec.start -= rng.uniform(0.1, 5.0);
        break;
      case 1:  // truncate the execution: duration deficit
        rec.end -= (rec.end - rec.start) * rng.uniform(0.2, 0.9);
        break;
      case 2:  // completed job that never started
        rec.started = false;
        break;
      case 3:  // negative/garbage machine index
        rec.machine = static_cast<MachineId>(
            static_cast<std::int64_t>(original.instance.num_machines()) +
            static_cast<std::int64_t>(rng.index(3)));
        break;
      case 4:  // impossible speed
        rec.speed = 0.0;
        break;
      default:
        expect_catch = false;
        break;
    }
    if (!expect_catch) continue;
    ++checked;
    const auto violations = validate_schedule(schedule, original.instance);
    EXPECT_FALSE(violations.empty())
        << "mutation of job " << j << " passed the validator clean (trial "
        << trial << ")";
  }
  EXPECT_GT(checked, 150);
}

}  // namespace
}  // namespace osched
