// Checkpoint/restore wall for streaming sessions and the shard driver.
//
// The contract (service/checkpoint.hpp): a checkpoint is a replay journal,
// and restoring it yields a session BIT-IDENTICAL to the original — cutting
// a stream at any point, checkpointing, restoring, and feeding the rest
// must reproduce the uninterrupted run double-for-double (the streaming
// differential wall supplies the underlying chunking-invariance). Damaged
// blobs — truncated at every length, corrupted at every byte, wrong magic
// or version — must come back as diagnostic errors, never aborts or
// out-of-bounds reads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "fuzz_seed.hpp"
#include "service/checkpoint.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "sim/schedule_io.hpp"
#include "workload/generated_family.hpp"

namespace osched {
namespace {

std::uint64_t base_seed() {
  return testing::fuzz_base_seed("checkpoint_test", 11);
}

const api::Algorithm kStreamable[] = {
    api::Algorithm::kTheorem1,    api::Algorithm::kTheorem2,
    api::Algorithm::kWeightedExt, api::Algorithm::kGreedySpt,
    api::Algorithm::kFifo,        api::Algorithm::kImmediateReject,
};

Instance make_workload(std::uint64_t seed, std::size_t n, std::size_t m) {
  workload::ClosedFormConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.25;
  return workload::make_closed_form_instance(config, StorageBackend::kDense);
}

void feed(service::SchedulerSession& session, const Instance& instance,
          std::size_t from, std::size_t to) {
  StreamJob job;
  for (std::size_t idx = from; idx < to; ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    session.submit(job);
  }
}

void expect_identical(const api::RunSummary& expected,
                      const api::RunSummary& actual,
                      const std::string& context) {
  ScheduleDiffOptions strict;
  strict.time_tolerance = 0.0;
  const auto diffs =
      diff_schedules(expected.schedule, actual.schedule, strict);
  EXPECT_TRUE(diffs.empty()) << context << ": " << diffs.size()
                             << " schedule diffs; first: " << diffs.front();
  EXPECT_EQ(expected.report.num_completed, actual.report.num_completed)
      << context;
  EXPECT_EQ(expected.report.num_rejected, actual.report.num_rejected)
      << context;
  EXPECT_EQ(expected.report.total_flow, actual.report.total_flow) << context;
  EXPECT_EQ(expected.report.total_weighted_flow,
            actual.report.total_weighted_flow)
      << context;
  EXPECT_EQ(expected.report.makespan, actual.report.makespan) << context;
  EXPECT_EQ(expected.certified_lower_bound, actual.certified_lower_bound)
      << context;
  EXPECT_EQ(expected.rule1_rejections, actual.rule1_rejections) << context;
  EXPECT_EQ(expected.rule2_rejections, actual.rule2_rejections) << context;
  EXPECT_EQ(expected.fleet.redispatched, actual.fleet.redispatched) << context;
  EXPECT_EQ(expected.fleet.fault_rejections, actual.fleet.fault_rejections)
      << context;
}

TEST(Checkpoint, MidStreamRoundTripEveryAlgorithm) {
  const Instance instance = make_workload(base_seed(), 300, 5);
  for (const api::Algorithm algorithm : kStreamable) {
    const std::string name = api::to_string(algorithm);

    service::SchedulerSession uninterrupted(algorithm,
                                            instance.num_machines());
    feed(uninterrupted, instance, 0, instance.num_jobs());
    const api::RunSummary reference = uninterrupted.drain();

    service::SchedulerSession original(algorithm, instance.num_machines());
    feed(original, instance, 0, instance.num_jobs() / 2);
    const std::string blob = original.checkpoint();

    std::string error;
    auto restored = service::SchedulerSession::restore(blob, &error);
    ASSERT_NE(restored, nullptr) << name << ": " << error;
    EXPECT_EQ(restored->algorithm(), algorithm);
    EXPECT_EQ(restored->num_machines(), instance.num_machines());
    EXPECT_EQ(restored->now(), original.now()) << name;
    EXPECT_EQ(restored->num_submitted(), original.num_submitted()) << name;
    EXPECT_EQ(restored->num_decided(), original.num_decided()) << name;

    // The restored session continues the stream...
    feed(*restored, instance, instance.num_jobs() / 2, instance.num_jobs());
    expect_identical(reference, restored->drain(), name + " restored");

    // ...and checkpointing was non-destructive: the original continues too.
    feed(original, instance, instance.num_jobs() / 2, instance.num_jobs());
    expect_identical(reference, original.drain(), name + " original");
  }
}

TEST(Checkpoint, RestoreAtEveryCutMatchesUninterrupted) {
  // Cut the stream at every 7th submission (plus the empty and full cuts),
  // checkpoint, restore, feed the remainder: the drained summary must equal
  // the uninterrupted run's at every cut point. advance() past the cut
  // release before checkpointing proves the clock itself round-trips.
  const Instance instance = make_workload(base_seed() + 1, 120, 4);
  service::SchedulerSession uninterrupted(api::Algorithm::kTheorem1,
                                          instance.num_machines());
  feed(uninterrupted, instance, 0, instance.num_jobs());
  const api::RunSummary reference = uninterrupted.drain();

  for (std::size_t cut = 0; cut <= instance.num_jobs(); cut += 7) {
    service::SchedulerSession session(api::Algorithm::kTheorem1,
                                      instance.num_machines());
    feed(session, instance, 0, cut);
    if (cut > 0 && cut < instance.num_jobs()) {
      const Time here = instance.job(static_cast<JobId>(cut - 1)).release;
      const Time next = instance.job(static_cast<JobId>(cut)).release;
      session.advance(here + 0.5 * (next - here));
    }
    std::string error;
    auto restored =
        service::SchedulerSession::restore(session.checkpoint(), &error);
    ASSERT_NE(restored, nullptr) << "cut=" << cut << ": " << error;
    feed(*restored, instance, cut, instance.num_jobs());
    expect_identical(reference, restored->drain(),
                     "cut=" + std::to_string(cut));
  }
}

TEST(Checkpoint, CarriesTheFleetPlanAndItsCursor) {
  // Checkpoint in the middle of a fleet plan — after a fail and a throttle
  // already fired, before a join and a recovery — and restore: the remaining
  // fleet events must fire in the restored session exactly as in the
  // uninterrupted run, and the v2 speed multipliers must round-trip.
  const Instance instance = make_workload(base_seed() + 2, 200, 5);
  api::RunOptions run;
  const Time t25 = instance.job(static_cast<JobId>(49)).release;
  const Time t40 = instance.job(static_cast<JobId>(79)).release;
  const Time t75 = instance.job(static_cast<JobId>(149)).release;
  const Time t90 = instance.job(static_cast<JobId>(179)).release;
  run.fleet.events = {{t25, 0, FleetEventKind::kFail},
                      {t40, 1, FleetEventKind::kSpeedChange, 0.5},
                      {t75, 0, FleetEventKind::kJoin},
                      {t90, 1, FleetEventKind::kSpeedChange, 2.0}};
  run.fleet.rejection_budget = 2;
  service::SessionOptions options;
  options.run = run;

  service::SchedulerSession uninterrupted(api::Algorithm::kTheorem1,
                                          instance.num_machines(), options);
  feed(uninterrupted, instance, 0, instance.num_jobs());
  const api::RunSummary reference = uninterrupted.drain();
  EXPECT_EQ(reference.fleet.fails, 1u);
  EXPECT_EQ(reference.fleet.joins, 1u);

  service::SchedulerSession session(api::Algorithm::kTheorem1,
                                    instance.num_machines(), options);
  feed(session, instance, 0, 100);  // fail+throttle fired; join+recovery pend
  std::string error;
  auto restored =
      service::SchedulerSession::restore(session.checkpoint(), &error);
  ASSERT_NE(restored, nullptr) << error;
  feed(*restored, instance, 100, instance.num_jobs());
  const api::RunSummary resumed = restored->drain();
  expect_identical(reference, resumed, "fleet checkpoint");
  EXPECT_EQ(resumed.fleet.fails, 1u);
  EXPECT_EQ(resumed.fleet.joins, 1u);
  EXPECT_EQ(resumed.fleet.speed_changes, reference.fleet.speed_changes);
  EXPECT_EQ(resumed.fleet.throttles, reference.fleet.throttles);
  EXPECT_EQ(resumed.fleet.recoveries, reference.fleet.recoveries);
  EXPECT_EQ(resumed.fleet.min_speed_multiplier,
            reference.fleet.min_speed_multiplier);
}

TEST(Checkpoint, RestoresVersion1BlobsWithNeutralDefaults) {
  // PR 7 bumped the wire version to 2 (per-event speed multipliers plus the
  // overload fields). A version-1 blob — hand-written here exactly as the
  // PR-6 writer emitted it — must still restore: membership events parse at
  // their 13-byte v1 size, every multiplier defaults to 1.0, and the live
  // window stays uncapped.
  const Instance instance = make_workload(base_seed() + 5, 40, 3);
  api::RunOptions run;
  const Time t25 = instance.job(static_cast<JobId>(9)).release;
  const Time t50 = instance.job(static_cast<JobId>(19)).release;
  run.fleet.events = {{t25, 0, FleetEventKind::kFail},
                      {t50, 0, FleetEventKind::kJoin}};
  run.fleet.rejection_budget = 1;
  service::SessionOptions options;
  options.run = run;

  const std::size_t cut = 20;
  service::CheckpointWriter w;
  w.bytes(service::kSessionCheckpointMagic, 8);
  w.u32(1);  // version 1
  w.u32(static_cast<std::uint32_t>(api::Algorithm::kGreedySpt));
  w.u64(instance.num_machines());
  w.f64(run.epsilon);
  w.f64(run.alpha);
  w.u64(run.speed_levels);
  w.f64(run.start_grid);
  w.u8(run.validate ? 1 : 0);
  w.u64(run.fleet.events.size());
  for (const FleetEvent& event : run.fleet.events) {
    w.f64(event.time);
    w.u32(static_cast<std::uint32_t>(event.machine));
    w.u8(static_cast<std::uint8_t>(event.kind));  // no speed field in v1
  }
  w.u64(0);  // initially_down
  w.u64(run.fleet.rejection_budget);
  w.u8(1);  // shed_killed_running
  w.u64(service::SessionOptions{}.retire_batch);
  // No live_window_cap / shed_budget in v1.
  w.f64(instance.job(static_cast<JobId>(cut - 1)).release);  // clock
  w.u64(cut);
  StreamJob job;
  for (std::size_t idx = 0; idx < cut; ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    w.f64(job.release);
    w.f64(job.weight);
    w.f64(job.deadline);
    for (const Work p : job.processing) w.f64(p);
  }

  std::string error;
  auto restored = service::SchedulerSession::restore(w.finish(), &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->num_submitted(), cut);
  feed(*restored, instance, cut, instance.num_jobs());

  service::SchedulerSession uninterrupted(api::Algorithm::kGreedySpt,
                                          instance.num_machines(), options);
  feed(uninterrupted, instance, 0, instance.num_jobs());
  expect_identical(uninterrupted.drain(), restored->drain(), "v1 blob");
}

TEST(Checkpoint, ForgedSpeedAndVersionSkewAreDiagnosed) {
  using service::CheckpointWriter;
  // Shared tail after the fleet events: down-list, budget, shed flag,
  // retire batch, (v2: overload fields,) clock, empty job journal.
  const auto finish_body = [](CheckpointWriter& w, bool v2) {
    w.u64(0);     // initially_down
    w.u64(0);     // rejection_budget
    w.u8(1);      // shed_killed_running
    w.u64(8192);  // retire_batch
    if (v2) {
      w.u64(0);  // live_window_cap
      w.u64(0);  // shed_budget
    }
    w.f64(0.0);  // clock
    w.u64(0);    // no jobs
  };

  std::string error;
  {
    // A v2 blob whose speed multiplier is invalid: recoverable, and the
    // diagnostic comes from the fleet-plan validator.
    CheckpointWriter w;
    w.bytes(service::kSessionCheckpointMagic, 8);
    w.u32(2);
    w.u32(static_cast<std::uint32_t>(api::Algorithm::kGreedySpt));
    w.u64(2);    // machines
    w.f64(0.2);  // epsilon
    w.f64(2.0);  // alpha
    w.u64(8);    // speed_levels
    w.f64(0.5);  // start_grid
    w.u8(0);     // validate off
    w.u64(1);
    w.f64(1.0);  // event time
    w.u32(0);    // machine
    w.u8(3);     // kSpeedChange
    w.f64(-1.0);  // forged multiplier
    finish_body(w, /*v2=*/true);
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("invalid fleet plan"), std::string::npos) << error;
  }
  {
    // kSpeedChange entered the format in v2 — kind 3 inside a version-1
    // blob is damage, not history.
    CheckpointWriter w;
    w.bytes(service::kSessionCheckpointMagic, 8);
    w.u32(1);
    w.u32(static_cast<std::uint32_t>(api::Algorithm::kGreedySpt));
    w.u64(2);
    w.f64(0.2);
    w.f64(2.0);
    w.u64(8);
    w.f64(0.5);
    w.u8(0);
    w.u64(1);
    w.f64(1.0);
    w.u32(0);
    w.u8(3);  // v1 events have no speed byte tail — and no kind 3
    finish_body(w, /*v2=*/false);
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("fleet event kind 3"), std::string::npos) << error;
  }
  {
    // Overload fields inconsistent with the journal: cap 1 with no shed
    // budget cannot have accepted a second live job, so the replay's
    // backpressure is reported as corruption, not an abort.
    CheckpointWriter w;
    w.bytes(service::kSessionCheckpointMagic, 8);
    w.u32(2);
    w.u32(static_cast<std::uint32_t>(api::Algorithm::kGreedySpt));
    w.u64(1);    // one machine
    w.f64(0.2);
    w.f64(2.0);
    w.u64(8);
    w.f64(0.5);
    w.u8(0);
    w.u64(0);    // no fleet events
    w.u64(0);    // initially_down
    w.u64(0);    // rejection_budget
    w.u8(1);     // shed_killed_running
    w.u64(8192); // retire_batch
    w.u64(1);    // live_window_cap: one live job
    w.u64(0);    // shed_budget: none
    w.f64(1.0);  // clock
    w.u64(2);    // two journaled jobs, both live at the cut — impossible
    for (const double release : {0.0, 1.0}) {
      w.f64(release);
      w.f64(1.0);            // weight
      w.f64(kTimeInfinity);  // no deadline
      w.f64(100.0);          // processing: still running when job 1 arrives
    }
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("backpressure"), std::string::npos) << error;
  }
}

TEST(Checkpoint, TruncationAtEveryLengthIsDiagnosedNotUB) {
  const Instance instance = make_workload(base_seed() + 3, 20, 3);
  service::SchedulerSession session(api::Algorithm::kTheorem1,
                                    instance.num_machines());
  feed(session, instance, 0, instance.num_jobs());
  const std::string blob = session.checkpoint();

  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::string error;
    const auto restored = service::SchedulerSession::restore(
        std::string_view(blob.data(), len), &error);
    EXPECT_EQ(restored, nullptr) << "prefix of " << len << " bytes restored";
    EXPECT_FALSE(error.empty()) << "no diagnostic for a " << len
                                << "-byte prefix";
  }
}

TEST(Checkpoint, CorruptionAtEveryByteIsDiagnosedNotUB) {
  const Instance instance = make_workload(base_seed() + 4, 20, 3);
  service::SchedulerSession session(api::Algorithm::kTheorem1,
                                    instance.num_machines());
  feed(session, instance, 0, instance.num_jobs());
  const std::string blob = session.checkpoint();

  std::string damaged = blob;
  for (std::size_t at = 0; at < blob.size(); ++at) {
    damaged[at] = static_cast<char>(damaged[at] ^ 0x5a);
    std::string error;
    const auto restored = service::SchedulerSession::restore(damaged, &error);
    EXPECT_EQ(restored, nullptr) << "byte " << at << " flipped, restored anyway";
    EXPECT_FALSE(error.empty()) << "no diagnostic for a flip at byte " << at;
    damaged[at] = blob[at];
  }
}

TEST(Checkpoint, WrongMagicVersionAndForgedFieldsAreDiagnosed) {
  using service::CheckpointReader;
  using service::CheckpointWriter;

  std::string error;
  EXPECT_EQ(service::SchedulerSession::restore("", &error), nullptr);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  // A validly checksummed blob with someone else's magic. (The u64 pad
  // keeps these above open()'s minimum-header size, so the magic/version
  // checks — not the truncation check — are what fires.)
  {
    CheckpointWriter w;
    w.bytes("NOTACKPT", 8);
    w.u32(service::kCheckpointVersion);
    w.u64(0);
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
  }

  // Right magic, future version: must name both versions.
  {
    CheckpointWriter w;
    w.bytes(service::kSessionCheckpointMagic, 8);
    w.u32(99);
    w.u64(0);
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("version 99"), std::string::npos) << error;
  }

  // Structurally valid header whose machine count is an allocation bomb.
  {
    CheckpointWriter w;
    w.bytes(service::kSessionCheckpointMagic, 8);
    w.u32(service::kCheckpointVersion);
    w.u32(0);                        // algorithm: theorem1
    w.u64(0xffffffffffffULL);        // num_machines: absurd
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
}

TEST(Checkpoint, LowMemoryAndDrainedSessionsRefuse) {
  service::SessionOptions low_memory;
  low_memory.run.validate = false;
  low_memory.retain_records = false;
  service::SchedulerSession session(api::Algorithm::kTheorem1, 2, low_memory);
  EXPECT_DEATH(session.checkpoint(), "retain_records");

  service::SchedulerSession done(api::Algorithm::kTheorem1, 2);
  done.drain();
  EXPECT_DEATH(done.checkpoint(), "drained");
}

// -------------------------------------------- storage backends (wire v3)

Instance make_backend_workload(std::uint64_t seed, std::size_t n,
                               std::size_t m, StorageBackend backend,
                               double eligibility = 1.0) {
  workload::ClosedFormConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.25;
  config.eligibility = eligibility;
  return workload::make_closed_form_instance(config, backend);
}

void feed_backend(service::SchedulerSession& session, const Instance& instance,
                  std::size_t from, std::size_t to, bool meta_only) {
  StreamJob job;
  for (std::size_t idx = from; idx < to; ++idx) {
    const auto j = static_cast<JobId>(idx);
    if (meta_only) {
      fill_stream_job_meta(instance.job(j), 0.0, &job);
    } else {
      fill_stream_job(instance, j, 0.0, &job);
    }
    session.submit(job);
  }
}

TEST(Checkpoint, SparseSessionsRoundTripTheirVariableStrideJournal) {
  // A restricted-assignment sparse session journals (count, entries) rows of
  // varying length — the one wire-v3 layout whose stride is data-dependent.
  // Mid-stream cut, restore, continue: byte-identical to uninterrupted.
  const Instance instance = make_backend_workload(
      base_seed() + 60, 200, 8, StorageBackend::kSparseCsr,
      /*eligibility=*/0.4);
  service::SessionOptions options;
  options.storage = StorageBackend::kSparseCsr;

  service::SchedulerSession uninterrupted(api::Algorithm::kTheorem1,
                                          instance.num_machines(), options);
  feed_backend(uninterrupted, instance, 0, instance.num_jobs(), false);
  const api::RunSummary reference = uninterrupted.drain();

  service::SchedulerSession original(api::Algorithm::kTheorem1,
                                     instance.num_machines(), options);
  feed_backend(original, instance, 0, 100, false);
  std::string error;
  auto restored =
      service::SchedulerSession::restore(original.checkpoint(), &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->num_submitted(), original.num_submitted());
  feed_backend(*restored, instance, 100, instance.num_jobs(), false);
  expect_identical(reference, restored->drain(), "sparse restored");
  // The restored store is sparse, not a dense rehydration: continuing the
  // ORIGINAL proves checkpointing was non-destructive either way.
  feed_backend(original, instance, 100, instance.num_jobs(), false);
  expect_identical(reference, original.drain(), "sparse original");
}

TEST(Checkpoint, GeneratorSessionsRoundTripGivenTheirClosedForm) {
  // A generator session's journal is metadata-only; restore() is handed the
  // closed form. A FRESH generator built from an equal config must do —
  // equal configs produce bit-identical forms, so checkpoints survive
  // process restarts where the original pointer is gone.
  workload::ClosedFormConfig config;
  config.num_jobs = 200;
  config.num_machines = 6;
  config.seed = base_seed() + 61;
  config.load = 1.25;
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  service::SessionOptions options;
  options.storage = StorageBackend::kGenerator;
  options.generator = workload::make_closed_form_generator(config);

  service::SchedulerSession uninterrupted(api::Algorithm::kTheorem1,
                                          instance.num_machines(), options);
  feed_backend(uninterrupted, instance, 0, instance.num_jobs(), true);
  const api::RunSummary reference = uninterrupted.drain();

  service::SchedulerSession original(api::Algorithm::kTheorem1,
                                     instance.num_machines(), options);
  feed_backend(original, instance, 0, 100, true);
  const std::string blob = original.checkpoint();

  // Without the closed form the blob is undecodable — diagnosed, not UB.
  std::string error;
  EXPECT_EQ(service::SchedulerSession::restore(blob, &error), nullptr);
  EXPECT_NE(error.find("generator-backed session"), std::string::npos)
      << error;

  auto restored = service::SchedulerSession::restore(
      blob, &error, workload::make_closed_form_generator(config));
  ASSERT_NE(restored, nullptr) << error;
  feed_backend(*restored, instance, 100, instance.num_jobs(), true);
  expect_identical(reference, restored->drain(), "generator restored");
}

TEST(Checkpoint, CompactBackendBlobTruncationIsDiagnosedNotUB) {
  // The dense truncation wall has a fixed journal stride; the sparse and
  // generator layouts have their own parse paths, so they get their own
  // every-length truncation sweep.
  workload::ClosedFormConfig config;
  config.num_jobs = 12;
  config.num_machines = 3;
  config.seed = base_seed() + 62;
  const auto generator = workload::make_closed_form_generator(config);

  std::vector<std::string> blobs;
  {
    const Instance sparse = make_backend_workload(
        base_seed() + 63, 12, 3, StorageBackend::kSparseCsr, 0.6);
    service::SessionOptions options;
    options.storage = StorageBackend::kSparseCsr;
    service::SchedulerSession session(api::Algorithm::kTheorem1, 3, options);
    feed_backend(session, sparse, 0, sparse.num_jobs(), false);
    blobs.push_back(session.checkpoint());
  }
  {
    const Instance generated =
        workload::make_closed_form_instance(config, StorageBackend::kGenerator);
    service::SessionOptions options;
    options.storage = StorageBackend::kGenerator;
    options.generator = generator;
    service::SchedulerSession session(api::Algorithm::kTheorem1, 3, options);
    feed_backend(session, generated, 0, generated.num_jobs(), true);
    blobs.push_back(session.checkpoint());
  }
  for (const std::string& blob : blobs) {
    for (std::size_t len = 0; len < blob.size(); ++len) {
      std::string error;
      const auto restored = service::SchedulerSession::restore(
          std::string_view(blob.data(), len), &error, generator);
      EXPECT_EQ(restored, nullptr) << "prefix of " << len << " bytes restored";
      EXPECT_FALSE(error.empty()) << "no diagnostic at " << len << " bytes";
    }
  }
}

TEST(Checkpoint, ForgedBackendFieldsAreDiagnosed) {
  using service::CheckpointWriter;
  // The v3 header through the overload fields, for a 1-machine kGreedySpt
  // session — each case below appends a differently damaged tail.
  const auto begin_v3 = [](CheckpointWriter& w) {
    w.bytes(service::kSessionCheckpointMagic, 8);
    w.u32(3);
    w.u32(static_cast<std::uint32_t>(api::Algorithm::kGreedySpt));
    w.u64(1);     // machines
    w.f64(0.2);   // epsilon
    w.f64(2.0);   // alpha
    w.u64(8);     // speed_levels
    w.f64(0.5);   // start_grid
    w.u8(0);      // validate off
    w.u64(0);     // no fleet events
    w.u64(0);     // initially_down
    w.u64(0);     // rejection_budget
    w.u8(1);      // shed_killed_running
    w.u64(8192);  // retire_batch
    w.u64(0);     // live_window_cap
    w.u64(0);     // shed_budget
  };

  std::string error;
  {
    // A backend id the trio does not name.
    CheckpointWriter w;
    begin_v3(w);
    w.u8(7);     // forged backend
    w.f64(0.0);  // clock
    w.u64(0);    // no jobs
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("unknown storage backend id 7"), std::string::npos)
        << error;
  }
  {
    // A sparse job declaring more entries than the blob holds: the count is
    // bounds-checked before any allocation or read.
    CheckpointWriter w;
    begin_v3(w);
    w.u8(static_cast<std::uint8_t>(StorageBackend::kSparseCsr));
    w.f64(0.0);  // clock
    w.u64(1);    // one journaled job
    w.f64(0.0);            // release
    w.f64(1.0);            // weight
    w.f64(kTimeInfinity);  // deadline
    w.u32(0x00ffffff);     // entry count: a lie
    w.u32(0);              // one real entry's machine...
    w.f64(1.0);            // ...and value
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("more sparse entries than the blob holds"),
              std::string::npos)
        << error;
  }
  {
    // A dense journal is fixed-stride, so surplus bytes are caught by the
    // up-front size check.
    CheckpointWriter w;
    begin_v3(w);
    w.u8(static_cast<std::uint8_t>(StorageBackend::kDense));
    w.f64(0.0);  // clock
    w.u64(1);    // one journaled job
    w.f64(0.0);            // release
    w.f64(1.0);            // weight
    w.f64(kTimeInfinity);  // deadline
    w.f64(1.0);            // the 1-machine processing row
    w.f64(42.0);           // surplus
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("job journal size mismatch"), std::string::npos)
        << error;
  }
  {
    // The sparse journal's stride is data-dependent, so its surplus check
    // runs after replay: bytes left over are damage, not padding.
    CheckpointWriter w;
    begin_v3(w);
    w.u8(static_cast<std::uint8_t>(StorageBackend::kSparseCsr));
    w.f64(0.0);  // clock
    w.u64(1);    // one journaled job
    w.f64(0.0);            // release
    w.f64(1.0);            // weight
    w.f64(kTimeInfinity);  // deadline
    w.u32(1);              // one entry
    w.u32(0);              // machine 0
    w.f64(1.0);            // p
    w.u32(0);              // trailing garbage...
    w.f64(42.0);           // ...the declared journal never claims
    EXPECT_EQ(service::SchedulerSession::restore(w.finish(), &error), nullptr);
    EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
  }
}

TEST(ShardDriverCheckpoint, RoundTripAcrossThreadCounts) {
  // Checkpoint a 4-tenant driver mid-stream; restore twice (inline mode and
  // a real worker pool) and continue all three drivers identically: every
  // tenant's drained summary must match, and match the uninterrupted run.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kMachines = 4;
  std::vector<Instance> tenants;
  for (std::size_t s = 0; s < kShards; ++s) {
    tenants.push_back(make_workload(base_seed() + 50 + s, 200, kMachines));
  }
  const auto feed_driver = [&](service::ShardDriver& driver, std::size_t from,
                               std::size_t to) {
    for (std::size_t s = 0; s < kShards; ++s) {
      for (std::size_t k = from; k < to && k < tenants[s].num_jobs(); ++k) {
        driver.submit(s, make_stream_job(tenants[s], static_cast<JobId>(k)));
      }
    }
    driver.pump();
  };

  service::ShardDriverOptions options;
  options.threads = 2;
  service::ShardDriver original(api::Algorithm::kTheorem1, kShards, kMachines,
                                options);
  feed_driver(original, 0, 100);
  const std::string blob = original.checkpoint();

  std::string error;
  auto inline_restore = service::ShardDriver::restore(blob, 1, &error);
  ASSERT_NE(inline_restore, nullptr) << error;
  EXPECT_EQ(inline_restore->worker_count(), 0u) << "threads=1 must run inline";
  auto pooled_restore = service::ShardDriver::restore(blob, 4, &error);
  ASSERT_NE(pooled_restore, nullptr) << error;

  feed_driver(original, 100, 200);
  feed_driver(*inline_restore, 100, 200);
  feed_driver(*pooled_restore, 100, 200);
  const auto a = original.drain_all();
  const auto b = inline_restore->drain_all();
  const auto c = pooled_restore->drain_all();
  ASSERT_EQ(a.size(), kShards);
  ASSERT_EQ(b.size(), kShards);
  ASSERT_EQ(c.size(), kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    service::SchedulerSession solo(api::Algorithm::kTheorem1, kMachines);
    feed(solo, tenants[s], 0, tenants[s].num_jobs());
    const api::RunSummary reference = solo.drain();
    expect_identical(reference, a[s], "original shard " + std::to_string(s));
    expect_identical(reference, b[s], "inline shard " + std::to_string(s));
    expect_identical(reference, c[s], "pooled shard " + std::to_string(s));
  }
}

TEST(ShardDriverCheckpoint, DamagedContainerIsDiagnosed) {
  service::ShardDriver driver(api::Algorithm::kGreedySpt, 2, 2);
  const std::string blob = driver.checkpoint();

  std::string error;
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, blob.size() / 2, blob.size() - 1}) {
    EXPECT_EQ(service::ShardDriver::restore(
                  std::string_view(blob.data(), len), 1, &error),
              nullptr)
        << len;
    EXPECT_FALSE(error.empty());
  }

  // A session blob is not a driver blob (and vice versa).
  service::SchedulerSession session(api::Algorithm::kGreedySpt, 2);
  EXPECT_EQ(service::ShardDriver::restore(session.checkpoint(), 1, &error),
            nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  EXPECT_EQ(service::SchedulerSession::restore(blob, &error), nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(ShardDriverCheckpoint, GeneratorFleetRestoresWithOneSharedForm) {
  // A whole fleet of generator-backed tenants checkpoints metadata-only
  // journals and restores against ONE closed form passed to
  // ShardDriver::restore — the multi-tenant shape bench_e21 soaks at scale.
  constexpr std::size_t kShards = 3;
  workload::ClosedFormConfig config;
  config.num_jobs = 150;
  config.num_machines = 4;
  config.seed = base_seed() + 70;
  config.load = 1.25;
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  const auto generator = workload::make_closed_form_generator(config);

  service::ShardDriverOptions options;
  options.threads = 2;
  options.session.storage = StorageBackend::kGenerator;
  options.session.generator = generator;
  service::ShardDriver original(api::Algorithm::kTheorem1, kShards, 4,
                                options);
  const auto feed_driver = [&](service::ShardDriver& driver, std::size_t from,
                               std::size_t to) {
    StreamJob job;
    for (std::size_t s = 0; s < kShards; ++s) {
      for (std::size_t k = from; k < to; ++k) {
        fill_stream_job_meta(instance.job(static_cast<JobId>(k)), 0.0, &job);
        driver.submit(s, job);
      }
    }
    driver.pump();
  };
  feed_driver(original, 0, 75);
  const std::string blob = original.checkpoint();

  std::string error;
  EXPECT_EQ(service::ShardDriver::restore(blob, 1, &error), nullptr)
      << "a generator fleet must not restore without its closed form";
  EXPECT_NE(error.find("generator-backed session"), std::string::npos)
      << error;

  auto restored = service::ShardDriver::restore(blob, 2, &error, generator);
  ASSERT_NE(restored, nullptr) << error;
  feed_driver(original, 75, config.num_jobs);
  feed_driver(*restored, 75, config.num_jobs);
  const auto a = original.drain_all();
  const auto b = restored->drain_all();
  ASSERT_EQ(a.size(), kShards);
  ASSERT_EQ(b.size(), kShards);

  service::SessionOptions solo_options;
  solo_options.storage = StorageBackend::kGenerator;
  solo_options.generator = generator;
  service::SchedulerSession solo(api::Algorithm::kTheorem1, 4, solo_options);
  feed_backend(solo, instance, 0, instance.num_jobs(), true);
  const api::RunSummary reference = solo.drain();
  for (std::size_t s = 0; s < kShards; ++s) {
    expect_identical(reference, a[s], "original shard " + std::to_string(s));
    expect_identical(reference, b[s], "restored shard " + std::to_string(s));
  }
}

}  // namespace
}  // namespace osched
