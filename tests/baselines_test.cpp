// Tests for the baseline schedulers and the flow lower bounds.
#include <gtest/gtest.h>

#include "baselines/avr_energy.hpp"
#include "baselines/flow_lower_bounds.hpp"
#include "baselines/immediate_rejection.hpp"
#include "baselines/list_scheduler.hpp"
#include "baselines/speed_augmented.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "instance/builders.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace osched {
namespace {

// ---------------------------------------------------------------- list

TEST(ListScheduler, SptServesShortestFirst) {
  const Instance instance =
      single_machine_instance({{0.0, 10.0}, {1.0, 4.0}, {2.0, 2.0}});
  const Schedule schedule = run_greedy_spt(instance);
  check_schedule(schedule, instance);
  EXPECT_DOUBLE_EQ(schedule.record(2).start, 10.0);  // shorter first
  EXPECT_DOUBLE_EQ(schedule.record(1).start, 12.0);
}

TEST(ListScheduler, FifoServesInReleaseOrder) {
  const Instance instance =
      single_machine_instance({{0.0, 10.0}, {1.0, 4.0}, {2.0, 2.0}});
  const Schedule schedule = run_fifo(instance);
  check_schedule(schedule, instance);
  EXPECT_DOUBLE_EQ(schedule.record(1).start, 10.0);  // release order
  EXPECT_DOUBLE_EQ(schedule.record(2).start, 14.0);
}

TEST(ListScheduler, MinCompletionBalancesMachines) {
  InstanceBuilder builder(2);
  builder.add_identical_job(0.0, 4.0);
  builder.add_identical_job(0.0, 4.0);
  const Instance instance = builder.build();
  const Schedule schedule = run_greedy_spt(instance);
  check_schedule(schedule, instance);
  EXPECT_NE(schedule.record(0).machine, schedule.record(1).machine);
}

TEST(ListScheduler, RoundRobinCycles) {
  InstanceBuilder builder(3);
  for (int k = 0; k < 6; ++k) builder.add_identical_job(0.0, 1.0);
  const Instance instance = builder.build();
  const Schedule schedule = run_list_scheduler(
      instance, {DispatchRule::kRoundRobin, QueueDiscipline::kFifo});
  check_schedule(schedule, instance);
  EXPECT_EQ(schedule.record(0).machine, 0);
  EXPECT_EQ(schedule.record(1).machine, 1);
  EXPECT_EQ(schedule.record(2).machine, 2);
  EXPECT_EQ(schedule.record(3).machine, 0);
}

TEST(ListScheduler, NeverRejects) {
  workload::WorkloadConfig config;
  config.num_jobs = 300;
  config.num_machines = 2;
  config.load = 2.0;  // heavy overload: still no rejection
  config.seed = 77;
  const Instance instance = workload::generate_workload(config);
  const Schedule schedule = run_greedy_spt(instance);
  check_schedule(schedule, instance);
  EXPECT_EQ(schedule.num_rejected(), 0u);
  EXPECT_EQ(schedule.num_completed(), instance.num_jobs());
}

TEST(ListScheduler, RespectsRestrictedEligibility) {
  workload::WorkloadConfig config;
  config.num_jobs = 200;
  config.num_machines = 4;
  config.machines.model = workload::MachineModel::kRestricted;
  config.machines.eligibility = 0.4;
  config.seed = 78;
  const Instance instance = workload::generate_workload(config);
  for (auto rule : {DispatchRule::kMinCompletion, DispatchRule::kMinBacklog,
                    DispatchRule::kRoundRobin}) {
    const Schedule schedule =
        run_list_scheduler(instance, {rule, QueueDiscipline::kSpt});
    check_schedule(schedule, instance);  // validator checks eligibility
  }
}

// ---------------------------------------------------------------- immediate

TEST(ImmediateRejection, BudgetRespected) {
  workload::WorkloadConfig config;
  config.num_jobs = 500;
  config.num_machines = 1;
  config.load = 3.0;
  config.seed = 12;
  const Instance instance = workload::generate_workload(config);
  const auto result =
      run_immediate_rejection(instance, {.eps = 0.2, .patience = 1.0});
  check_schedule(result.schedule, instance);
  EXPECT_LE(static_cast<double>(result.rejections),
            0.2 * static_cast<double>(instance.num_jobs()) + 1e-9);
}

TEST(ImmediateRejection, RejectsOnlyAtArrival) {
  // Rejected jobs must never have started (that is the class restriction).
  workload::WorkloadConfig config;
  config.num_jobs = 400;
  config.load = 2.5;
  config.seed = 13;
  const Instance instance = workload::generate_workload(config);
  const auto result =
      run_immediate_rejection(instance, {.eps = 0.3, .patience = 0.5});
  for (const JobRecord& rec : result.schedule.records()) {
    if (rec.rejected()) {
      EXPECT_EQ(rec.fate, JobFate::kRejectedPending);
      EXPECT_FALSE(rec.started);
      // Rejection exactly at arrival.
      // (release lookup via instance would need the id; fate check suffices)
    }
  }
}

TEST(ImmediateRejection, ZeroPatienceStillScheduling) {
  const Instance instance = single_machine_instance({{0.0, 2.0}});
  const auto result = run_immediate_rejection(instance, {.eps = 0.5, .patience = 0.0});
  check_schedule(result.schedule, instance);
  // No queue at arrival -> wait 0, not > 0: accepted.
  EXPECT_EQ(result.schedule.num_completed(), 1u);
}

// ---------------------------------------------------------------- speed-aug

TEST(SpeedAugmented, RunsFasterThanUnitSpeed) {
  workload::WorkloadConfig config;
  config.num_jobs = 300;
  config.num_machines = 2;
  config.load = 1.2;
  config.seed = 21;
  const Instance instance = workload::generate_workload(config);

  SpeedAugmentedOptions options;
  options.eps_rejection = 0.2;
  options.eps_speed = 0.5;
  const auto augmented = run_speed_augmented_flow(instance, options);
  check_schedule(augmented.schedule, instance);

  const auto unit = run_rejection_flow(instance, {.epsilon = 0.2});
  // With 1.5x speed the flow should be strictly better on a loaded system.
  EXPECT_LT(augmented.schedule.total_flow(instance),
            unit.schedule.total_flow(instance));
}

// ---------------------------------------------------------------- AVR

TEST(AvrEnergy, StretchesAcrossWindow) {
  InstanceBuilder builder(1);
  builder.add_identical_job(0.0, 4.0, 1.0, /*deadline=*/8.0);
  const Instance instance = builder.build();
  const auto result = run_avr_energy(instance, 2.0);
  EXPECT_NEAR(result.chosen[0].speed, 0.5, 1e-12);
  EXPECT_NEAR(result.schedule.record(0).start, 0.0, 1e-12);
  EXPECT_NEAR(result.schedule.record(0).end, 8.0, 1e-12);
  EXPECT_NEAR(result.energy, 0.25 * 8.0, 1e-9);
  ValidationOptions vopts;
  vopts.allow_parallel_execution = true;
  vopts.require_deadlines = true;
  check_schedule(result.schedule, instance, vopts);
}

TEST(AvrEnergy, GreedyPDNeverWorseOnSequentialWindows) {
  // Disjoint windows: ConfigPD can do at least as well as AVR (it includes
  // AVR-like strategies in its grid thanks to the exact-fit fallback).
  workload::WorkloadConfig config;
  config.num_jobs = 25;
  config.num_machines = 2;
  config.with_deadlines = true;
  config.slack_min = 2.0;
  config.slack_max = 5.0;
  config.seed = 31;
  const Instance instance = workload::generate_workload(config);

  const auto avr = run_avr_energy(instance, 2.0);
  ConfigPDOptions pd_options;
  pd_options.alpha = 2.0;
  pd_options.speed_levels = 10;
  pd_options.start_grid = 0.5;
  const auto pd = run_config_primal_dual(instance, pd_options);
  // Not a theorem, but with a fine grid the PD greedy should beat or match
  // plain AVR on typical instances.
  EXPECT_LE(pd.algorithm_energy, avr.energy * 1.10);
}

// ---------------------------------------------------------------- lower bounds

TEST(FlowLowerBounds, SumMinProcessing) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {4.0, 2.0});
  builder.add_job(1.0, {3.0, 6.0});
  EXPECT_DOUBLE_EQ(lb_sum_min_processing(builder.build()), 5.0);
}

TEST(FlowLowerBounds, SrptMatchesHandComputation) {
  // Jobs: (r=0,p=5), (r=1,p=1). SRPT: run j0 [0,1), preempt for j1 [1,2),
  // resume j0 [2,6). Flows: j1: 1, j0: 6. Total 7.
  const Instance instance = single_machine_instance({{0.0, 5.0}, {1.0, 1.0}});
  const auto srpt = lb_srpt_preemptive_single_machine(instance);
  ASSERT_TRUE(srpt.has_value());
  EXPECT_NEAR(*srpt, 7.0, 1e-9);
}

TEST(FlowLowerBounds, SrptOnlySingleMachine) {
  InstanceBuilder builder(2);
  builder.add_identical_job(0.0, 1.0);
  EXPECT_FALSE(lb_srpt_preemptive_single_machine(builder.build()).has_value());
}

TEST(FlowLowerBounds, ExactOptimalKnowsWaitingHelps) {
  // (r=0, p=10), (r=1, p=1): serving the long job first costs 10 + 10 = 20;
  // idling until 1 and serving the short one first costs 1 + 12 - 0 = ...
  // order (short, long): short [1,2) flow 1; long [2,12) flow 12; total 13.
  const Instance instance = single_machine_instance({{0.0, 10.0}, {1.0, 1.0}});
  const auto opt = exact_optimal_flow_single_machine(instance);
  ASSERT_TRUE(opt.has_value());
  EXPECT_NEAR(*opt, 13.0, 1e-9);
}

TEST(FlowLowerBounds, ExactOptimalDominatesRelaxations) {
  util::Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<Time, Work>> jobs;
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 5));
    Time t = 0.0;
    for (int k = 0; k < n; ++k) {
      t += rng.exponential(1.0);
      jobs.push_back({t, rng.uniform(0.2, 3.0)});
    }
    const Instance instance = single_machine_instance(jobs);
    const auto opt = exact_optimal_flow_single_machine(instance);
    ASSERT_TRUE(opt.has_value());
    const auto srpt = lb_srpt_preemptive_single_machine(instance);
    ASSERT_TRUE(srpt.has_value());
    EXPECT_GE(*opt, *srpt - 1e-9);
    EXPECT_GE(*opt, lb_sum_min_processing(instance) - 1e-9);
    // And any feasible schedule costs at least OPT.
    const Schedule greedy = run_greedy_spt(instance);
    EXPECT_GE(greedy.total_flow(instance), *opt - 1e-9);
  }
}

TEST(FlowLowerBounds, ExactUnrelatedMatchesSingleMachinePath) {
  const Instance instance = single_machine_instance({{0.0, 10.0}, {1.0, 1.0}});
  const auto unrelated = exact_optimal_flow_unrelated(instance);
  const auto single = exact_optimal_flow_single_machine(instance);
  ASSERT_TRUE(unrelated.has_value());
  ASSERT_TRUE(single.has_value());
  EXPECT_NEAR(*unrelated, *single, 1e-9);
}

TEST(FlowLowerBounds, ExactUnrelatedUsesBothMachines) {
  // Two jobs released together, each faster on a different machine.
  InstanceBuilder builder(2);
  builder.add_job(0.0, {1.0, 5.0});
  builder.add_job(0.0, {5.0, 1.0});
  const Instance instance = builder.build();
  const auto opt = exact_optimal_flow_unrelated(instance);
  ASSERT_TRUE(opt.has_value());
  EXPECT_NEAR(*opt, 2.0, 1e-9);  // each on its fast machine in parallel
}

TEST(FlowLowerBounds, ExactUnrelatedRespectsEligibility) {
  InstanceBuilder builder(2);
  builder.add_job(0.0, {kTimeInfinity, 2.0});
  builder.add_job(0.0, {kTimeInfinity, 3.0});
  const Instance instance = builder.build();
  const auto opt = exact_optimal_flow_unrelated(instance);
  ASSERT_TRUE(opt.has_value());
  // Both on machine 1: SPT order -> 2 + 5.
  EXPECT_NEAR(*opt, 7.0, 1e-9);
}

TEST(FlowLowerBounds, ExactUnrelatedBailsOutOnLargeSpaces) {
  InstanceBuilder builder(4);
  for (int k = 0; k < 12; ++k) builder.add_identical_job(0.0, 1.0);
  EXPECT_FALSE(
      exact_optimal_flow_unrelated(builder.build(), /*max_assignments=*/1000)
          .has_value());
}

// Theorem 1 against the TRUE optimum (not just the dual bound) on tiny
// instances — the strongest form of the competitive-ratio check.
TEST(FlowLowerBounds, Theorem1WithinBoundOfTrueOptimum) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 15; ++trial) {
    InstanceBuilder builder(2);
    const int n = 4 + static_cast<int>(rng.uniform_int(0, 3));
    Time t = 0.0;
    for (int k = 0; k < n; ++k) {
      t += rng.exponential(1.0);
      builder.add_job(t, {rng.uniform(0.3, 4.0), rng.uniform(0.3, 4.0)});
    }
    const Instance instance = builder.build();
    const auto opt = exact_optimal_flow_unrelated(instance);
    ASSERT_TRUE(opt.has_value());
    for (double eps : {0.25, 0.5}) {
      const auto result = run_rejection_flow(instance, {.epsilon = eps});
      const double alg = result.schedule.total_flow(instance);
      EXPECT_LE(alg, theorem1_ratio_bound(eps) * *opt + 1e-9)
          << "trial=" << trial << " eps=" << eps;
      // And the dual bound must not exceed the true optimum.
      EXPECT_LE(result.opt_lower_bound, *opt + 1e-9);
    }
  }
}

TEST(FlowLowerBounds, BestBoundTakesMax) {
  const Instance instance = single_machine_instance({{0.0, 5.0}, {1.0, 1.0}});
  const double best = best_flow_lower_bound(instance, /*dual_bound=*/100.0);
  EXPECT_DOUBLE_EQ(best, 100.0);
  const double no_dual = best_flow_lower_bound(instance, 0.0);
  EXPECT_NEAR(no_dual, 7.0, 1e-9);  // SRPT wins over sum-min (6)
}

}  // namespace
}  // namespace osched
