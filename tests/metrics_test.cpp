// Tests for the metrics module and the dual-accounting helper of Theorem 1.
#include <gtest/gtest.h>

#include "core/flow/dual_accounting.hpp"
#include "instance/builders.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ratio.hpp"

namespace osched {
namespace {

// ---------------------------------------------------------------- bounds

TEST(RatioBounds, Theorem1Formula) {
  // eps = 1 would give 2*4 = 8; eps = 0.5 gives 2*(3)^2 = 18.
  EXPECT_DOUBLE_EQ(theorem1_ratio_bound(0.5), 18.0);
  EXPECT_DOUBLE_EQ(theorem1_ratio_bound(0.25), 50.0);
  // Decreasing in eps.
  EXPECT_GT(theorem1_ratio_bound(0.1), theorem1_ratio_bound(0.2));
}

TEST(RatioBounds, Theorem1Budget) {
  EXPECT_DOUBLE_EQ(theorem1_rejection_budget(0.3), 0.6);
}

TEST(RatioBounds, Theorem2ClosedFormForLargeAlpha) {
  // alpha = 3, eps = 0.5: denominator = (1/3) ln2/(2+ln2);
  // numerator = 2 + 2*sqrt(3) + 1/9.
  const double eps = 0.5;
  const double numerator = 2.0 + 2.0 * std::sqrt(3.0) + 1.0 / 9.0;
  const double denominator =
      (1.0 / 3.0) * std::log(2.0) / (2.0 + std::log(2.0));
  EXPECT_NEAR(theorem2_ratio_bound(eps, 3.0), numerator / denominator, 1e-9);
}

TEST(RatioBounds, Theorem2EnvelopeForSmallAlpha) {
  // alpha = 2 falls back to the envelope (1 + 1/eps)^{alpha/(alpha-1)}.
  EXPECT_NEAR(theorem2_ratio_bound(0.5, 2.0), 9.0, 1e-9);  // 3^2
}

TEST(RatioBounds, Theorem3AlphaPowerAlpha) {
  EXPECT_DOUBLE_EQ(theorem3_ratio_bound(2.0), 4.0);
  EXPECT_DOUBLE_EQ(theorem3_ratio_bound(3.0), 27.0);
}

TEST(RatioEstimate, DividesCorrectly) {
  RatioEstimate estimate;
  estimate.algorithm_cost = 30.0;
  estimate.lower_bound = 10.0;
  EXPECT_DOUBLE_EQ(estimate.ratio(), 3.0);
}

// ---------------------------------------------------------------- evaluate

TEST(Evaluate, CountsAndFractions) {
  const Instance instance =
      single_machine_weighted_instance({{0.0, 2.0, 3.0}, {0.0, 2.0, 1.0}});
  Schedule schedule(2);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 2.0);
  schedule.mark_dispatched(1, 0);
  schedule.mark_rejected_pending(1, 1.0);

  const ObjectiveReport report = evaluate(schedule, instance);
  EXPECT_EQ(report.num_jobs, 2u);
  EXPECT_EQ(report.num_completed, 1u);
  EXPECT_EQ(report.num_rejected, 1u);
  EXPECT_DOUBLE_EQ(report.rejected_fraction, 0.5);
  EXPECT_DOUBLE_EQ(report.rejected_weight_fraction, 0.25);  // 1 of 4
  EXPECT_DOUBLE_EQ(report.total_flow, 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(report.completed_flow, 2.0);
  EXPECT_DOUBLE_EQ(report.total_weighted_flow, 3.0 * 2.0 + 1.0 * 1.0);
  EXPECT_DOUBLE_EQ(report.energy, 0.0);  // no power function given
}

TEST(Evaluate, EnergyWithPowerFunction) {
  const Instance instance = single_machine_instance({{0.0, 4.0}});
  Schedule schedule(1);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 2.0);
  schedule.mark_completed(0, 2.0);
  PolynomialPower power(3.0);
  const ObjectiveReport report = evaluate(schedule, instance, &power);
  EXPECT_NEAR(report.energy, 8.0 * 2.0, 1e-12);
  EXPECT_NEAR(report.flow_plus_energy(), 2.0 + 16.0, 1e-12);
}

TEST(Evaluate, ToStringMentionsKeyFields) {
  const Instance instance = single_machine_instance({{0.0, 1.0}});
  Schedule schedule(1);
  schedule.mark_dispatched(0, 0);
  schedule.mark_started(0, 0.0, 1.0);
  schedule.mark_completed(0, 1.0);
  const std::string text = to_string(evaluate(schedule, instance));
  EXPECT_NE(text.find("jobs=1"), std::string::npos);
  EXPECT_NE(text.find("flow="), std::string::npos);
}

// ---------------------------------------------------------------- dual acct

TEST(FlowDualAccounting, LambdaScaling) {
  FlowDualAccounting dual(2, 0.5);
  dual.set_lambda(0, 30.0);  // eps/(1+eps) = 1/3 -> 10
  dual.set_lambda(1, 15.0);  // -> 5
  EXPECT_NEAR(dual.sum_lambda(), 15.0, 1e-12);
}

TEST(FlowDualAccounting, ResidenceAndBeta) {
  FlowDualAccounting dual(2, 0.5);
  dual.finalize(0, /*release=*/0.0, /*end=*/10.0);
  dual.finalize(1, /*release=*/5.0, /*end=*/10.0);
  EXPECT_NEAR(dual.definitive_residence(), 15.0, 1e-12);
  EXPECT_NEAR(dual.beta_integral(), 0.5 / 2.25 * 15.0, 1e-12);
}

TEST(FlowDualAccounting, Rule1ExtendsEveryoneInU) {
  FlowDualAccounting dual(3, 0.5);
  // Rule 1 rejects job 0 with remaining 7; jobs 1, 2 pending.
  dual.on_rule1_rejection(0, 7.0, [](auto&& extend) {
    extend(1);
    extend(2);
  });
  dual.finalize(0, 0.0, 3.0);   // C~ = 10
  dual.finalize(1, 1.0, 5.0);   // C~ = 12
  dual.finalize(2, 2.0, 6.0);   // C~ = 13
  EXPECT_NEAR(dual.definitive_finish(0), 10.0, 1e-12);
  EXPECT_NEAR(dual.definitive_finish(1), 12.0, 1e-12);
  EXPECT_NEAR(dual.definitive_finish(2), 13.0, 1e-12);
}

TEST(FlowDualAccounting, Rule2ExtensionFormula) {
  FlowDualAccounting dual(1, 0.25);
  dual.on_rule2_rejection(0, /*remaining=*/4.0, /*pending_sum=*/6.0, /*p=*/9.0);
  dual.finalize(0, 0.0, 2.0);
  EXPECT_NEAR(dual.definitive_finish(0), 2.0 + 4.0 + 6.0 + 9.0, 1e-12);
}

TEST(FlowDualAccounting, OptLowerBoundNonNegative) {
  FlowDualAccounting dual(1, 0.5);
  // Pathological: big residence, no lambda -> negative dual, clamped at 0.
  dual.finalize(0, 0.0, 100.0);
  EXPECT_LT(dual.dual_objective(), 0.0);
  EXPECT_DOUBLE_EQ(dual.opt_lower_bound(), 0.0);
}

}  // namespace
}  // namespace osched
