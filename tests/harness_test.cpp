// Tests for the scenario harness: registry registration/lookup/rejection,
// deterministic parallel execution (--jobs invariance), report emission,
// and the registered smoke scenario's Theorem 1 rejection budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>

#include "harness/registry.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "metrics/ratio.hpp"
#include "util/rng.hpp"

namespace osched::harness {
namespace {

// A cheap synthetic scenario: metrics are a pure hash of the unit seed, so
// any scheduling nondeterminism shows up as a changed report.
Scenario synthetic_scenario(const std::string& name, std::size_t cases,
                            std::size_t repetitions) {
  Scenario scenario;
  scenario.name = name;
  scenario.description = "synthetic";
  scenario.tags = {"synthetic"};
  scenario.repetitions = repetitions;
  for (std::size_t c = 0; c < cases; ++c) {
    scenario.grid.push_back(CaseSpec("case-" + std::to_string(c))
                                .with("index", static_cast<double>(c)));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    util::Rng rng(ctx.seed);
    MetricRow row;
    row.set("value", rng.next_double());
    row.set("index_echo", ctx.param("index"));
    row.set("rep", static_cast<double>(ctx.repetition));
    return row;
  };
  return scenario;
}

// ---------------------------------------------------------------- CaseSpec

TEST(CaseSpec, ParamLookupAndFallback) {
  const CaseSpec spec = CaseSpec("x").with("eps", 0.25).with("m", 4.0);
  EXPECT_DOUBLE_EQ(spec.param("eps"), 0.25);
  EXPECT_DOUBLE_EQ(spec.param_or("m", 9.0), 4.0);
  EXPECT_DOUBLE_EQ(spec.param_or("absent", 9.0), 9.0);
  EXPECT_TRUE(spec.has_param("eps"));
  EXPECT_FALSE(spec.has_param("absent"));
}

TEST(UnitContext, ScaledShrinksWithFloorOne) {
  const CaseSpec spec("x");
  UnitContext ctx{spec, 1, 1, 0, 0, 0.25};
  EXPECT_EQ(ctx.scaled(1000), 250u);
  UnitContext tiny{spec, 1, 1, 0, 0, 1e-9};
  EXPECT_EQ(tiny.scaled(1000), 1u);
  UnitContext unit{spec, 1, 1, 0, 0, 1.0};
  EXPECT_EQ(unit.scaled(1000), 1000u);
}

// ---------------------------------------------------------------- MetricRow

TEST(MetricRow, SetGetOverwritePreservesOrder) {
  MetricRow row;
  row.set("b", 1.0);
  row.set("a", 2.0);
  row.set("b", 3.0);  // overwrite keeps position
  EXPECT_DOUBLE_EQ(row.get("b"), 3.0);
  EXPECT_TRUE(row.contains("a"));
  EXPECT_FALSE(row.contains("c"));
  ASSERT_EQ(row.entries().size(), 2u);
  EXPECT_EQ(row.entries()[0].first, "b");
  EXPECT_EQ(row.entries()[1].first, "a");
}

// ---------------------------------------------------------------- Registry

TEST(ScenarioRegistry, AddFindAndSortedListing) {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.add(synthetic_scenario("zeta", 1, 1)));
  EXPECT_TRUE(registry.add(synthetic_scenario("alpha", 1, 1)));
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.find("alpha"), nullptr);
  EXPECT_EQ(registry.find("alpha")->name, "alpha");
  EXPECT_EQ(registry.find("missing"), nullptr);
  const auto all = registry.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->name, "alpha");  // sorted, not registration order
  EXPECT_EQ(all[1]->name, "zeta");
}

TEST(ScenarioRegistry, RejectsDuplicateName) {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.add(synthetic_scenario("dup", 1, 1)));
  EXPECT_FALSE(registry.add(synthetic_scenario("dup", 3, 2)));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ScenarioRegistry, RejectsMalformedScenarios) {
  ScenarioRegistry registry;
  EXPECT_FALSE(registry.add(synthetic_scenario("", 1, 1)));  // empty name

  Scenario no_grid = synthetic_scenario("no-grid", 1, 1);
  no_grid.grid.clear();
  EXPECT_FALSE(registry.add(std::move(no_grid)));

  Scenario no_runner = synthetic_scenario("no-runner", 1, 1);
  no_runner.run_unit = nullptr;
  EXPECT_FALSE(registry.add(std::move(no_runner)));

  Scenario no_reps = synthetic_scenario("no-reps", 1, 1);
  no_reps.repetitions = 0;
  EXPECT_FALSE(registry.add(std::move(no_reps)));

  EXPECT_EQ(registry.size(), 0u);
}

TEST(ScenarioRegistry, FilterMatchesTagsAndNameSubstrings) {
  ScenarioRegistry registry;
  Scenario tagged = synthetic_scenario("e1_demo", 1, 1);
  tagged.tags = {"smoke", "flow"};
  ASSERT_TRUE(registry.add(std::move(tagged)));
  ASSERT_TRUE(registry.add(synthetic_scenario("e2_other", 1, 1)));

  EXPECT_EQ(registry.matching("").size(), 2u);          // empty = everything
  EXPECT_EQ(registry.matching("smoke").size(), 1u);     // tag, exact
  EXPECT_EQ(registry.matching("e2").size(), 1u);        // name substring
  EXPECT_EQ(registry.matching("smoke,e2").size(), 2u);  // comma = OR
  EXPECT_EQ(registry.matching("nothing").size(), 0u);
  // Tag matching is exact: a tag prefix is not a match (only names match by
  // substring).
  EXPECT_EQ(registry.matching("smo").size(), 0u);
}

TEST(ScenarioRegistry, GlobalHoldsAllPortedBenchScenarios) {
  auto& registry = ScenarioRegistry::global();
  EXPECT_GE(registry.size(), 16u);
  for (const char* name :
       {"e1_flow_ratio", "e8_throughput", "e15_robustness", "e16_hotpath",
        "smoke_rejection_budget"}) {
    ASSERT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_TRUE(registry.find("smoke_rejection_budget")->has_tag("smoke"));
}

TEST(ScenarioRegistry, SlowPerfTierStaysOutOfQuickSelections) {
  // The large-n perf scenarios are tagged "slow" and must not ride into the
  // smoke batches that CI and the default test tier run.
  auto& registry = ScenarioRegistry::global();
  const Scenario* hotpath = registry.find("e16_hotpath");
  ASSERT_NE(hotpath, nullptr);
  EXPECT_TRUE(hotpath->has_tag("slow"));
  EXPECT_TRUE(hotpath->has_tag("perf"));
  for (const Scenario* selected : registry.matching("smoke")) {
    EXPECT_FALSE(selected->has_tag("slow")) << selected->name;
  }
  for (const Scenario* selected : registry.matching("-slow")) {
    EXPECT_FALSE(selected->has_tag("slow")) << selected->name;
  }
}

TEST(ScenarioRegistry, FilterExclusionTokens) {
  ScenarioRegistry registry;
  Scenario slow = synthetic_scenario("big_sweep", 1, 1);
  slow.tags = {"perf", "slow"};
  ASSERT_TRUE(registry.add(std::move(slow)));
  Scenario quick = synthetic_scenario("quick_check", 1, 1);
  quick.tags = {"perf"};
  ASSERT_TRUE(registry.add(std::move(quick)));

  // Pure exclusion starts from everything.
  ASSERT_EQ(registry.matching("-slow").size(), 1u);
  EXPECT_EQ(registry.matching("-slow")[0]->name, "quick_check");
  // Positive + exclusion composes.
  ASSERT_EQ(registry.matching("perf,-slow").size(), 1u);
  EXPECT_EQ(registry.matching("perf,-slow")[0]->name, "quick_check");
  // Exclusion also matches name substrings.
  ASSERT_EQ(registry.matching("perf,-quick").size(), 1u);
  EXPECT_EQ(registry.matching("perf,-quick")[0]->name, "big_sweep");
  // Exclusion can empty the selection.
  EXPECT_TRUE(registry.matching("perf,-perf").empty());
}

// ---------------------------------------------------------------- Runner

TEST(Runner, ScenarioSeedStableAndNameDependent) {
  EXPECT_EQ(scenario_seed(1, "a"), scenario_seed(1, "a"));
  EXPECT_NE(scenario_seed(1, "a"), scenario_seed(1, "b"));
  EXPECT_NE(scenario_seed(1, "a"), scenario_seed(2, "a"));
}

TEST(Runner, AggregatesEveryUnitOnce) {
  const Scenario scenario = synthetic_scenario("agg", 3, 5);
  RunnerOptions options;
  options.jobs = 4;
  const ScenarioReport report = run_scenario(scenario, options);
  ASSERT_EQ(report.cases.size(), 3u);
  for (const CaseResult& c : report.cases) {
    EXPECT_EQ(c.metric("value").count(), 5u);
    // rep metric saw each repetition exactly once: mean of 0..4 is 2.
    EXPECT_DOUBLE_EQ(c.metric("rep").mean(), 2.0);
    EXPECT_DOUBLE_EQ(c.metric("index_echo").mean(), c.spec.param("index"));
  }
  EXPECT_TRUE(report.verdict.pass);  // no evaluate() = pass
}

TEST(Runner, RepeatAddsTimingSamplesWithoutChangingDeterministicValues) {
  // Multi-repetition scenario: --repeat multiplies the sample count and
  // reruns every unit with its SAME seed (min/max envelopes unchanged).
  const Scenario reps3 = synthetic_scenario("repeat3", 2, 3);
  RunnerOptions once;
  once.jobs = 2;
  once.seed = 11;
  RunnerOptions repeated = once;
  repeated.repeat = 4;

  const ScenarioReport single3 = run_scenario(reps3, once);
  const ScenarioReport multi3 = run_scenario(reps3, repeated);
  ASSERT_EQ(single3.cases.size(), multi3.cases.size());
  for (std::size_t c = 0; c < single3.cases.size(); ++c) {
    EXPECT_EQ(single3.cases[c].metric("value").count(), 3u);
    EXPECT_EQ(multi3.cases[c].metric("value").count(), 12u);
    EXPECT_EQ(multi3.cases[c].metric("value").min(),
              single3.cases[c].metric("value").min());
    EXPECT_EQ(multi3.cases[c].metric("value").max(),
              single3.cases[c].metric("value").max());
  }

  // Single-repetition scenario (the perf tiers' shape): every repeat
  // reruns the one unit, so a deterministic metric's mean/min/max are
  // bit-identical to the repeat=1 run and spread-free — exactly the
  // property that lets compare_bench.py diff reports recorded with
  // different --repeat values.
  const Scenario reps1 = synthetic_scenario("repeat1", 2, 1);
  const ScenarioReport single1 = run_scenario(reps1, once);
  const ScenarioReport multi1 = run_scenario(reps1, repeated);
  for (std::size_t c = 0; c < single1.cases.size(); ++c) {
    const CaseResult& one = single1.cases[c];
    const CaseResult& rep = multi1.cases[c];
    EXPECT_EQ(rep.metric("value").count(), 4u);
    EXPECT_EQ(rep.metric("value").mean(), one.metric("value").mean());
    EXPECT_EQ(rep.metric("value").min(), one.metric("value").min());
    EXPECT_EQ(rep.metric("value").max(), one.metric("value").max());
    EXPECT_EQ(rep.metric("value").stddev(), 0.0);
  }
}

TEST(Runner, ReportIdenticalForAnyJobCount) {
  const Scenario a = synthetic_scenario("jobs-a", 4, 6);
  const Scenario b = synthetic_scenario("jobs-b", 2, 3);
  RunnerOptions serial;
  serial.jobs = 1;
  serial.seed = 7;
  RunnerOptions parallel = serial;
  parallel.jobs = 8;

  const std::string json_serial =
      to_json(run_batch({&a, &b}, serial), {/*include_timing=*/false});
  const std::string json_parallel =
      to_json(run_batch({&a, &b}, parallel), {/*include_timing=*/false});
  EXPECT_EQ(json_serial, json_parallel);
}

TEST(Runner, ScenarioResultsIndependentOfSelection) {
  const Scenario a = synthetic_scenario("sel-a", 2, 2);
  const Scenario b = synthetic_scenario("sel-b", 2, 2);
  RunnerOptions options;
  options.jobs = 2;
  const BatchReport both = run_batch({&a, &b}, options);
  const BatchReport solo = run_batch({&b}, options);
  const CaseResult& in_both = both.scenario("sel-b").cases[0];
  const CaseResult& in_solo = solo.scenario("sel-b").cases[0];
  EXPECT_DOUBLE_EQ(in_both.metric("value").mean(),
                   in_solo.metric("value").mean());
}

TEST(Runner, RunParallelUnitsCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(500);
  run_parallel_units(hits.size(), 8,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  run_parallel_units(0, 2, [](std::size_t) { FAIL() << "must not be called"; });
}

// ---------------------------------------------------------------- Report

TEST(Report, JsonCarriesSchemaAndMetrics) {
  const Scenario scenario = synthetic_scenario("json-demo", 1, 2);
  const BatchReport batch = run_batch({&scenario}, {});
  const std::string json = to_json(batch);
  EXPECT_NE(json.find("\"schema\": \"osched.bench.report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"json-demo\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"case-0\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);

  const std::string bare = to_json(batch, {/*include_timing=*/false});
  EXPECT_EQ(bare.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(bare.find("compute_seconds"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndOneRowPerMetric) {
  const Scenario scenario = synthetic_scenario("csv-demo", 2, 1);
  const BatchReport batch = run_batch({&scenario}, {});
  std::ostringstream out;
  write_csv(batch, out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) ++count;
  // header + 2 cases x 3 metrics.
  EXPECT_EQ(count, 1u + 2u * 3u);
  EXPECT_EQ(out.str().rfind("scenario,case,metric,mean,stddev,min,max,count",
                            0),
            0u);
}

// ------------------------------------------------- registered smoke scenario

TEST(SmokeScenario, RespectsTheorem1RejectionBudget) {
  const Scenario* scenario =
      ScenarioRegistry::global().find("smoke_rejection_budget");
  ASSERT_NE(scenario, nullptr);
  RunnerOptions options;
  options.jobs = 2;
  options.scale = 0.5;
  const ScenarioReport report = run_scenario(*scenario, options);
  EXPECT_TRUE(report.verdict.pass) << report.verdict.note;
  for (const CaseResult& c : report.cases) {
    const double budget = theorem1_rejection_budget(c.spec.param("eps"));
    EXPECT_LE(c.metric("reject_fraction").max(), budget + 1e-12)
        << c.spec.label;
    EXPECT_GE(c.metric("feasible").min(), 1.0) << c.spec.label;
  }
}

TEST(SmokeScenario, DeterministicAcrossJobCounts) {
  const Scenario* scenario =
      ScenarioRegistry::global().find("smoke_rejection_budget");
  ASSERT_NE(scenario, nullptr);
  RunnerOptions serial;
  serial.jobs = 1;
  serial.scale = 0.25;
  RunnerOptions parallel = serial;
  parallel.jobs = 8;
  const std::string a =
      to_json(run_batch({scenario}, serial), {/*include_timing=*/false});
  const std::string b =
      to_json(run_batch({scenario}, parallel), {/*include_timing=*/false});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace osched::harness
