// Tests for the YDS optimal preemptive speed-scaling schedule — the
// repository's strongest certified energy lower bound on single machines.
//
// Checked against closed forms, hand-worked critical-interval peelings, the
// brute-force non-preemptive optimum (YDS must never exceed it: preemption
// is a relaxation), and the Theorem 3 greedy (same direction).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/yds_energy.hpp"
#include "core/energy_min/bruteforce.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "instance/builders.hpp"
#include "util/rng.hpp"

namespace osched {
namespace {

Instance deadline_instance(
    const std::vector<std::tuple<Time, Time, Work>>& jobs) {
  InstanceBuilder builder(1);
  for (const auto& [r, d, p] : jobs) {
    builder.add_job(r, {p}, 1.0, d);
  }
  return builder.build();
}

TEST(Yds, RejectsMultiMachineAndMissingDeadlines) {
  InstanceBuilder two_machines(2);
  two_machines.add_job(0.0, {1.0, 1.0}, 1.0, 2.0);
  EXPECT_FALSE(yds_optimal_energy(two_machines.build(), 2.0).has_value());

  InstanceBuilder no_deadline(1);
  no_deadline.add_job(0.0, {1.0});
  EXPECT_FALSE(yds_optimal_energy(no_deadline.build(), 2.0).has_value());
}

TEST(Yds, SingleJobRunsAtExactFitSpeed) {
  // One job, volume 6 in window [0, 3]: speed 2, energy 2^alpha * 3.
  const Instance instance = deadline_instance({{0.0, 3.0, 6.0}});
  const auto result = yds_optimal_energy(instance, 3.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->energy, std::pow(2.0, 3.0) * 3.0, 1e-9);
  ASSERT_EQ(result->rounds.size(), 1u);
  EXPECT_NEAR(result->rounds[0].speed, 2.0, 1e-12);
}

TEST(Yds, DisjointWindowsPeelIndependently) {
  // Two non-overlapping unit-speed jobs: energy 1^a*2 + 1^a*2.
  const Instance instance =
      deadline_instance({{0.0, 2.0, 2.0}, {5.0, 7.0, 2.0}});
  const auto result = yds_optimal_energy(instance, 2.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->energy, 4.0, 1e-9);
  EXPECT_EQ(result->rounds.size(), 2u);
}

TEST(Yds, NestedJobRaisesTheCriticalInterval) {
  // Job A: [0, 10], volume 5. Job B: [4, 6], volume 4.
  // Critical interval [4, 6] at intensity (4+?)/2: only B fits fully ->
  // g = 2. Peel B; timeline collapses by 2, A becomes [0, 8] volume 5,
  // g = 0.625. Energy (alpha=2): 4*2 + 0.625^2*8 = 8 + 3.125.
  const Instance instance =
      deadline_instance({{0.0, 10.0, 5.0}, {4.0, 6.0, 4.0}});
  const auto result = yds_optimal_energy(instance, 2.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->energy, 8.0 + 3.125, 1e-9);
  ASSERT_EQ(result->rounds.size(), 2u);
  // Speeds are non-increasing across rounds (a YDS invariant).
  EXPECT_GE(result->rounds[0].speed, result->rounds[1].speed - 1e-12);
  EXPECT_EQ(result->rounds[0].jobs.size(), 1u);
}

TEST(Yds, CongestedBatchSharesOneInterval) {
  // Three identical jobs in [0, 3], volume 2 each: one critical interval,
  // g = 2, energy 2^a * 3.
  const Instance instance = deadline_instance(
      {{0.0, 3.0, 2.0}, {0.0, 3.0, 2.0}, {0.0, 3.0, 2.0}});
  const auto result = yds_optimal_energy(instance, 2.5);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->energy, std::pow(2.0, 2.5) * 3.0, 1e-9);
  EXPECT_EQ(result->rounds.size(), 1u);
  EXPECT_EQ(result->rounds[0].jobs.size(), 3u);
}

TEST(Yds, SpeedsAreNonIncreasingAcrossRounds) {
  util::Rng rng(0x9D5);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<std::tuple<Time, Time, Work>> jobs;
    for (int j = 0; j < 8; ++j) {
      const Time r = rng.uniform(0.0, 10.0);
      const Time window = rng.uniform(1.0, 8.0);
      jobs.push_back({r, r + window, rng.uniform(0.5, 4.0)});
    }
    const auto result = yds_optimal_energy(deadline_instance(jobs), 2.0);
    ASSERT_TRUE(result.has_value());
    for (std::size_t k = 1; k < result->rounds.size(); ++k) {
      EXPECT_GE(result->rounds[k - 1].speed,
                result->rounds[k].speed - 1e-9)
          << "trial " << trial << " round " << k;
    }
  }
}

// YDS (preemptive, continuous speeds) can never exceed the non-preemptive
// optimum within any strategy grid — the certified-lower-bound direction.
TEST(Yds, LowerBoundsTheBruteForceNonPreemptiveOptimum) {
  util::Rng rng(0x9D51);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::tuple<Time, Time, Work>> jobs;
    for (int j = 0; j < 4; ++j) {
      const Time r = std::floor(rng.uniform(0.0, 4.0));
      const Time window = std::floor(rng.uniform(2.0, 6.0));
      jobs.push_back({r, r + window, std::floor(rng.uniform(1.0, 4.0))});
    }
    const Instance instance = deadline_instance(jobs);
    const double alpha = 2.0;

    const auto yds = yds_optimal_energy(instance, alpha);
    ASSERT_TRUE(yds.has_value());

    BruteForceOptions options;
    options.alpha = alpha;
    options.speeds = make_speed_grid(instance, 8);
    options.start_grid = 1.0;
    const auto opt = brute_force_energy(instance, options);
    ASSERT_TRUE(opt.has_value());
    EXPECT_LE(yds->energy, opt->optimal_energy + 1e-6) << "trial " << trial;
  }
}

TEST(Yds, LowerBoundsTheTheorem3Greedy) {
  util::Rng rng(0x9D52);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::tuple<Time, Time, Work>> jobs;
    for (int j = 0; j < 12; ++j) {
      const Time r = rng.uniform(0.0, 12.0);
      const Time window = rng.uniform(2.0, 9.0);
      jobs.push_back({r, r + window, rng.uniform(0.5, 5.0)});
    }
    const Instance instance = deadline_instance(jobs);
    const double alpha = 2.5;

    const auto yds = yds_optimal_energy(instance, alpha);
    ASSERT_TRUE(yds.has_value());

    ConfigPDOptions pd;
    pd.alpha = alpha;
    pd.speed_levels = 8;
    const auto greedy = run_config_primal_dual(instance, pd);
    EXPECT_LE(yds->energy, greedy.algorithm_energy + 1e-6)
        << "trial " << trial;
    // ... and the greedy stays within alpha^alpha of even this stronger
    // (continuous, preemptive) lower bound on these benign instances.
    EXPECT_LE(greedy.algorithm_energy,
              std::pow(alpha, alpha) * yds->energy * 2.0)
        << "trial " << trial;
  }
}

TEST(Yds, AddingAJobNeverDecreasesEnergy) {
  std::vector<std::tuple<Time, Time, Work>> jobs{
      {0.0, 4.0, 2.0}, {1.0, 6.0, 3.0}, {2.0, 5.0, 1.0}};
  const auto base = yds_optimal_energy(deadline_instance(jobs), 2.0);
  ASSERT_TRUE(base.has_value());
  jobs.push_back({3.0, 7.0, 2.0});
  const auto more = yds_optimal_energy(deadline_instance(jobs), 2.0);
  ASSERT_TRUE(more.has_value());
  EXPECT_GE(more->energy, base->energy - 1e-9);
}

}  // namespace
}  // namespace osched
