// Tests for workload generation: arrival processes, machine models, full
// generator, burst trap, trace IO round-trips, and both lemma adversaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/immediate_rejection.hpp"
#include "core/flow/rejection_flow.hpp"
#include "sim/validator.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"
#include "workload/lemma1_adversary.hpp"
#include "workload/lemma2_adversary.hpp"
#include "workload/trace_io.hpp"

namespace osched::workload {
namespace {

// ---------------------------------------------------------------- arrivals

TEST(Arrivals, PoissonMatchesRate) {
  util::Rng rng(5);
  ArrivalConfig config;
  config.kind = ArrivalKind::kPoisson;
  config.rate = 2.0;
  const auto times = generate_arrivals(rng, 20000, config);
  ASSERT_EQ(times.size(), 20000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  // Mean inter-arrival ~ 1/rate.
  EXPECT_NEAR(times.back() / 20000.0, 0.5, 0.02);
}

TEST(Arrivals, UniformSpacing) {
  util::Rng rng(5);
  ArrivalConfig config;
  config.kind = ArrivalKind::kUniform;
  config.rate = 4.0;
  const auto times = generate_arrivals(rng, 5, config);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[4], 1.0);
}

TEST(Arrivals, BatchAllAtZero) {
  util::Rng rng(5);
  ArrivalConfig config;
  config.kind = ArrivalKind::kBatch;
  const auto times = generate_arrivals(rng, 10, config);
  for (Time t : times) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Arrivals, BurstyKeepsLongRunRateAndClusters) {
  util::Rng rng(5);
  ArrivalConfig config;
  config.kind = ArrivalKind::kBursty;
  config.rate = 1.0;
  config.burst_factor = 10.0;
  config.burst_length = 25.0;
  const auto times = generate_arrivals(rng, 50000, config);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  // Long-run rate within 15% of nominal.
  EXPECT_NEAR(times.back() / 50000.0, 1.0, 0.15);
  // Clustering: the median inter-arrival is much smaller than the mean.
  util::Summary gaps;
  for (std::size_t i = 1; i < times.size(); ++i) gaps.add(times[i] - times[i - 1]);
  EXPECT_LT(gaps.median(), 0.5 * gaps.mean());
}

// ---------------------------------------------------------------- machine models

TEST(MachineModels, IdenticalRows) {
  util::Rng rng(7);
  MachineModelConfig config;
  config.model = MachineModel::kIdentical;
  const auto speeds = sample_machine_speeds(rng, 4, config);
  const auto row = expand_processing_row(rng, 3.0, speeds, config);
  for (Work p : row) EXPECT_DOUBLE_EQ(p, 3.0);
}

TEST(MachineModels, RelatedScalesBySpeed) {
  util::Rng rng(7);
  MachineModelConfig config;
  config.model = MachineModel::kRelated;
  config.speed_spread = 3.0;
  const auto speeds = sample_machine_speeds(rng, 8, config);
  const auto row = expand_processing_row(rng, 6.0, speeds, config);
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_NEAR(row[i], 6.0 / speeds[i], 1e-12);
    EXPECT_GE(speeds[i], 1.0);
    EXPECT_LE(speeds[i], 3.0);
  }
}

TEST(MachineModels, UnrelatedWithinSpread) {
  util::Rng rng(7);
  MachineModelConfig config;
  config.model = MachineModel::kUnrelated;
  config.speed_spread = 2.0;
  const auto speeds = sample_machine_speeds(rng, 4, config);
  for (int trial = 0; trial < 100; ++trial) {
    const auto row = expand_processing_row(rng, 1.0, speeds, config);
    for (Work p : row) {
      EXPECT_GE(p, 0.5 - 1e-9);
      EXPECT_LE(p, 2.0 + 1e-9);
    }
  }
}

TEST(MachineModels, RestrictedGuaranteesEligibility) {
  util::Rng rng(7);
  MachineModelConfig config;
  config.model = MachineModel::kRestricted;
  config.eligibility = 0.1;  // low: the guarantee path triggers often
  const auto speeds = sample_machine_speeds(rng, 5, config);
  for (int trial = 0; trial < 200; ++trial) {
    const auto row = expand_processing_row(rng, 2.0, speeds, config);
    EXPECT_TRUE(std::any_of(row.begin(), row.end(),
                            [](Work p) { return p < kTimeInfinity; }));
  }
}

// ---------------------------------------------------------------- generator

TEST(Generator, ProducesValidInstances) {
  for (auto dist :
       {SizeDistribution::kUniform, SizeDistribution::kExponential,
        SizeDistribution::kPareto, SizeDistribution::kBimodal,
        SizeDistribution::kLognormal}) {
    WorkloadConfig config;
    config.num_jobs = 200;
    config.num_machines = 3;
    config.sizes.dist = dist;
    config.seed = 11;
    const Instance instance = generate_workload(config);
    EXPECT_EQ(instance.num_jobs(), 200u) << to_string(dist);
    EXPECT_TRUE(instance.validate().empty()) << to_string(dist);
  }
}

TEST(Generator, SeedsReproduceExactly) {
  WorkloadConfig config;
  config.num_jobs = 50;
  config.seed = 33;
  const Instance a = generate_workload(config);
  const Instance b = generate_workload(config);
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  for (std::size_t j = 0; j < a.num_jobs(); ++j) {
    EXPECT_DOUBLE_EQ(a.job(static_cast<JobId>(j)).release,
                     b.job(static_cast<JobId>(j)).release);
    for (std::size_t i = 0; i < a.num_machines(); ++i) {
      EXPECT_DOUBLE_EQ(
          a.processing(static_cast<MachineId>(i), static_cast<JobId>(j)),
          b.processing(static_cast<MachineId>(i), static_cast<JobId>(j)));
    }
  }
}

TEST(Generator, DeadlinesRespectSlackRange) {
  WorkloadConfig config;
  config.num_jobs = 100;
  config.with_deadlines = true;
  config.slack_min = 2.0;
  config.slack_max = 3.0;
  config.seed = 44;
  const Instance instance = generate_workload(config);
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    const Job& job = instance.job(static_cast<JobId>(j));
    ASSERT_TRUE(job.has_deadline());
    const double slack = (job.deadline - job.release) /
                         instance.min_processing(static_cast<JobId>(j));
    EXPECT_GE(slack, 2.0 - 1e-9);
    EXPECT_LE(slack, 3.0 + 1e-9);
  }
}

TEST(Generator, WeightDistributions) {
  WorkloadConfig config;
  config.num_jobs = 100;
  config.seed = 9;
  config.weights = WeightDistribution::kUnit;
  Instance unit = generate_workload(config);
  for (const Job& job : unit.jobs()) EXPECT_DOUBLE_EQ(job.weight, 1.0);

  config.weights = WeightDistribution::kUniform;
  Instance uniform = generate_workload(config);
  bool varied = false;
  for (const Job& job : uniform.jobs()) {
    if (std::abs(job.weight - 1.0) > 0.01) varied = true;
    EXPECT_GE(job.weight, 0.5);
    EXPECT_LE(job.weight, 4.0);
  }
  EXPECT_TRUE(varied);
}

TEST(Generator, BurstTrapShape) {
  BurstTrapConfig config;
  config.num_rounds = 3;
  config.burst_jobs = 10;
  const Instance instance = generate_burst_trap(config);
  EXPECT_EQ(instance.num_jobs(), 3u * (1 + 10));
  EXPECT_TRUE(instance.validate().empty());
  // Spread = long/small sizes.
  EXPECT_NEAR(instance.processing_spread(),
              config.long_size / config.small_size, 1e-9);
}

// ---------------------------------------------------------------- trace IO

TEST(TraceIO, RoundTripsExactly) {
  WorkloadConfig config;
  config.num_jobs = 60;
  config.num_machines = 3;
  config.machines.model = MachineModel::kRestricted;  // exercises "inf"
  config.with_deadlines = true;
  config.seed = 55;
  const Instance original = generate_workload(config);

  const std::string text = instance_to_csv(original);
  std::string error;
  const auto loaded = instance_from_csv(text, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->num_jobs(), original.num_jobs());
  ASSERT_EQ(loaded->num_machines(), original.num_machines());
  for (std::size_t j = 0; j < original.num_jobs(); ++j) {
    const auto job_id = static_cast<JobId>(j);
    EXPECT_DOUBLE_EQ(loaded->job(job_id).release, original.job(job_id).release);
    EXPECT_DOUBLE_EQ(loaded->job(job_id).weight, original.job(job_id).weight);
    EXPECT_DOUBLE_EQ(loaded->job(job_id).deadline, original.job(job_id).deadline);
    for (std::size_t i = 0; i < original.num_machines(); ++i) {
      EXPECT_DOUBLE_EQ(loaded->processing(static_cast<MachineId>(i), job_id),
                       original.processing(static_cast<MachineId>(i), job_id));
    }
  }
}

TEST(TraceIO, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(instance_from_csv("not,a,trace\n1,2,3\n", &error).has_value());
  EXPECT_FALSE(instance_from_csv("", &error).has_value());
  EXPECT_FALSE(
      instance_from_csv("release,weight,deadline,p_0\nx,1,inf,1\n", &error)
          .has_value());
}

TEST(TraceIO, FileRoundTrip) {
  WorkloadConfig config;
  config.num_jobs = 10;
  config.seed = 3;
  const Instance original = generate_workload(config);
  const std::string path = ::testing::TempDir() + "/osched_trace_test.csv";
  ASSERT_TRUE(save_instance(original, path));
  std::string error;
  const auto loaded = load_instance(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_jobs(), original.num_jobs());
}

// ---------------------------------------------------------------- Lemma 1

TEST(Lemma1, FloodsPromptPolicyAndWitnessIsFeasible) {
  Lemma1Config config;
  config.eps = 0.25;
  config.L = 8.0;
  const PolicyRunner immediate = [](const Instance& instance) {
    return run_immediate_rejection(instance, {.eps = 0.25, .patience = 3.0})
        .schedule;
  };
  const auto outcome = run_lemma1_adversary(immediate, config);
  // The immediate policy starts a big job quickly => phase 2 triggered.
  EXPECT_FALSE(outcome.algorithm_waited);
  EXPECT_EQ(outcome.num_big, 4u);
  EXPECT_EQ(outcome.num_small, 65u);  // floor(L^2)+1
  EXPECT_NEAR(outcome.delta, 64.0, 1e-9);
  EXPECT_GT(outcome.adversary_flow, 0.0);
  // Witness already validated inside; double-check here.
  check_schedule(outcome.adversary_schedule, outcome.instance);
}

TEST(Lemma1, ImmediatePolicySuffersTheoremOneDoesNot) {
  Lemma1Config config;
  config.eps = 0.25;
  config.L = 16.0;

  const PolicyRunner immediate = [&](const Instance& instance) {
    return run_immediate_rejection(instance, {.eps = config.eps, .patience = 3.0})
        .schedule;
  };
  const auto outcome = run_lemma1_adversary(immediate, config);
  const Schedule policy_schedule = immediate(outcome.instance);
  const double policy_flow = policy_schedule.total_flow(outcome.instance);
  const double immediate_ratio = policy_flow / outcome.adversary_flow;

  // Theorem 1's algorithm (which may reject the RUNNING big job) on the
  // same instance.
  const auto t1 = run_rejection_flow(outcome.instance, {.epsilon = config.eps});
  const double t1_ratio =
      t1.schedule.total_flow(outcome.instance) / outcome.adversary_flow;

  // The immediate policy pays Omega(L) x the adversary; Theorem 1 stays far
  // lower on the same instance.
  EXPECT_GT(immediate_ratio, 3.0 * t1_ratio)
      << "immediate=" << immediate_ratio << " t1=" << t1_ratio;
}

TEST(Lemma1, RatioGrowsLikeSqrtDelta) {
  // Measured ratio should scale roughly linearly in L (= sqrt(Delta)).
  std::vector<double> Ls{8.0, 16.0, 32.0};
  std::vector<double> ratios;
  for (double L : Ls) {
    Lemma1Config config;
    config.eps = 0.25;
    config.L = L;
    const PolicyRunner immediate = [&](const Instance& instance) {
      return run_immediate_rejection(instance,
                                     {.eps = config.eps, .patience = 3.0})
          .schedule;
    };
    const auto outcome = run_lemma1_adversary(immediate, config);
    const Schedule sched = immediate(outcome.instance);
    ratios.push_back(sched.total_flow(outcome.instance) / outcome.adversary_flow);
  }
  // log-log slope of ratio vs sqrt(Delta)=L should be near 1 (within wide
  // tolerance: low-order terms at these sizes).
  const double slope = util::loglog_slope(Ls, ratios);
  EXPECT_GT(slope, 0.5) << "ratios " << ratios[0] << " " << ratios[1] << " "
                        << ratios[2];
  // And monotone growth.
  EXPECT_LT(ratios[0], ratios[1]);
  EXPECT_LT(ratios[1], ratios[2]);
}

// ---------------------------------------------------------------- Lemma 2

TEST(Lemma2, ReleasesNestedJobsAndComputesRatio) {
  Lemma2Config config;
  config.alpha = 3.0;
  config.speed_levels = 8;
  const auto outcome = run_lemma2_adversary(config);
  EXPECT_GE(outcome.jobs_released, 2u);
  EXPECT_LE(outcome.jobs_released, 3u);

  // Windows nest: each subsequent job lives inside its predecessor's span.
  for (std::size_t j = 1; j < outcome.jobs_released; ++j) {
    const Job& prev = outcome.instance.job(static_cast<JobId>(j - 1));
    const Job& cur = outcome.instance.job(static_cast<JobId>(j));
    EXPECT_GE(cur.release, prev.release);
    EXPECT_LE(cur.deadline, prev.deadline + 1e-9);
    // volume = window / 3.
    EXPECT_NEAR(outcome.instance.processing(0, static_cast<JobId>(j)),
                (cur.deadline - cur.release) / 3.0, 1e-9);
  }

  EXPECT_GT(outcome.algorithm_energy, 0.0);
  EXPECT_GT(outcome.witness_energy, 0.0);
  EXPECT_GE(outcome.ratio(), 1.0 - 1e-9);

  // The algorithm's schedule is feasible in the parallel-execution model.
  ValidationOptions vopts;
  vopts.allow_parallel_execution = true;
  vopts.require_deadlines = true;
  check_schedule(outcome.algorithm_schedule, outcome.instance, vopts);
}

// The construction punishes policies that concentrate speed: against the
// eager speed-1 policy (the paper's normalized fast policy) jobs stack and
// the certified ratio grows with alpha, the lemma's mechanism.
TEST(Lemma2, RatioGrowsWithAlphaAgainstEagerPolicy) {
  std::vector<double> alphas{2.0, 3.0, 4.0};
  std::vector<double> ratios;
  for (double alpha : alphas) {
    Lemma2Config config;
    config.alpha = alpha;
    config.policy = Lemma2Policy::kEagerSpeedOne;
    config.speed_levels = 8;
    const auto outcome = run_lemma2_adversary(config);
    ratios.push_back(outcome.ratio());
  }
  EXPECT_GT(ratios[0], 1.0);
  EXPECT_GE(ratios[1], ratios[0] * 0.9);
  EXPECT_GT(ratios[2], ratios[0]);
}

// Against the Theorem 3 greedy the same adversary gets essentially nothing
// at small alpha: stretching at the lowest feasible speed keeps the stacked
// profile flat, which is near-optimal on the few-job instances reachable
// here — consistent with the (alpha/9)^alpha bound being vacuous for
// alpha <= 9.
TEST(Lemma2, GreedyStaysNearOptimalAtSmallAlpha) {
  for (double alpha : {2.0, 3.0, 4.0}) {
    Lemma2Config config;
    config.alpha = alpha;
    config.policy = Lemma2Policy::kConfigPrimalDual;
    config.speed_levels = 8;
    const auto outcome = run_lemma2_adversary(config);
    EXPECT_GE(outcome.ratio(), 1.0 - 1e-9) << "alpha=" << alpha;
    EXPECT_LE(outcome.ratio(), 2.0) << "alpha=" << alpha;
  }
}

// Eager-policy schedules are feasible in the parallel-execution model and
// every released window nests inside its predecessor's execution.
TEST(Lemma2, EagerPolicyOutcomeIsFeasible) {
  Lemma2Config config;
  config.alpha = 4.0;
  config.policy = Lemma2Policy::kEagerSpeedOne;
  const auto outcome = run_lemma2_adversary(config);
  EXPECT_GE(outcome.jobs_released, 3u);
  ValidationOptions vopts;
  vopts.allow_parallel_execution = true;
  vopts.require_deadlines = true;
  check_schedule(outcome.algorithm_schedule, outcome.instance, vopts);
  for (std::size_t j = 1; j < outcome.jobs_released; ++j) {
    const Strategy& prev = outcome.commitments[j - 1];
    const Job& cur = outcome.instance.job(static_cast<JobId>(j));
    const Work prev_volume =
        outcome.instance.processing(0, static_cast<JobId>(j - 1));
    EXPECT_NEAR(cur.release, prev.start + 1.0, 1e-9);
    EXPECT_NEAR(cur.deadline, prev.start + prev.duration(prev_volume), 1e-9);
  }
}

}  // namespace
}  // namespace osched::workload
