// E18 — storage-backend memory scaling (registered scenario "e18_memory").
//
// The perf tier behind the pluggable processing-store refactor: the SAME
// closed-form workload (workload/generated_family.hpp) runs through the
// Theorem 1 scheduler under each storage backend, and the scenario verdict
// asserts the refactor's two contracts in-process:
//
//  1. Determinism: rejected / completed / total_flow are BIT-identical
//     between backends of the same workload — storage must be invisible to
//     scheduling.
//  2. Memory: the compact backends undercut the dense matrix by >= 4x in
//     measured store bytes (sparse at eligibility 1/16; generator at
//     m = 2048, whose store is the job records only).
//
// Memory is reported three ways: store_bytes (the instance's exact backend
// footprint — deterministic, diffed exactly by scripts/compare_bench.py),
// rss_delta_mib (current-RSS growth across the case: build + run + live
// instance, band-compared) and peak_rss_mib (process high-water mark —
// monotone, so the grid orders generator/sparse cases BEFORE their dense
// twins; run with --jobs 1 to keep per-case readings meaningful).
//
// Tags: "perf" + "slow" like e16/e17; CI's perf-smoke job runs it at
// --scale 0.05 with the compare gate (rss_* metrics take the --rss-tolerance
// band there).
#include <algorithm>
#include <string>

#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "util/timer.hpp"
#include "workload/generated_family.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#if defined(__linux__)
#include <unistd.h>

#include <cstdio>
#endif

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

/// Process peak RSS in MiB (0.0 where unsupported); monotone over the
/// process lifetime, hence compact-backends-first grid order.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

/// CURRENT resident set in MiB (0.0 where unsupported). Unlike the peak,
/// this moves down when memory is returned, so before/after deltas isolate
/// one case's footprint. malloc_trim first hands freed arena pages back so
/// the reading reflects live allocations, not allocator retention.
double current_rss_mib() {
#if defined(__linux__)
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0.0;
  long total = 0;
  long resident = 0;
  const int got = std::fscanf(statm, "%ld %ld", &total, &resident);
  std::fclose(statm);
  if (got != 2) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident) * static_cast<double>(page) /
         (1024.0 * 1024.0);
#else
  return 0.0;
#endif
}

MetricRow run_e18_unit(const UnitContext& ctx) {
  const auto backend = static_cast<StorageBackend>(
      static_cast<int>(ctx.param("backend")));
  workload::ClosedFormConfig config;
  config.num_jobs = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  config.num_machines = static_cast<std::size_t>(ctx.param("m"));
  config.eligibility = ctx.param_or("eligibility", 1.0);
  // SCENARIO seed, not the per-case unit seed: backend pairs must run the
  // SAME workload or the verdict's byte-equality would compare apples to
  // oranges (cells differ by (n, m, eligibility), which is in the config).
  config.seed = ctx.scenario_seed;

  const double rss_before = current_rss_mib();
  const Instance instance = workload::make_closed_form_instance(config, backend);

  util::Timer timer;
  const RejectionFlowResult result =
      run_rejection_flow(instance, {.epsilon = 0.25});
  const double seconds = timer.elapsed_seconds();
  // Sampled while the instance is still live: the delta is the case's
  // build + store + run working set.
  const double rss_after = current_rss_mib();

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(config.num_jobs) / seconds : 0.0);
  row.set("store_bytes", static_cast<double>(instance.store_bytes()));
  row.set("rss_delta_mib", std::max(0.0, rss_after - rss_before));
  row.set("peak_rss_mib", peak_rss_mib());
  // Deterministic outputs: identical across runs, binaries, --jobs values
  // AND storage backends for one (seed, scale) — the cross-backend equality
  // is asserted in the verdict below.
  row.set("rejected", static_cast<double>(result.schedule.num_rejected()));
  row.set("completed", static_cast<double>(result.schedule.num_completed()));
  row.set("total_flow", result.schedule.total_flow(instance));
  return row;
}

Scenario make_e18() {
  Scenario scenario;
  scenario.name = "e18_memory";
  scenario.description =
      "storage-backend memory scaling: dense vs sparse-CSR vs generator on "
      "one closed-form workload, byte-identical outputs asserted";
  scenario.tags = {"perf", "storage", "slow"};
  scenario.repetitions = 1;
  const struct {
    const char* label;
    StorageBackend backend;
    double n;
    double m;
    double eligibility;
  } cells[] = {
      // Compact backends FIRST (peak RSS is a process high-water mark).
      // The m=2048 sweep the dense backend cannot afford at full n:
      {"generator n=100000 m=2048", StorageBackend::kGenerator, 100000, 2048,
       1.0},
      // Backend-equality pairs (generator vs dense at reduced n; sparse vs
      // dense at eligibility 1/16):
      {"gendiff generator n=20000 m=2048", StorageBackend::kGenerator, 20000,
       2048, 1.0},
      {"sparse elig=1/16 n=100000 m=512", StorageBackend::kSparseCsr, 100000,
       512, 0.0625},
      {"gendiff dense n=20000 m=2048", StorageBackend::kDense, 20000, 2048,
       1.0},
      {"dense elig=1/16 n=100000 m=512", StorageBackend::kDense, 100000, 512,
       0.0625},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(
        CaseSpec(cell.label)
            .with("backend", static_cast<double>(cell.backend))
            .with("n", cell.n)
            .with("m", cell.m)
            .with("eligibility", cell.eligibility));
  }
  scenario.run_unit = run_e18_unit;
  scenario.evaluate = [](const ScenarioReport& report) {
    // Contract 1: byte-identical deterministic outputs per backend pair.
    const struct {
      const char* compact;
      const char* dense;
    } pairs[] = {
        {"gendiff generator n=20000 m=2048", "gendiff dense n=20000 m=2048"},
        {"sparse elig=1/16 n=100000 m=512", "dense elig=1/16 n=100000 m=512"},
    };
    for (const auto& pair : pairs) {
      const auto& compact = report.case_result(pair.compact);
      const auto& dense = report.case_result(pair.dense);
      for (const char* metric : {"rejected", "completed", "total_flow"}) {
        const double a = compact.metric(metric).mean();
        const double b = dense.metric(metric).mean();
        if (a != b) {
          return Verdict{false, std::string("backend mismatch on ") + metric +
                                    " (" + pair.compact + " vs " + pair.dense +
                                    "): " + std::to_string(a) + " vs " +
                                    std::to_string(b)};
        }
      }
      // Contract 2: the compact backend stores >= 4x less than the dense
      // matrix of the same workload (store_bytes is exact, not sampled).
      const double compact_bytes = compact.metric("store_bytes").mean();
      const double dense_bytes = dense.metric("store_bytes").mean();
      if (!(compact_bytes * 4.0 <= dense_bytes)) {
        return Verdict{false, std::string(pair.compact) +
                                  " stores " + std::to_string(compact_bytes) +
                                  " bytes, not >= 4x under dense's " +
                                  std::to_string(dense_bytes)};
      }
      // RSS cross-check, asserted only when the dense twin's measured
      // growth is big enough (>= 64 MiB) for allocator noise to wash out —
      // reduced-scale CI runs stay informational.
      const double compact_rss = compact.metric("rss_delta_mib").mean();
      const double dense_rss = dense.metric("rss_delta_mib").mean();
      if (dense_rss >= 64.0 && !(compact_rss * 4.0 <= dense_rss)) {
        return Verdict{false, std::string(pair.compact) + " RSS delta " +
                                  std::to_string(compact_rss) +
                                  " MiB, not >= 4x under dense's " +
                                  std::to_string(dense_rss) + " MiB"};
      }
    }
    return Verdict{true,
                   "backends byte-identical; sparse and generator stores >= "
                   "4x under dense"};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e18);

}  // namespace
