// E9 — ablation of the two rejection rules.
//
// Rule 1 (reject the RUNNING job when 1/eps arrivals pile up behind it)
// exists for the elephant-then-burst pattern; Rule 2 (reject the LARGEST
// pending job every 1+1/eps dispatches) simulates what speed augmentation
// buys on sustained overload. The ablation quantifies each rule's
// contribution on the workload shaped for it, plus a neutral Poisson mix.
#include <iostream>

#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "metrics/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("eps", "0.2", "rejection parameter");
  cli.flag("seed", "11", "workload seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  std::cout << "E9: rejection-rule ablation (eps=" << eps << ")\n";

  struct Workload {
    std::string name;
    Instance instance;
  };
  std::vector<Workload> workloads;
  {
    workload::BurstTrapConfig trap;
    trap.num_rounds = 6;
    trap.burst_jobs = 60;
    trap.seed = seed;
    workloads.push_back({"burst-trap (elephant+mice)",
                         workload::generate_burst_trap(trap)});
  }
  {
    workload::WorkloadConfig config;
    config.num_jobs = 1500;
    config.num_machines = 4;
    config.load = 1.5;  // sustained overload: Rule 2 territory
    config.sizes.dist = workload::SizeDistribution::kUniform;
    config.seed = seed;
    workloads.push_back({"sustained overload (load 1.5)",
                         workload::generate_workload(config)});
  }
  {
    workload::WorkloadConfig config;
    config.num_jobs = 1500;
    config.num_machines = 4;
    config.load = 0.9;
    config.sizes.dist = workload::SizeDistribution::kPareto;
    config.seed = seed + 1;
    workloads.push_back({"subcritical Pareto (load 0.9)",
                         workload::generate_workload(config)});
  }

  struct Variant {
    std::string name;
    bool rule1, rule2;
  };
  const std::vector<Variant> variants{{"both rules", true, true},
                                      {"rule 1 only", true, false},
                                      {"rule 2 only", false, true},
                                      {"no rejection", false, false}};

  bool shape_ok = true;
  for (const Workload& workload_case : workloads) {
    util::print_section(std::cout, workload_case.name);
    util::Table table({"variant", "total flow", "vs LB", "max flow",
                       "rule1 rej", "rule2 rej"});
    double lb = 0.0;
    std::vector<double> flows;
    for (const Variant& variant : variants) {
      RejectionFlowOptions options;
      options.epsilon = eps;
      options.enable_rule1 = variant.rule1;
      options.enable_rule2 = variant.rule2;
      const auto result = run_rejection_flow(workload_case.instance, options);
      if (variant.rule1 && variant.rule2) {
        lb = best_flow_lower_bound(workload_case.instance, result.opt_lower_bound);
      }
      const double flow = result.schedule.total_flow(workload_case.instance);
      flows.push_back(flow);
      table.row(variant.name, flow, lb > 0 ? flow / lb : 0.0,
                result.schedule.max_flow(workload_case.instance),
                static_cast<int>(result.rule1_rejections),
                static_cast<int>(result.rule2_rejections));
    }
    table.print(std::cout);
    // Both rules together must not lose to no-rejection on the adversarial
    // workloads (flows[0] vs flows[3]).
    if (flows[0] > flows[3] * 1.05) shape_ok = false;
  }

  std::cout << (shape_ok
                    ? "E9 PASS: the full rule set never loses to no-rejection\n"
                    : "E9 FAIL: rejection hurt on some workload\n");
  return shape_ok ? 0 : 1;
}
