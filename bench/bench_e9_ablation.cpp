// E9 — rejection-rule ablation (registered scenario "e9_rejection_rules").
//
// Rule 1 (reject the RUNNING job when 1/eps arrivals pile up behind it)
// exists for the elephant-then-burst pattern; Rule 2 (reject the LARGEST
// pending job every 1+1/eps dispatches) simulates what speed augmentation
// buys on sustained overload. The ablation quantifies each rule's
// contribution on the workload shaped for it, plus a neutral Poisson mix.
//
// All four variants of a (workload, repetition) pair see the SAME instance:
// the instance seed derives from the scenario seed and repetition only, so
// cases differ in nothing but the enabled rules.
#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kEps = 0.2;

enum class Load { kBurstTrap = 0, kOverload, kPareto };

const char* to_label(Load load) {
  switch (load) {
    case Load::kBurstTrap: return "burst-trap";
    case Load::kOverload: return "overload-1.5";
    case Load::kPareto: return "pareto-0.9";
  }
  return "?";
}

Instance make_instance(Load load, const UnitContext& ctx) {
  // Same seed for every rule variant of this (workload, repetition).
  const std::uint64_t seed = util::derive_seed(
      ctx.scenario_seed, 1000 + static_cast<std::uint64_t>(load) * 64 +
                             static_cast<std::uint64_t>(ctx.repetition));
  if (load == Load::kBurstTrap) {
    workload::BurstTrapConfig trap;
    trap.num_rounds = 6;
    trap.burst_jobs = ctx.scaled(60);
    trap.seed = seed;
    return workload::generate_burst_trap(trap);
  }
  workload::WorkloadConfig config;
  config.num_jobs = ctx.scaled(1500);
  config.num_machines = 4;
  config.seed = seed;
  if (load == Load::kOverload) {
    config.load = 1.5;  // sustained overload: Rule 2 territory
  } else {
    config.load = 0.9;
    config.sizes.dist = workload::SizeDistribution::kPareto;
  }
  return workload::generate_workload(config);
}

Scenario make_e9() {
  Scenario scenario;
  scenario.name = "e9_rejection_rules";
  scenario.description =
      "ablation of Rules 1/2: each rule's contribution on its workload";
  scenario.tags = {"flow", "ablation", "theorem1", "smoke"};
  scenario.repetitions = 3;
  const struct {
    const char* label;
    double rule1, rule2;
  } variants[] = {{"both rules", 1, 1},
                  {"rule 1 only", 1, 0},
                  {"rule 2 only", 0, 1},
                  {"no rejection", 0, 0}};
  for (const Load load : {Load::kBurstTrap, Load::kOverload, Load::kPareto}) {
    for (const auto& variant : variants) {
      scenario.grid.push_back(
          CaseSpec(std::string(to_label(load)) + " / " + variant.label)
              .with("workload", static_cast<double>(load))
              .with("rule1", variant.rule1)
              .with("rule2", variant.rule2));
    }
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    const auto load = static_cast<Load>(static_cast<int>(ctx.param("workload")));
    const Instance instance = make_instance(load, ctx);

    RejectionFlowOptions options;
    options.epsilon = kEps;
    options.enable_rule1 = ctx.param("rule1") > 0.5;
    options.enable_rule2 = ctx.param("rule2") > 0.5;
    const auto result = run_rejection_flow(instance, options);

    MetricRow row;
    row.set("flow", result.schedule.total_flow(instance));
    row.set("max_flow", result.schedule.max_flow(instance));
    row.set("rule1_rej", static_cast<double>(result.rule1_rejections));
    row.set("rule2_rej", static_cast<double>(result.rule2_rejections));
    if (options.enable_rule1 && options.enable_rule2) {
      const double lb = best_flow_lower_bound(instance, result.opt_lower_bound);
      if (lb > 0.0) row.set("ratio_vs_lb", result.schedule.total_flow(instance) / lb);
    }
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    // Both rules together must not lose to no-rejection on any workload.
    Verdict verdict;
    for (const Load load :
         {Load::kBurstTrap, Load::kOverload, Load::kPareto}) {
      const std::string base = to_label(load);
      const double both =
          report.case_result(base + " / both rules").metric("flow").mean();
      const double none =
          report.case_result(base + " / no rejection").metric("flow").mean();
      if (both > none * 1.05) {
        verdict.pass = false;
        verdict.note = "rejection hurt on " + base;
        return verdict;
      }
    }
    verdict.note = "the full rule set never loses to no-rejection";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e9);

}  // namespace
