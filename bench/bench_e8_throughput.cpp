// E8 — scheduler throughput microbenchmarks (google-benchmark).
//
// The theory paper makes no performance claims; this experiment documents
// that the reference implementations scale to realistic workloads: the
// Theorem 1 scheduler's per-arrival cost is O(m log n) thanks to the
// weight-augmented treap, Theorem 2's is O(m * queue), Theorem 3's is
// O(strategies). Counters report jobs/second.
#include <benchmark/benchmark.h>

#include "baselines/list_scheduler.hpp"
#include "core/energy_flow/energy_flow.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "lp/flow_time_lp.hpp"
#include "util/augmented_treap.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;

Instance flow_workload(std::size_t jobs, std::size_t machines,
                       std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = machines;
  config.load = 1.1;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.machines.model = workload::MachineModel::kUnrelated;
  config.seed = seed;
  return workload::generate_workload(config);
}

void BM_RejectionFlow(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  const Instance instance = flow_workload(jobs, machines, 88);
  for (auto _ : state) {
    auto result = run_rejection_flow(instance, {.epsilon = 0.25});
    benchmark::DoNotOptimize(result.schedule.num_rejected());
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RejectionFlow)
    ->Args({1000, 1})
    ->Args({1000, 8})
    ->Args({10000, 8})
    ->Args({100000, 8})
    ->Args({100000, 64})
    ->Unit(benchmark::kMillisecond);

void BM_GreedySptBaseline(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const Instance instance = flow_workload(jobs, 8, 89);
  for (auto _ : state) {
    auto schedule = run_greedy_spt(instance);
    benchmark::DoNotOptimize(schedule.num_completed());
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GreedySptBaseline)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_EnergyFlow(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = 4;
  config.load = 1.0;
  config.weights = workload::WeightDistribution::kUniform;
  config.seed = 90;
  const Instance instance = workload::generate_workload(config);
  EnergyFlowOptions options;
  options.epsilon = 0.4;
  options.alpha = 2.0;
  for (auto _ : state) {
    auto result = run_energy_flow(instance, options);
    benchmark::DoNotOptimize(result.rejections);
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EnergyFlow)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_ConfigPrimalDual(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = 2;
  config.with_deadlines = true;
  config.seed = 91;
  const Instance instance = workload::generate_workload(config);
  ConfigPDOptions options;
  options.alpha = 2.0;
  options.speed_levels = 6;
  for (auto _ : state) {
    auto result = run_config_primal_dual(instance, options);
    benchmark::DoNotOptimize(result.algorithm_energy);
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConfigPrimalDual)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

// The data structure behind Theorem 1's O(log n) dispatch queries.
struct TreapKey {
  double p;
  int id;
  bool operator<(const TreapKey& other) const {
    if (p != other.p) return p < other.p;
    return id < other.id;
  }
};
struct TreapWeight {
  double operator()(const TreapKey& k) const { return k.p; }
};

void BM_TreapInsertQueryErase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(92);
  std::vector<TreapKey> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = TreapKey{rng.uniform(0.0, 1000.0), static_cast<int>(i)};
  }
  for (auto _ : state) {
    util::AugmentedTreap<TreapKey, TreapWeight> treap;
    double acc = 0.0;
    for (const TreapKey& key : keys) {
      treap.insert(key);
      acc += treap.stats_less(key).weight;
    }
    for (const TreapKey& key : keys) treap.erase(key);
    benchmark::DoNotOptimize(acc);
  }
  state.counters["ops/s"] = benchmark::Counter(
      3.0 * static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreapInsertQueryErase)->Arg(1000)->Arg(100000)->Unit(benchmark::kMillisecond);

// The weighted extension (std::set pending queues, O(n) lambda scans —
// documented as clarity-over-speed; this tracks the actual cost).
void BM_WeightedRejectionFlow(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = 8;
  config.load = 1.2;
  config.weights = workload::WeightDistribution::kUniform;
  config.seed = 31;
  const Instance instance = workload::generate_workload(config);
  for (auto _ : state) {
    auto result = run_weighted_rejection_flow(instance, {.epsilon = 0.2});
    benchmark::DoNotOptimize(result.rejected_weight);
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WeightedRejectionFlow)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// The simplex on the time-indexed flow LP: cost of a certificate.
void BM_FlowTimeLp(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = 2;
  config.load = 1.1;
  config.seed = 13;
  const Instance instance = workload::generate_workload(config);
  for (auto _ : state) {
    auto result = lp::solve_flow_time_lp(instance, {.target_intervals = 48});
    benchmark::DoNotOptimize(result.lp_objective);
  }
  state.counters["cols"] = static_cast<double>(
      lp::solve_flow_time_lp(instance, {.target_intervals = 48}).num_columns);
}
BENCHMARK(BM_FlowTimeLp)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
