// E8 — scheduler throughput (registered scenario "e8_throughput").
//
// The theory paper makes no performance claims; this scenario documents
// that the reference implementations scale to realistic workloads: the
// Theorem 1 scheduler's per-arrival cost is O(m log n) thanks to the
// weight-augmented treap, Theorem 2's is O(m * queue), Theorem 3's is
// O(strategies). Metrics report jobs/second (ops/second for the treap).
//
// Formerly a google-benchmark binary; now plain util::Timer units so the
// numbers land in the same JSON trajectory as every other scenario. The
// verdict is informational (always pass): wall-clock assertions in CI are
// flakiness generators. Because the metrics ARE wall-clock measurements,
// this is the one scenario whose report is not run-to-run deterministic —
// keep the "perf" tag out of determinism diffs (see harness/report.hpp).
#include "baselines/list_scheduler.hpp"
#include "core/energy_flow/energy_flow.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "harness/registry.hpp"
#include "lp/flow_time_lp.hpp"
#include "util/augmented_treap.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

enum class Kind {
  kRejectionFlow = 0,
  kGreedySpt,
  kEnergyFlow,
  kConfigPrimalDual,
  kTreap,
  kWeightedFlow,
  kFlowLp,
};

Instance flow_workload(std::size_t jobs, std::size_t machines,
                       std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = machines;
  config.load = 1.1;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.machines.model = workload::MachineModel::kUnrelated;
  config.seed = seed;
  return workload::generate_workload(config);
}

// The data structure behind Theorem 1's O(log n) dispatch queries.
struct TreapKey {
  double p;
  int id;
  bool operator<(const TreapKey& other) const {
    if (p != other.p) return p < other.p;
    return id < other.id;
  }
};
struct TreapWeight {
  double operator()(const TreapKey& k) const { return k.p; }
};

MetricRow run_throughput_unit(const UnitContext& ctx) {
  const auto kind = static_cast<Kind>(static_cast<int>(ctx.param("kind")));
  const auto n = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  const auto machines =
      static_cast<std::size_t>(ctx.param_or("machines", 8.0));

  MetricRow row;
  double seconds = 0.0;
  double work_items = static_cast<double>(n);

  switch (kind) {
    case Kind::kRejectionFlow: {
      const Instance instance = flow_workload(n, machines, ctx.seed);
      util::Timer timer;
      const auto result = run_rejection_flow(instance, {.epsilon = 0.25});
      seconds = timer.elapsed_seconds();
      row.set("rejected", static_cast<double>(result.schedule.num_rejected()));
      break;
    }
    case Kind::kGreedySpt: {
      const Instance instance = flow_workload(n, machines, ctx.seed);
      util::Timer timer;
      const Schedule schedule = run_greedy_spt(instance);
      seconds = timer.elapsed_seconds();
      row.set("completed", static_cast<double>(schedule.num_completed()));
      break;
    }
    case Kind::kEnergyFlow: {
      workload::WorkloadConfig config;
      config.num_jobs = n;
      config.num_machines = 4;
      config.load = 1.0;
      config.weights = workload::WeightDistribution::kUniform;
      config.seed = ctx.seed;
      const Instance instance = workload::generate_workload(config);
      EnergyFlowOptions options;
      options.epsilon = 0.4;
      options.alpha = 2.0;
      util::Timer timer;
      const auto result = run_energy_flow(instance, options);
      seconds = timer.elapsed_seconds();
      row.set("rejected", static_cast<double>(result.rejections));
      break;
    }
    case Kind::kConfigPrimalDual: {
      workload::WorkloadConfig config;
      config.num_jobs = n;
      config.num_machines = 2;
      config.with_deadlines = true;
      config.seed = ctx.seed;
      const Instance instance = workload::generate_workload(config);
      ConfigPDOptions options;
      options.alpha = 2.0;
      options.speed_levels = 6;
      util::Timer timer;
      const auto result = run_config_primal_dual(instance, options);
      seconds = timer.elapsed_seconds();
      row.set("energy", result.algorithm_energy);
      break;
    }
    case Kind::kTreap: {
      util::Rng rng(ctx.seed);
      std::vector<TreapKey> keys(n);
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = TreapKey{rng.uniform(0.0, 1000.0), static_cast<int>(i)};
      }
      util::Timer timer;
      util::AugmentedTreap<TreapKey, TreapWeight> treap;
      double acc = 0.0;
      for (const TreapKey& key : keys) {
        treap.insert(key);
        acc += treap.stats_less(key).weight;
      }
      for (const TreapKey& key : keys) treap.erase(key);
      seconds = timer.elapsed_seconds();
      work_items = 3.0 * static_cast<double>(n);  // insert + query + erase
      row.set("acc", acc);
      break;
    }
    case Kind::kWeightedFlow: {
      // std::set pending queues, O(n) lambda scans — documented as
      // clarity-over-speed; this tracks the actual cost.
      workload::WorkloadConfig config;
      config.num_jobs = n;
      config.num_machines = 8;
      config.load = 1.2;
      config.weights = workload::WeightDistribution::kUniform;
      config.seed = ctx.seed;
      const Instance instance = workload::generate_workload(config);
      util::Timer timer;
      const auto result = run_weighted_rejection_flow(instance, {.epsilon = 0.2});
      seconds = timer.elapsed_seconds();
      row.set("rejected_weight", result.rejected_weight);
      break;
    }
    case Kind::kFlowLp: {
      // The simplex on the time-indexed flow LP: cost of a certificate.
      workload::WorkloadConfig config;
      config.num_jobs = n;
      config.num_machines = 2;
      config.load = 1.1;
      config.seed = ctx.seed;
      const Instance instance = workload::generate_workload(config);
      util::Timer timer;
      const auto result =
          lp::solve_flow_time_lp(instance, {.target_intervals = 48});
      seconds = timer.elapsed_seconds();
      row.set("lp_columns", static_cast<double>(result.num_columns));
      break;
    }
  }

  row.set("seconds", seconds);
  row.set("items_per_sec", seconds > 0.0 ? work_items / seconds : 0.0);
  return row;
}

Scenario make_e8() {
  Scenario scenario;
  scenario.name = "e8_throughput";
  scenario.description =
      "throughput microbenchmarks: jobs/s per scheduler, ops/s for the treap";
  scenario.tags = {"perf", "throughput"};
  scenario.repetitions = 3;
  const struct {
    const char* label;
    Kind kind;
    double n;
    double machines;
  } cells[] = {
      {"rejection_flow n=1000 m=1", Kind::kRejectionFlow, 1000, 1},
      {"rejection_flow n=1000 m=8", Kind::kRejectionFlow, 1000, 8},
      {"rejection_flow n=10000 m=8", Kind::kRejectionFlow, 10000, 8},
      {"rejection_flow n=100000 m=8", Kind::kRejectionFlow, 100000, 8},
      {"rejection_flow n=100000 m=64", Kind::kRejectionFlow, 100000, 64},
      {"greedy_spt n=10000", Kind::kGreedySpt, 10000, 8},
      {"greedy_spt n=100000", Kind::kGreedySpt, 100000, 8},
      {"energy_flow n=1000", Kind::kEnergyFlow, 1000, 4},
      {"energy_flow n=10000", Kind::kEnergyFlow, 10000, 4},
      {"config_primal_dual n=100", Kind::kConfigPrimalDual, 100, 2},
      {"config_primal_dual n=500", Kind::kConfigPrimalDual, 500, 2},
      {"treap n=100000", Kind::kTreap, 100000, 0},
      {"weighted_flow n=1000", Kind::kWeightedFlow, 1000, 8},
      {"weighted_flow n=10000", Kind::kWeightedFlow, 10000, 8},
      {"flow_lp n=10", Kind::kFlowLp, 10, 2},
      {"flow_lp n=20", Kind::kFlowLp, 20, 2},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(CaseSpec(cell.label)
                                .with("kind", static_cast<double>(cell.kind))
                                .with("n", cell.n)
                                .with("machines", cell.machines));
  }
  scenario.run_unit = run_throughput_unit;
  scenario.evaluate = [](const ScenarioReport&) {
    return Verdict{true, "informational: timings tracked, not asserted"};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e8);

}  // namespace
