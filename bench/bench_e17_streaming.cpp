// E17 — streaming sessions at scale (registered scenario "e17_streaming").
//
// The perf tier behind the service/ subsystem: Theorem 1 as a long-lived
// SchedulerSession fed n = 10^6 jobs in 64k-job chunks, in low-memory mode
// (records, job rows and per-job dual state are folded and released as the
// decided frontier advances), against the batch api::run() twin of the SAME
// workload. Reported per case: jobs/sec, peak RSS, and the deterministic
// outputs (rejected/completed/total_flow, max live jobs) that
// scripts/compare_bench.py diffs exactly across runs and binaries.
//
// The scenario's verdict asserts the acceptance property in-process: the
// streamed session's totals are BIT-identical to the batch run's. The
// memory property shows up in the metrics: the streamed case's peak RSS is
// bounded by the live-job window (max_live_jobs), not the trace length —
// run with --jobs 1 and keep the grid order (streaming cases first; peak
// RSS is a process-wide high-water mark, so a batch case run earlier would
// mask the streaming cases' footprint).
//
// Tags: "perf" + "slow", like e16; CI's stream-fuzz-smoke job runs it at
// --scale 0.05 with the perf-smoke compare.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>

#include "api/scheduler_api.hpp"
#include "harness/registry.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr std::size_t kMachines = 16;
constexpr std::size_t kChunk = 65536;
constexpr double kEpsilon = 0.25;

enum class Mode {
  kStream = 0,   ///< one low-memory session, chunked feed
  kSharded,      ///< ShardDriver: 8 tenant sessions over the thread pool
  kTraceFed,     ///< CSV written chunk-wise, then parse-and-feed streamed
  kBatch,        ///< api::run on the materialized twin of kStream's workload
};

/// Process peak RSS in MiB (0.0 where unsupported); monotone over the
/// process lifetime, hence the streaming-first grid order.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

/// One 64k-job slice of the endless dense stream: heavy-tailed sizes at
/// load 1.1 (the e16 dense family), seeded per (root, chunk) so any prefix
/// of the stream is reproducible without generating the rest.
Instance stream_chunk(std::uint64_t root, std::uint64_t chunk, std::size_t n) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = kMachines;
  config.seed = util::derive_seed(root, chunk);
  config.load = 1.1;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.machines.model = workload::MachineModel::kUnrelated;
  return workload::generate_workload(config);
}

// Conversion is the shared make_stream_job/fill_stream_job from
// instance/stream_job.hpp; the release_base offset splices independently
// generated chunks onto one monotone timeline.

service::SessionOptions low_memory_options() {
  service::SessionOptions options;
  options.run.epsilon = kEpsilon;
  options.run.validate = false;
  options.retain_records = false;
  return options;
}

MetricRow run_stream_case(const UnitContext& ctx, std::size_t n) {
  service::SchedulerSession session(api::Algorithm::kTheorem1, kMachines,
                                    low_memory_options());
  double feed_seconds = 0.0;
  Time release_base = 0.0;
  std::size_t produced = 0;
  // Bounded sub-batches over one reused buffer: the chunk feeds through the
  // batch submit (amortized validation/bookkeeping) without materializing
  // 64k StreamJobs at once — the buffer stays ~1 MiB, so the case's peak
  // RSS keeps reflecting the session's live window, which is the metric
  // this scenario exists to showcase.
  constexpr std::size_t kSubBatch = 4096;
  std::vector<StreamJob> batch(kSubBatch);
  for (std::uint64_t c = 0; produced < n; ++c) {
    const std::size_t take = std::min(kChunk, n - produced);
    const Instance chunk = stream_chunk(ctx.scenario_seed, c, take);
    util::Timer timer;
    for (std::size_t at = 0; at < take; at += kSubBatch) {
      const std::size_t span = std::min(kSubBatch, take - at);
      for (std::size_t k = 0; k < span; ++k) {
        fill_stream_job(chunk, static_cast<JobId>(at + k), release_base,
                        &batch[k]);
      }
      session.submit(std::span<const StreamJob>(batch.data(), span));
    }
    session.advance(session.now());
    feed_seconds += timer.elapsed_seconds();
    release_base += chunk.job(static_cast<JobId>(chunk.num_jobs() - 1)).release;
    produced += take;
  }
  const std::size_t max_live = session.max_live_jobs();
  util::Timer drain_timer;
  const api::RunSummary summary = session.drain();
  feed_seconds += drain_timer.elapsed_seconds();

  MetricRow row;
  row.set("seconds", feed_seconds);
  row.set("jobs_per_sec",
          feed_seconds > 0.0 ? static_cast<double>(n) / feed_seconds : 0.0);
  row.set("peak_rss_mib", peak_rss_mib());
  row.set("max_live_jobs", static_cast<double>(max_live));
  row.set("rejected", static_cast<double>(summary.report.num_rejected));
  row.set("completed", static_cast<double>(summary.report.num_completed));
  row.set("total_flow", summary.report.total_flow);
  return row;
}

MetricRow run_sharded_case(const UnitContext& ctx, std::size_t n) {
  constexpr std::size_t kShards = 8;
  // Tenant-chunk waves: each round delivers one kChunk-sized chunk per
  // tenant (the same chunk size the single-session case streams), staging
  // and flushing per tenant so workers overlap with the feed of the next
  // tenant, with one sync per round. Round-robin across tenants at chunk
  // granularity is the multiplexed analogue of run_stream_case's loop.
  service::ShardDriverOptions options;
  options.session = low_memory_options();
  service::ShardDriver driver(api::Algorithm::kTheorem1, kShards, kMachines,
                              options);
  const std::size_t per_shard = n / kShards;
  std::vector<Time> release_base(kShards, 0.0);
  std::size_t produced = 0;  // per shard; all shards advance in lockstep
  double feed_seconds = 0.0;
  StreamJob job;  // reused: the feed loop pays no per-job allocation
  for (std::uint64_t c = 0; produced < per_shard; ++c) {
    const std::size_t take = std::min(kChunk, per_shard - produced);
    for (std::size_t s = 0; s < kShards; ++s) {
      const Instance chunk =
          stream_chunk(util::derive_seed(ctx.scenario_seed, 1000 + s), c, take);
      util::Timer timer;
      for (std::size_t idx = 0; idx < chunk.num_jobs(); ++idx) {
        fill_stream_job(chunk, static_cast<JobId>(idx), release_base[s], &job);
        driver.submit(s, job);
      }
      driver.flush();
      feed_seconds += timer.elapsed_seconds();
      release_base[s] +=
          chunk.job(static_cast<JobId>(chunk.num_jobs() - 1)).release;
    }
    util::Timer sync_timer;
    driver.sync();
    feed_seconds += sync_timer.elapsed_seconds();
    produced += take;
  }
  std::size_t max_live = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    max_live += driver.session(s).max_live_jobs();
  }
  util::Timer drain_timer;
  const std::vector<api::RunSummary> summaries = driver.drain_all();
  feed_seconds += drain_timer.elapsed_seconds();

  std::size_t rejected = 0;
  std::size_t completed = 0;
  double total_flow = 0.0;
  for (const api::RunSummary& summary : summaries) {
    rejected += summary.report.num_rejected;
    completed += summary.report.num_completed;
    total_flow += summary.report.total_flow;
  }
  const auto total_jobs = static_cast<double>(per_shard * kShards);
  // Shard-scaling efficiency inputs: `workers` is the resolved worker
  // count (hardware-shaped — scripts/compare_bench.py treats it as a
  // wall-clock-class metric), per-worker jobs/s is the number
  // compare_bench.py divides by the single-session case's throughput.
  const auto workers =
      static_cast<double>(std::max<std::size_t>(1, driver.worker_count()));
  MetricRow row;
  row.set("seconds", feed_seconds);
  row.set("jobs_per_sec", feed_seconds > 0.0 ? total_jobs / feed_seconds : 0.0);
  row.set("per_worker_jobs_per_sec",
          feed_seconds > 0.0 ? total_jobs / feed_seconds / workers : 0.0);
  row.set("workers", workers);
  row.set("peak_rss_mib", peak_rss_mib());
  row.set("max_live_jobs", static_cast<double>(max_live));
  row.set("rejected", static_cast<double>(rejected));
  row.set("completed", static_cast<double>(completed));
  row.set("total_flow", total_flow);
  return row;
}

MetricRow run_trace_fed_case(const UnitContext& ctx, std::size_t n) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() /
      ("osched_e17_trace_" + std::to_string(ctx.seed) + ".csv");

  // Write the trace chunk by chunk — at no point is the full instance or
  // the full CSV in memory.
  {
    std::ofstream out(path);
    OSCHED_CHECK(static_cast<bool>(out)) << "cannot write " << path.string();
    workload::TraceStreamWriter writer(out, kMachines);
    Time release_base = 0.0;
    std::size_t produced = 0;
    for (std::uint64_t c = 0; produced < n; ++c) {
      const std::size_t take = std::min(kChunk, n - produced);
      const Instance chunk = stream_chunk(
          util::derive_seed(ctx.scenario_seed, 777), c, take);
      for (std::size_t idx = 0; idx < chunk.num_jobs(); ++idx) {
        writer.write_job(
            make_stream_job(chunk, static_cast<JobId>(idx), release_base));
      }
      release_base +=
          chunk.job(static_cast<JobId>(chunk.num_jobs() - 1)).release;
      produced += take;
    }
  }

  // Parse-and-feed: the production ingest path, timed end to end.
  service::SchedulerSession session(api::Algorithm::kTheorem1, kMachines,
                                    low_memory_options());
  util::Timer timer;
  std::ifstream in(path);
  OSCHED_CHECK(static_cast<bool>(in)) << "cannot reopen " << path.string();
  workload::TraceStreamReader reader(in);
  OSCHED_CHECK(reader.ok()) << reader.error();
  std::vector<StreamJob> chunk;
  while (reader.next_chunk(kChunk, chunk) > 0) {
    // The parsed chunk feeds the session in one batch submit.
    session.submit(std::span<const StreamJob>(chunk));
  }
  OSCHED_CHECK(reader.ok()) << reader.error();
  const std::size_t max_live = session.max_live_jobs();
  const api::RunSummary summary = session.drain();
  const double seconds = timer.elapsed_seconds();
  fs::remove(path);

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(reader.rows_read()) / seconds : 0.0);
  row.set("peak_rss_mib", peak_rss_mib());
  row.set("max_live_jobs", static_cast<double>(max_live));
  row.set("rejected", static_cast<double>(summary.report.num_rejected));
  row.set("completed", static_cast<double>(summary.report.num_completed));
  row.set("total_flow", summary.report.total_flow);
  return row;
}

MetricRow run_batch_case(const UnitContext& ctx, std::size_t n) {
  // Materialize the SAME stream run_stream_case fed (same scenario_seed,
  // same chunk seeds and release shifts) as one big Instance.
  std::vector<Job> jobs;
  jobs.reserve(n);
  std::vector<std::vector<Work>> processing(kMachines);
  for (auto& row : processing) row.reserve(n);
  Time release_base = 0.0;
  std::size_t produced = 0;
  for (std::uint64_t c = 0; produced < n; ++c) {
    const std::size_t take = std::min(kChunk, n - produced);
    const Instance chunk = stream_chunk(ctx.scenario_seed, c, take);
    for (std::size_t idx = 0; idx < chunk.num_jobs(); ++idx) {
      const auto j = static_cast<JobId>(idx);
      Job job = chunk.job(j);
      job.id = static_cast<JobId>(jobs.size());
      job.release += release_base;
      jobs.push_back(job);
      for (std::size_t i = 0; i < kMachines; ++i) {
        processing[i].push_back(
            chunk.processing_unchecked(static_cast<MachineId>(i), j));
      }
    }
    release_base += chunk.job(static_cast<JobId>(chunk.num_jobs() - 1)).release;
    produced += take;
  }
  const Instance instance(std::move(jobs), std::move(processing));

  api::RunOptions options;
  options.epsilon = kEpsilon;
  options.validate = false;  // time the scheduler, like the streamed cases
  util::Timer timer;
  const api::RunSummary summary = api::run(api::Algorithm::kTheorem1, instance, options);
  const double seconds = timer.elapsed_seconds();

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0);
  row.set("peak_rss_mib", peak_rss_mib());
  row.set("rejected", static_cast<double>(summary.report.num_rejected));
  row.set("completed", static_cast<double>(summary.report.num_completed));
  row.set("total_flow", summary.report.total_flow);
  return row;
}

MetricRow run_e17_unit(const UnitContext& ctx) {
  const auto mode = static_cast<Mode>(static_cast<int>(ctx.param("mode")));
  const std::size_t n = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  switch (mode) {
    case Mode::kStream: return run_stream_case(ctx, n);
    case Mode::kSharded: return run_sharded_case(ctx, n);
    case Mode::kTraceFed: return run_trace_fed_case(ctx, n);
    case Mode::kBatch: return run_batch_case(ctx, n);
  }
  OSCHED_CHECK(false) << "unreachable mode";
  return MetricRow{};
}

Scenario make_e17() {
  Scenario scenario;
  scenario.name = "e17_streaming";
  scenario.description =
      "streaming sessions at scale: chunked feed vs batch twin, sharded "
      "tenants, trace parse-and-feed";
  scenario.tags = {"perf", "streaming", "slow"};
  scenario.repetitions = 1;
  const struct {
    const char* label;
    Mode mode;
    double n;
  } cells[] = {
      // Streaming cases FIRST: peak RSS is a process high-water mark and
      // the batch twin would mask them.
      {"stream t1 n=1000000 m=16 chunk=64k", Mode::kStream, 1000000},
      {"stream sharded S=8 n=1000000 m=16", Mode::kSharded, 1000000},
      {"stream trace-fed n=200000 m=16", Mode::kTraceFed, 200000},
      {"batch t1 n=1000000 m=16", Mode::kBatch, 1000000},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(CaseSpec(cell.label)
                                .with("mode", static_cast<double>(cell.mode))
                                .with("n", cell.n));
  }
  scenario.run_unit = run_e17_unit;
  scenario.evaluate = [](const ScenarioReport& report) {
    // The acceptance property: streamed == batch, bit for bit, on every
    // deterministic output of the shared workload.
    const auto& streamed = report.case_result("stream t1 n=1000000 m=16 chunk=64k");
    const auto& batch = report.case_result("batch t1 n=1000000 m=16");
    for (const char* metric : {"rejected", "completed", "total_flow"}) {
      const double a = streamed.metric(metric).mean();
      const double b = batch.metric(metric).mean();
      if (a != b) {
        return Verdict{false, std::string("streamed/batch mismatch on ") +
                                  metric + ": " + std::to_string(a) + " vs " +
                                  std::to_string(b)};
      }
    }
    // Shard-scaling readout (informational): sharded throughput relative
    // to one single-threaded session, and per worker.
    const auto& sharded = report.case_result("stream sharded S=8 n=1000000 m=16");
    const double single_jps = streamed.metric("jobs_per_sec").mean();
    const double sharded_jps = sharded.metric("jobs_per_sec").mean();
    const double workers = sharded.metric("workers").mean();
    std::string note = "streamed == batch bit-for-bit; sharded/single = ";
    if (single_jps > 0.0 && workers > 0.0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%.2fx over %.0f worker(s), eff %.2f",
                    sharded_jps / single_jps, workers,
                    sharded_jps / single_jps / workers);
      note += buf;
    } else {
      note += "n/a";
    }
    return Verdict{true, note};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e17);

}  // namespace
