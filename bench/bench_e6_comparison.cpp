// E6 — positioning table: rejection-only (Theorem 1) vs speed-augmentation
// + rejection (prior art [5]) vs no-rejection baselines vs the immediate
// rejection policy, across loads on a heavy-tailed datacenter workload.
//
// Expected shape (the paper's thesis): the no-rejection baselines fall off
// a cliff once the load crosses saturation; Theorem 1 tracks the
// speed-augmented algorithm closely WITHOUT the extra speed; immediate
// rejection helps but cannot recover stragglers it already started.
#include <iostream>

#include "baselines/flow_lower_bounds.hpp"
#include "baselines/immediate_rejection.hpp"
#include "baselines/list_scheduler.hpp"
#include "baselines/speed_augmented.hpp"
#include "core/flow/rejection_flow.hpp"
#include "metrics/metrics.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/generators.hpp"

namespace {

struct AlgoResult {
  double flow_vs_lb = 0.0;
  double rejected_pct = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "1500", "jobs per run");
  cli.flag("machines", "8", "machines");
  cli.flag("eps", "0.2", "rejection parameter for all rejection algorithms");
  cli.flag("loads", "0.7,0.9,1.1,1.4", "load sweep");
  cli.flag("seeds", "4", "seeds per load");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const auto jobs = static_cast<std::size_t>(cli.integer("jobs"));
  const auto machines = static_cast<std::size_t>(cli.integer("machines"));
  const double eps = cli.num("eps");
  const auto seeds = static_cast<std::size_t>(cli.integer("seeds"));

  std::cout << "E6: who wins — rejection vs speed augmentation vs none\n"
            << "    " << jobs << " Pareto(1.6) jobs, bursty arrivals, "
            << machines << " unrelated machines, eps=" << eps << ", " << seeds
            << " seeds per load\n"
            << "    (cells: total flow / certified LB; rejection %% in "
               "parentheses)\n";

  const auto loads = cli.num_list("loads");
  constexpr std::size_t kAlgos = 5;
  const char* names[kAlgos] = {"theorem1", "speed-aug [5]", "greedy SPT",
                               "FIFO", "immediate-rej"};
  // [load][algo] accumulators.
  std::vector<std::array<std::vector<double>, kAlgos>> ratio_samples(loads.size());
  std::vector<std::array<double, kAlgos>> reject_pct(loads.size());
  for (auto& row : reject_pct) row.fill(0.0);

  util::ThreadPool pool;
  std::mutex merge_mutex;
  util::parallel_for(pool, loads.size() * seeds, [&](std::size_t task) {
    const std::size_t load_index = task / seeds;

    workload::WorkloadConfig config;
    config.num_jobs = jobs;
    config.num_machines = machines;
    config.load = loads[load_index];
    config.arrivals.kind = workload::ArrivalKind::kBursty;
    config.sizes.dist = workload::SizeDistribution::kPareto;
    config.sizes.pareto_shape = 1.6;
    config.machines.model = workload::MachineModel::kUnrelated;
    config.machines.speed_spread = 3.0;
    config.seed = util::derive_seed(6006, task);
    const Instance instance = workload::generate_workload(config);

    const auto t1 = run_rejection_flow(instance, {.epsilon = eps});
    const double lb = best_flow_lower_bound(instance, t1.opt_lower_bound);

    SpeedAugmentedOptions sa_options;
    sa_options.eps_rejection = eps;
    sa_options.eps_speed = eps;
    const auto sa = run_speed_augmented_flow(instance, sa_options);
    const Schedule greedy = run_greedy_spt(instance);
    const Schedule fifo = run_fifo(instance);
    const auto immediate =
        run_immediate_rejection(instance, {.eps = 2.0 * eps, .patience = 3.0});

    const Schedule* schedules[kAlgos] = {&t1.schedule, &sa.schedule, &greedy,
                                         &fifo, &immediate.schedule};
    std::unique_lock lock(merge_mutex);
    for (std::size_t a = 0; a < kAlgos; ++a) {
      const ObjectiveReport report = evaluate(*schedules[a], instance);
      ratio_samples[load_index][a].push_back(report.total_flow / lb);
      reject_pct[load_index][a] =
          std::max(reject_pct[load_index][a], 100.0 * report.rejected_fraction);
    }
  });

  std::vector<std::string> headers{"load"};
  for (const char* name : names) headers.push_back(name);
  util::Table table(headers);
  for (std::size_t l = 0; l < loads.size(); ++l) {
    std::vector<std::string> cells{util::Table::num(loads[l], 3)};
    for (std::size_t a = 0; a < kAlgos; ++a) {
      cells.push_back(util::Table::num(
                          util::geometric_mean(ratio_samples[l][a]), 4) +
                      " (" + util::Table::num(reject_pct[l][a], 2) + "%)");
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  // Shape checks: at the highest load, theorem1 must beat the no-rejection
  // baselines decisively and stay within ~2x of the speed-augmented prior art.
  const std::size_t last = loads.size() - 1;
  const double t1_ratio = util::geometric_mean(ratio_samples[last][0]);
  const double sa_ratio = util::geometric_mean(ratio_samples[last][1]);
  const double greedy_ratio = util::geometric_mean(ratio_samples[last][2]);
  const bool pass = t1_ratio < 0.7 * greedy_ratio && t1_ratio < 3.0 * sa_ratio;
  std::cout << "at load " << loads[last] << ": theorem1 " << t1_ratio
            << " vs greedy " << greedy_ratio << " vs speed-aug " << sa_ratio
            << "\n"
            << (pass ? "E6 PASS: rejection recovers (most of) what speed "
                       "augmentation buys\n"
                     : "E6 FAIL: unexpected ordering\n");
  return pass ? 0 : 1;
}
