// E6 — positioning (registered scenario "e6_comparison"): rejection-only
// (Theorem 1) vs speed-augmentation + rejection (prior art [5]) vs
// no-rejection baselines vs the immediate rejection policy, across loads on
// a heavy-tailed datacenter workload.
//
// Expected shape (the paper's thesis): the no-rejection baselines fall off
// a cliff once the load crosses saturation; Theorem 1 tracks the
// speed-augmented algorithm closely WITHOUT the extra speed; immediate
// rejection helps but cannot recover stragglers it already started.
//
// The named policies run through the api:: facade (the library's front
// door); only the speed-augmented prior art needs its own header.
#include "api/scheduler_api.hpp"
#include "baselines/flow_lower_bounds.hpp"
#include "baselines/speed_augmented.hpp"
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "metrics/metrics.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kEps = 0.2;

Scenario make_e6() {
  Scenario scenario;
  scenario.name = "e6_comparison";
  scenario.description =
      "who wins: rejection vs speed augmentation vs no rejection, by load";
  scenario.tags = {"flow", "baselines", "positioning"};
  scenario.repetitions = 3;
  for (const double load : {0.7, 0.9, 1.1, 1.4}) {
    scenario.grid.push_back(
        CaseSpec("load=" + util::Table::num(load, 3)).with("load", load));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    workload::WorkloadConfig config;
    config.num_jobs = ctx.scaled(1500);
    config.num_machines = 8;
    config.load = ctx.param("load");
    config.arrivals.kind = workload::ArrivalKind::kBursty;
    config.sizes.dist = workload::SizeDistribution::kPareto;
    config.sizes.pareto_shape = 1.6;
    config.machines.model = workload::MachineModel::kUnrelated;
    config.machines.speed_spread = 3.0;
    config.seed = ctx.seed;
    const Instance instance = workload::generate_workload(config);

    // The theorem-1 run also supplies the certified lower bound every
    // policy's flow is divided by.
    const auto t1 = run_rejection_flow(instance, {.epsilon = kEps});
    const double lb = best_flow_lower_bound(instance, t1.opt_lower_bound);

    MetricRow row;
    row.set("theorem1_ratio", t1.schedule.total_flow(instance) / lb);
    row.set("theorem1_rej_pct",
            100.0 * evaluate(t1.schedule, instance).rejected_fraction);

    SpeedAugmentedOptions sa_options;
    sa_options.eps_rejection = kEps;
    sa_options.eps_speed = kEps;
    const auto sa = run_speed_augmented_flow(instance, sa_options);
    row.set("speed_aug_ratio", sa.schedule.total_flow(instance) / lb);

    const struct {
      const char* metric;
      const char* algorithm;
      double epsilon;
    } facade_runs[] = {
        {"greedy_spt_ratio", "greedy-spt", kEps},
        {"fifo_ratio", "fifo", kEps},
        {"immediate_ratio", "immediate-reject", 2.0 * kEps},
    };
    for (const auto& run : facade_runs) {
      api::RunOptions options;
      options.epsilon = run.epsilon;
      const auto summary = api::run_by_name(run.algorithm, instance, options);
      OSCHED_CHECK(summary.has_value()) << "unknown algorithm " << run.algorithm;
      row.set(run.metric, summary->report.total_flow / lb);
    }
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    // Shape check at the highest load: theorem1 must beat the no-rejection
    // baselines decisively and stay within ~3x of the speed-augmented prior
    // art.
    const harness::CaseResult& last = report.cases.back();
    const double t1 = last.metric("theorem1_ratio").mean();
    const double sa = last.metric("speed_aug_ratio").mean();
    const double greedy = last.metric("greedy_spt_ratio").mean();
    Verdict verdict;
    verdict.pass = t1 < 0.7 * greedy && t1 < 3.0 * sa;
    verdict.note = "at top load: theorem1 " + util::Table::num(t1, 3) +
                   " vs greedy " + util::Table::num(greedy, 3) +
                   " vs speed-aug " + util::Table::num(sa, 3);
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e6);

}  // namespace
