// E15 — robustness of the measured ratios to instance perturbation
// (registered scenario "e15_robustness").
//
// The theorem bounds are worst-case; E1/E6's measurements come from
// specific generated instances. This scenario perturbs one nominal workload
// three ways — release jitter, lognormal size noise, random job drops — and
// re-measures the Theorem 1 ratio (vs each perturbed instance's OWN
// certified lower bound) and the rejection fraction. Flat rows mean the
// reproduction measures the policy, not the instance; the rejected%
// column must stay under 2*eps everywhere — the budget is a counter
// property and cannot depend on the perturbation (this is the verdict).
#include "baselines/flow_lower_bounds.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "metrics/metrics.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/perturb.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kEps = 0.25;

enum class Axis { kReleaseJitter = 0, kSizeNoise, kJobDrops };

const char* to_label(Axis axis) {
  switch (axis) {
    case Axis::kReleaseJitter: return "release-jitter";
    case Axis::kSizeNoise: return "size-noise";
    case Axis::kJobDrops: return "job-drops";
  }
  return "?";
}

Scenario make_e15() {
  Scenario scenario;
  scenario.name = "e15_robustness";
  scenario.description =
      "ratio robustness under perturbation; the 2*eps budget must be exact";
  scenario.tags = {"flow", "robustness", "theorem1"};
  scenario.repetitions = 3;
  const struct {
    Axis axis;
    std::vector<double> magnitudes;
  } axes[] = {
      {Axis::kReleaseJitter, {0.0, 0.5, 1.0, 2.0}},
      {Axis::kSizeNoise, {0.0, 0.2, 0.5, 1.0}},
      {Axis::kJobDrops, {0.0, 0.1, 0.25, 0.5}},
  };
  for (const auto& axis : axes) {
    for (const double magnitude : axis.magnitudes) {
      scenario.grid.push_back(
          CaseSpec(std::string(to_label(axis.axis)) + " " +
                   util::Table::num(magnitude, 3))
              .with("axis", static_cast<double>(axis.axis))
              .with("magnitude", magnitude));
    }
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    workload::WorkloadConfig nominal_config;
    nominal_config.num_jobs = ctx.scaled(800);
    nominal_config.num_machines = 4;
    nominal_config.load = 1.3;
    nominal_config.sizes.dist = workload::SizeDistribution::kPareto;
    nominal_config.seed = 1234;  // one shared nominal workload, as in E15
    const Instance nominal = workload::generate_workload(nominal_config);

    workload::PerturbConfig perturb;
    const double magnitude = ctx.param("magnitude");
    switch (static_cast<Axis>(static_cast<int>(ctx.param("axis")))) {
      case Axis::kReleaseJitter: perturb.release_jitter = magnitude; break;
      case Axis::kSizeNoise: perturb.size_noise = magnitude; break;
      case Axis::kJobDrops: perturb.drop_fraction = magnitude; break;
    }
    perturb.seed = ctx.seed;
    const Instance instance = workload::perturb_instance(nominal, perturb);

    const auto t1 = run_rejection_flow(instance, {.epsilon = kEps});
    const auto report = evaluate(t1.schedule, instance);
    const double lb = best_flow_lower_bound(instance, t1.opt_lower_bound);

    MetricRow row;
    row.set("t1_ratio", report.total_flow / lb);
    row.set("rejected_pct", 100.0 * report.rejected_fraction);
    row.set("greedy_ratio",
            run_greedy_spt(instance).total_flow(instance) / lb);
    row.set("jobs", static_cast<double>(instance.num_jobs()));
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    Verdict verdict;
    for (const harness::CaseResult& c : report.cases) {
      if (c.metric("rejected_pct").max() > 200.0 * kEps + 1e-9) {
        verdict.pass = false;
        verdict.note = "rejection budget depends on the perturbation at " +
                       c.spec.label;
        return verdict;
      }
    }
    verdict.note = "2*eps budget flat across every perturbation axis";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e15);

}  // namespace
