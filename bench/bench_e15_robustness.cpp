// E15 — robustness of the measured ratios to instance perturbation.
//
// The theorem bounds are worst-case; E1/E6's measurements come from specific
// generated instances. This experiment perturbs one nominal workload three
// ways — release jitter, lognormal size noise, random job drops — and
// re-measures the Theorem 1 ratio (vs each perturbed instance's OWN
// certified lower bound) and the rejection fraction. Flat rows mean the
// reproduction measures the policy, not the instance; they also probe the
// 2-eps budget's independence from instance details (a counter property, it
// must be EXACTLY flat).
#include <iostream>

#include "analysis/sweep.hpp"
#include "baselines/flow_lower_bounds.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/flow/rejection_flow.hpp"
#include "metrics/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/perturb.hpp"

namespace {

using namespace osched;

Instance nominal_workload(std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_jobs = 800;
  config.num_machines = 4;
  config.load = 1.3;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = seed;
  return workload::generate_workload(config);
}

analysis::MetricRow measure(const Instance& instance, double eps) {
  analysis::MetricRow row;
  const auto t1 = run_rejection_flow(instance, {.epsilon = eps});
  const auto report = evaluate(t1.schedule, instance);
  const double lb = best_flow_lower_bound(instance, t1.opt_lower_bound);
  row.set("T1 ratio", report.total_flow / lb);
  row.set("rejected%", 100.0 * report.rejected_fraction);
  const Schedule greedy = run_greedy_spt(instance);
  row.set("greedy ratio", greedy.total_flow(instance) / lb);
  row.set("n", static_cast<double>(instance.num_jobs()));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("eps", "0.25", "rejection parameter");
  cli.flag("reps", "5", "perturbation draws per magnitude");
  cli.flag("seed", "41", "root seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  std::cout << "E15: ratio robustness under instance perturbation (eps=" << eps
            << ")\nratios vs each perturbed instance's own certified LB\n\n";

  struct Axis {
    std::string name;
    std::vector<double> magnitudes;
    workload::PerturbConfig (*make)(double, std::uint64_t);
  };
  const std::vector<Axis> axes = {
      {"release jitter (x mean gap)",
       {0.0, 0.5, 1.0, 2.0},
       [](double m, std::uint64_t s) {
         workload::PerturbConfig config;
         config.release_jitter = m;
         config.seed = s;
         return config;
       }},
      {"size noise (lognormal sigma)",
       {0.0, 0.2, 0.5, 1.0},
       [](double m, std::uint64_t s) {
         workload::PerturbConfig config;
         config.size_noise = m;
         config.seed = s;
         return config;
       }},
      {"job drops (fraction)",
       {0.0, 0.1, 0.25, 0.5},
       [](double m, std::uint64_t s) {
         workload::PerturbConfig config;
         config.drop_fraction = m;
         config.seed = s;
         return config;
       }},
  };

  for (const Axis& axis : axes) {
    std::vector<analysis::SweepCase> cases;
    for (double magnitude : axis.magnitudes) {
      cases.push_back(
          {util::Table::num(magnitude, 3),
           [&axis, magnitude, eps](std::uint64_t case_seed) {
             const Instance nominal = nominal_workload(1234);
             const Instance perturbed = workload::perturb_instance(
                 nominal, axis.make(magnitude, case_seed));
             return measure(perturbed, eps);
           }});
    }
    analysis::SweepOptions sweep;
    sweep.repetitions = reps;
    sweep.seed = seed;
    const auto result = analysis::run_sweep(cases, sweep);
    util::print_section(std::cout, axis.name);
    result.to_spread_table("magnitude").print(std::cout);
  }

  std::cout << "Reading: the T1 ratio column should move little across each\n"
               "axis (the measurement reflects the policy); the rejected%\n"
               "column must stay under 2*eps = "
            << util::Table::num(200.0 * eps, 3)
            << "% everywhere — the budget is a counter\n"
               "property and cannot depend on the perturbation.\n";
  return 0;
}
