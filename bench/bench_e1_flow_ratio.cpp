// E1 — Theorem 1 verification (registered scenario "e1_flow_ratio").
//
// Claim: the rejection-only flow scheduler is 2((1+eps)/eps)^2-competitive
// while rejecting at most a 2*eps fraction of jobs.
//
// Grid: (eps, machines, size distribution); several seeded workloads per
// cell. Measured ratio = ALG / certified lower bound (dual/2 vs the
// combinatorial bounds, whichever is strongest), so every number is an
// upper bound on the true competitive ratio. PASS = max ratio below the
// theorem bound AND rejection budget respected on every run.
//
// Also registers "smoke_rejection_budget": a seconds-fast scenario asserting
// the 2*eps rejection budget, tagged for the CI smoke batch.
#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

MetricRow run_theorem1_unit(const UnitContext& ctx, std::size_t nominal_jobs,
                            double load) {
  const double eps = ctx.param("eps");
  workload::WorkloadConfig config;
  config.num_jobs = ctx.scaled(nominal_jobs);
  config.num_machines = static_cast<std::size_t>(ctx.param("machines"));
  config.load = load;
  config.sizes.dist = ctx.param_or("pareto", 0.0) > 0.5
                          ? workload::SizeDistribution::kPareto
                          : workload::SizeDistribution::kUniform;
  config.machines.model = workload::MachineModel::kUnrelated;
  config.seed = ctx.seed;
  const Instance instance = workload::generate_workload(config);

  const auto result = run_rejection_flow(instance, {.epsilon = eps});
  const double alg = result.schedule.total_flow(instance);
  const double lb = best_flow_lower_bound(instance, result.opt_lower_bound);

  MetricRow row;
  row.set("ratio", alg / lb);
  row.set("reject_fraction",
          static_cast<double>(result.schedule.num_rejected()) /
              static_cast<double>(instance.num_jobs()));
  row.set("feasible",
          validate_schedule(result.schedule, instance).empty() ? 1.0 : 0.0);
  return row;
}

Verdict check_theorem1(const ScenarioReport& report) {
  Verdict verdict;
  for (const harness::CaseResult& c : report.cases) {
    const double eps = c.spec.param("eps");
    const double bound = theorem1_ratio_bound(eps);
    const double budget = theorem1_rejection_budget(eps);
    const bool pass = c.metric("feasible").min() >= 1.0 &&
                      c.metric("ratio").max() <= bound &&
                      c.metric("reject_fraction").max() <= budget + 1e-12;
    if (!pass && verdict.pass) {
      verdict.pass = false;
      verdict.note = "theorem 1 guarantee violated at " + c.spec.label;
    }
  }
  if (verdict.pass) verdict.note = "ratio and budget within Theorem 1";
  return verdict;
}

Scenario make_e1() {
  Scenario scenario;
  scenario.name = "e1_flow_ratio";
  scenario.description =
      "Theorem 1: ratio <= 2((1+eps)/eps)^2, rejections <= 2 eps n";
  scenario.tags = {"flow", "theorem1", "paper"};
  scenario.repetitions = 3;
  for (const double eps : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    for (const std::size_t machines : {1, 4, 10}) {
      for (const bool pareto : {false, true}) {
        scenario.grid.push_back(
            CaseSpec("eps=" + util::Table::num(eps, 2) +
                     " m=" + std::to_string(machines) +
                     (pareto ? " pareto" : " uniform"))
                .with("eps", eps)
                .with("machines", static_cast<double>(machines))
                .with("pareto", pareto ? 1.0 : 0.0));
      }
    }
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    return run_theorem1_unit(ctx, 1200, 1.2);
  };
  scenario.evaluate = check_theorem1;
  return scenario;
}

Scenario make_smoke() {
  Scenario scenario;
  scenario.name = "smoke_rejection_budget";
  scenario.description =
      "fast Theorem 1 budget check: rejected fraction <= 2*eps";
  scenario.tags = {"smoke", "flow", "theorem1"};
  scenario.repetitions = 2;
  for (const double eps : {0.2, 0.5}) {
    scenario.grid.push_back(CaseSpec("eps=" + util::Table::num(eps, 2))
                                .with("eps", eps)
                                .with("machines", 3.0)
                                .with("pareto", 1.0));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    return run_theorem1_unit(ctx, 300, 1.3);
  };
  scenario.evaluate = check_theorem1;
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e1);
OSCHED_REGISTER_SCENARIO(make_smoke);

}  // namespace
