// E1 — Theorem 1 verification table.
//
// Claim: the rejection-only flow scheduler is 2((1+eps)/eps)^2-competitive
// while rejecting at most a 2*eps fraction of jobs.
//
// For each (eps, machines, size distribution): several seeded workloads;
// reported measured ratio = ALG / certified lower bound (dual/2 vs the
// combinatorial bounds, whichever is strongest), so every number is an
// upper bound on the true competitive ratio. PASS = max ratio below the
// theorem bound AND rejection budget respected on every run.
#include <iostream>

#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/generators.hpp"

namespace {

struct Cell {
  double mean_ratio = 0.0;
  double max_ratio = 0.0;
  double max_reject_fraction = 0.0;
  bool feasible = true;
};

Cell run_cell(double eps, std::size_t machines,
              osched::workload::SizeDistribution dist, std::size_t jobs,
              std::size_t seeds) {
  using namespace osched;
  Cell cell;
  std::vector<double> ratios;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    workload::WorkloadConfig config;
    config.num_jobs = jobs;
    config.num_machines = machines;
    config.load = 1.2;
    config.sizes.dist = dist;
    config.machines.model = workload::MachineModel::kUnrelated;
    config.seed = util::derive_seed(1001, seed * 37 + machines);
    const Instance instance = workload::generate_workload(config);

    const auto result = run_rejection_flow(instance, {.epsilon = eps});
    cell.feasible =
        cell.feasible && validate_schedule(result.schedule, instance).empty();

    const double alg = result.schedule.total_flow(instance);
    const double lb = best_flow_lower_bound(instance, result.opt_lower_bound);
    ratios.push_back(alg / lb);
    cell.max_ratio = std::max(cell.max_ratio, alg / lb);
    cell.max_reject_fraction =
        std::max(cell.max_reject_fraction,
                 static_cast<double>(result.schedule.num_rejected()) /
                     static_cast<double>(instance.num_jobs()));
  }
  cell.mean_ratio = util::geometric_mean(ratios);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "1200", "jobs per run");
  cli.flag("seeds", "5", "seeds per configuration");
  cli.flag("eps", "0.1,0.2,0.3,0.5,0.7,0.9", "epsilon sweep");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const auto jobs = static_cast<std::size_t>(cli.integer("jobs"));
  const auto seeds = static_cast<std::size_t>(cli.integer("seeds"));
  const auto eps_sweep = cli.num_list("eps");

  std::cout << "E1: Theorem 1 — ratio <= 2((1+eps)/eps)^2, rejections <= 2 eps n\n"
            << "    " << jobs << " Poisson jobs per run, " << seeds
            << " seeds per cell, load 1.2, unrelated machines\n";

  const std::vector<std::size_t> machine_sweep{1, 4, 10};
  const std::vector<workload::SizeDistribution> dists{
      workload::SizeDistribution::kUniform, workload::SizeDistribution::kPareto};

  struct Row {
    double eps;
    std::size_t machines;
    workload::SizeDistribution dist;
    Cell cell;
  };
  std::vector<Row> rows;
  for (double eps : eps_sweep) {
    for (std::size_t m : machine_sweep) {
      for (auto dist : dists) rows.push_back({eps, m, dist, {}});
    }
  }

  util::ThreadPool pool;
  util::parallel_for(pool, rows.size(), [&](std::size_t i) {
    rows[i].cell = run_cell(rows[i].eps, rows[i].machines, rows[i].dist, jobs, seeds);
  });

  util::Table table({"eps", "m", "sizes", "ratio (geo)", "ratio (max)",
                     "bound 2((1+e)/e)^2", "rej frac (max)", "budget 2e",
                     "status"});
  bool all_pass = true;
  for (const Row& row : rows) {
    const double bound = theorem1_ratio_bound(row.eps);
    const double budget = theorem1_rejection_budget(row.eps);
    const bool pass = row.cell.feasible && row.cell.max_ratio <= bound &&
                      row.cell.max_reject_fraction <= budget + 1e-12;
    all_pass = all_pass && pass;
    table.row(row.eps, static_cast<int>(row.machines),
              workload::to_string(row.dist), row.cell.mean_ratio,
              row.cell.max_ratio, bound, row.cell.max_reject_fraction, budget,
              pass ? "PASS" : "FAIL");
  }
  table.print(std::cout);
  std::cout << (all_pass ? "E1 PASS: every cell within the theorem guarantees\n"
                         : "E1 FAIL: some cell violates Theorem 1!\n");
  return all_pass ? 0 : 1;
}
