// E21 — multi-tenant storage soak (registered scenario "e21_multitenant").
//
// The perf tier behind carrying the storage-backend trio through the
// streaming path: a ShardDriver fleet of THOUSANDS of sparse-CSR sessions at
// m = 4096 ingests millions of jobs (8 eligible machines each), and the
// scenario verdict asserts the PR's two contracts in-process:
//
//  1. Determinism: dense, sparse and generator sessions of the same
//     workload drain bit-identical rejected / completed / total_flow — the
//     in-bench restatement of the tests/streaming_test.cpp trio wall, at a
//     machine count the unit tests do not reach.
//  2. Memory: a sparse tenant's matrix_peak_bytes is <= 1% of its dense
//     twin's at m = 4096 (8/4096 eligibility is ~0.2% + shadow), a
//     generator tenant's is exactly zero, and the whole sparse fleet holds
//     <= 1% of the bytes a dense fleet of the same jobs would.
//
// Workload: a bench-local sparse closed form — every job's eligible set
// (8 distinct machines of 4096) and its p values are pure hashes of
// (seed, tenant, job), so any tenant's stream regenerates in O(k) per job
// with no per-tenant matrix anywhere in the bench itself. The full-elig
// pair reuses workload/generated_family's closed form, whose generator
// backend needs full eligibility by contract.
//
// Both the tenant count and the per-tenant job count take --scale (the grid
// cell names full scale: S = 2048 tenants x 1000 jobs = ~2M jobs, ~2-3 GiB
// peak for the fleet's per-machine policy state); CI's perf-smoke runs at
// --scale 0.05 (S = 102 x 50 jobs) against BENCH_e21_multitenant.json.
// Compact cases run FIRST: peak RSS is a process-wide high-water mark and
// the dense twins would mask them.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "harness/registry.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workload/generated_family.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr std::size_t kMachines = 4096;
constexpr std::size_t kEligible = 8;
constexpr double kEpsilon = 0.25;
constexpr double kParetoShape = 1.8;
constexpr double kMinSize = 0.5;
constexpr double kSpeedSpread = 4.0;

enum class Mode {
  kFleetSparse = 0,  ///< ShardDriver: S sparse tenants, the headline soak
  kTwin,             ///< one session of `backend` over a twin-able family
};

enum class TwinFamily {
  kRestricted = 0,  ///< bench-local k-of-m sparse closed form
  kClosedForm,      ///< workload/generated_family, fully eligible
};

/// Process peak RSS in MiB (0.0 where unsupported); monotone over the
/// process lifetime, hence compact-cases-first grid order.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

// --------------------------------------- the bench-local sparse closed form

/// SplitMix64 finalizer as a stateless hash, same construction the shared
/// closed-form family uses (distinct salts, bench-local stream).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t key(std::uint64_t seed, std::uint64_t salt, std::uint64_t tenant,
                  std::uint64_t j, std::uint64_t slot) {
  return mix(seed ^ salt ^ (tenant * 0xd6e8feb86659fd93ULL) ^
             (j * 0x9e3779b97f4a7c15ULL) ^ (slot * 0xc2b2ae3d27d4eb4fULL));
}

constexpr std::uint64_t kSaltMachine = 0x5EA45EA45EA45EA4ULL;
constexpr std::uint64_t kSaltBase = 0xBA5E0FF1CE000000ULL;
constexpr std::uint64_t kSaltSpeed = 0xFA57FA57FA57FA57ULL;

/// Job (tenant, j)'s eligible entries: kEligible distinct machines of
/// kMachines (hash draws, linear-probed past collisions, sorted ascending)
/// with Pareto(kMinSize, kParetoShape) x log-uniform p values. Pure in
/// (seed, tenant, j) — O(k) time, no matrix anywhere.
void fill_fleet_entries(std::uint64_t seed, std::uint64_t tenant,
                        std::uint64_t j, StreamJob* out) {
  std::size_t ids[kEligible];
  for (std::size_t s = 0; s < kEligible; ++s) {
    std::size_t id = static_cast<std::size_t>(
        key(seed, kSaltMachine, tenant, j, s) % kMachines);
    bool taken = true;
    while (taken) {
      taken = false;
      for (std::size_t t = 0; t < s; ++t) {
        if (ids[t] == id) {
          id = (id + 1) % kMachines;
          taken = true;
          break;
        }
      }
    }
    ids[s] = id;
  }
  std::sort(ids, ids + kEligible);

  const double base =
      kMinSize * std::pow(1.0 - u01(key(seed, kSaltBase, tenant, j, 0)),
                          -1.0 / kParetoShape);
  const double ln_spread = std::log(kSpeedSpread);
  out->entries.clear();
  out->processing.clear();
  for (std::size_t s = 0; s < kEligible; ++s) {
    const double u = u01(key(seed, kSaltSpeed, tenant, j, ids[s]));
    out->entries.push_back(
        SparseEntry{static_cast<MachineId>(ids[s]),
                    base * std::exp(ln_spread * (2.0 * u - 1.0))});
  }
}

/// The restricted twin family as a materialized Instance (tenant 0's
/// stream) under `backend` — what the twin cells feed and the fleet's
/// per-job generation must agree with entry for entry.
Instance make_fleet_instance(std::uint64_t seed, std::size_t n,
                             StorageBackend backend) {
  util::Rng rng(util::derive_seed(seed, 0));
  const double mean_size = kMinSize * kParetoShape / (kParetoShape - 1.0);
  const double rate = 4.0 / mean_size;
  std::vector<Job> jobs(n);
  std::vector<std::vector<SparseEntry>> rows(n);
  StreamJob scratch;
  Time t = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    t += rng.exponential(rate);
    jobs[j].id = static_cast<JobId>(j);
    jobs[j].release = t;
    jobs[j].weight = 1.0;
    jobs[j].deadline = kTimeInfinity;
    fill_fleet_entries(seed, 0, j, &scratch);
    rows[j] = scratch.entries;
  }
  Instance sparse =
      Instance::from_sparse_rows(std::move(jobs), kMachines, std::move(rows));
  return backend == StorageBackend::kSparseCsr
             ? std::move(sparse)
             : sparse.with_backend(backend);
}

service::SessionOptions low_memory_options(StorageBackend storage) {
  service::SessionOptions options;
  options.run.epsilon = kEpsilon;
  options.run.validate = false;
  options.retain_records = false;
  options.storage = storage;
  return options;
}

// ------------------------------------------------------------------- cases

MetricRow run_fleet_case(const UnitContext& ctx, std::size_t tenants,
                         std::size_t per_tenant) {
  service::ShardDriverOptions options;
  options.session = low_memory_options(StorageBackend::kSparseCsr);
  service::ShardDriver driver(api::Algorithm::kTheorem1, tenants, kMachines,
                              options);
  // Per-tenant arrival clocks, independent exponential streams (the same
  // construction make_fleet_instance uses, so tenant 0's stream IS the twin
  // cells' instance).
  const double mean_size = kMinSize * kParetoShape / (kParetoShape - 1.0);
  const double rate = 4.0 / mean_size;
  std::vector<util::Rng> rngs;
  rngs.reserve(tenants);
  for (std::size_t s = 0; s < tenants; ++s) {
    rngs.emplace_back(util::derive_seed(ctx.scenario_seed, s));
  }
  std::vector<Time> clocks(tenants, 0.0);

  constexpr std::size_t kWave = 50;
  double feed_seconds = 0.0;
  StreamJob job;
  job.weight = 1.0;
  job.deadline = kTimeInfinity;
  for (std::size_t produced = 0; produced < per_tenant; produced += kWave) {
    const std::size_t take = std::min(kWave, per_tenant - produced);
    util::Timer timer;
    for (std::size_t s = 0; s < tenants; ++s) {
      for (std::size_t k = 0; k < take; ++k) {
        clocks[s] += rngs[s].exponential(rate);
        job.release = clocks[s];
        fill_fleet_entries(ctx.scenario_seed, s, produced + k, &job);
        driver.submit(s, job);
      }
      driver.flush();  // workers chew tenant s while we stage tenant s+1
    }
    driver.sync();
    feed_seconds += timer.elapsed_seconds();
  }

  std::size_t max_live = 0;
  std::size_t matrix_peak = 0;
  for (std::size_t s = 0; s < tenants; ++s) {
    max_live += driver.session(s).max_live_jobs();
    matrix_peak += driver.session(s).matrix_peak_bytes();
  }
  util::Timer drain_timer;
  const std::vector<api::RunSummary> summaries = driver.drain_all();
  feed_seconds += drain_timer.elapsed_seconds();

  std::size_t rejected = 0;
  std::size_t completed = 0;
  double total_flow = 0.0;
  for (const api::RunSummary& summary : summaries) {
    rejected += summary.report.num_rejected;
    completed += summary.report.num_completed;
    total_flow += summary.report.total_flow;
  }
  const auto total_jobs = static_cast<double>(tenants * per_tenant);
  // What a dense fleet of the same jobs would hold in p rows alone (no
  // float shadows): the denominator of the headline ratio.
  const double dense_equiv =
      total_jobs * static_cast<double>(kMachines) * sizeof(Work);

  const auto workers =
      static_cast<double>(std::max<std::size_t>(1, driver.worker_count()));
  MetricRow row;
  row.set("seconds", feed_seconds);
  row.set("jobs_per_sec", feed_seconds > 0.0 ? total_jobs / feed_seconds : 0.0);
  row.set("workers", workers);
  row.set("peak_rss_mib", peak_rss_mib());
  row.set("max_live_jobs", static_cast<double>(max_live));
  row.set("matrix_peak_bytes", static_cast<double>(matrix_peak));
  row.set("matrix_vs_dense", dense_equiv > 0.0
                                 ? static_cast<double>(matrix_peak) / dense_equiv
                                 : 0.0);
  row.set("rejected", static_cast<double>(rejected));
  row.set("completed", static_cast<double>(completed));
  row.set("total_flow", total_flow);
  return row;
}

MetricRow run_twin_case(const UnitContext& ctx, TwinFamily family,
                        StorageBackend backend, std::size_t n) {
  Instance instance;
  service::SessionOptions options = low_memory_options(backend);
  if (family == TwinFamily::kRestricted) {
    // The dense twin materializes the restricted family's full matrix; the
    // sparse cell only ever holds the 8-entry rows.
    instance = make_fleet_instance(
        ctx.scenario_seed, n,
        backend == StorageBackend::kGenerator ? StorageBackend::kSparseCsr
                                              : backend);
  } else {
    workload::ClosedFormConfig config;
    config.num_jobs = n;
    config.num_machines = kMachines;
    config.seed = util::derive_seed(ctx.scenario_seed, 77);
    config.load = 1.1;
    instance = workload::make_closed_form_instance(config, backend);
    if (backend == StorageBackend::kGenerator) {
      options.generator = workload::make_closed_form_generator(config);
    }
  }

  service::SchedulerSession session(api::Algorithm::kTheorem1, kMachines,
                                    options);
  const bool meta_only = backend == StorageBackend::kGenerator;
  util::Timer timer;
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    const auto j = static_cast<JobId>(idx);
    if (meta_only) {
      fill_stream_job_meta(instance.job(j), 0.0, &job);
    } else {
      fill_stream_job(instance, j, 0.0, &job);
    }
    session.submit(job);
  }
  const std::size_t matrix_peak = session.matrix_peak_bytes();
  const api::RunSummary summary = session.drain();
  const double seconds = timer.elapsed_seconds();

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0);
  row.set("peak_rss_mib", peak_rss_mib());
  row.set("matrix_peak_bytes", static_cast<double>(matrix_peak));
  row.set("rejected", static_cast<double>(summary.report.num_rejected));
  row.set("completed", static_cast<double>(summary.report.num_completed));
  row.set("total_flow", summary.report.total_flow);
  return row;
}

MetricRow run_e21_unit(const UnitContext& ctx) {
  const auto mode = static_cast<Mode>(static_cast<int>(ctx.param("mode")));
  if (mode == Mode::kFleetSparse) {
    return run_fleet_case(
        ctx, ctx.scaled(static_cast<std::size_t>(ctx.param("tenants"))),
        ctx.scaled(static_cast<std::size_t>(ctx.param("n"))));
  }
  return run_twin_case(
      ctx, static_cast<TwinFamily>(static_cast<int>(ctx.param("family"))),
      static_cast<StorageBackend>(static_cast<int>(ctx.param("backend"))),
      ctx.scaled(static_cast<std::size_t>(ctx.param("n"))));
}

Scenario make_e21() {
  Scenario scenario;
  scenario.name = "e21_multitenant";
  scenario.description =
      "multi-tenant storage soak: a sparse-CSR session fleet at m=4096 plus "
      "dense/sparse/generator twin sessions, byte-identical outputs and "
      "collapsed matrix bytes asserted";
  scenario.tags = {"perf", "streaming", "storage", "slow"};
  scenario.repetitions = 1;
  const struct {
    const char* label;
    Mode mode;
    double family;
    double backend;
    double tenants;
    double n;
  } cells[] = {
      // Compact cases FIRST (peak RSS is a process high-water mark).
      {"fleet sparse S=2048 n/tenant=1000 m=4096 k=8", Mode::kFleetSparse, 0,
       static_cast<double>(StorageBackend::kSparseCsr), 2048, 1000},
      {"twin sparse n=2000 m=4096 k=8", Mode::kTwin,
       static_cast<double>(TwinFamily::kRestricted),
       static_cast<double>(StorageBackend::kSparseCsr), 0, 2000},
      {"twin generator n=2000 m=4096", Mode::kTwin,
       static_cast<double>(TwinFamily::kClosedForm),
       static_cast<double>(StorageBackend::kGenerator), 0, 2000},
      {"twin dense n=2000 m=4096 k=8", Mode::kTwin,
       static_cast<double>(TwinFamily::kRestricted),
       static_cast<double>(StorageBackend::kDense), 0, 2000},
      {"twin gdense n=2000 m=4096", Mode::kTwin,
       static_cast<double>(TwinFamily::kClosedForm),
       static_cast<double>(StorageBackend::kDense), 0, 2000},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(CaseSpec(cell.label)
                                .with("mode", static_cast<double>(cell.mode))
                                .with("family", cell.family)
                                .with("backend", cell.backend)
                                .with("tenants", cell.tenants)
                                .with("n", cell.n));
  }
  scenario.run_unit = run_e21_unit;
  scenario.evaluate = [](const ScenarioReport& report) {
    // Contract 1: byte-identical deterministic outputs per twin pair.
    const struct {
      const char* compact;
      const char* dense;
    } pairs[] = {
        {"twin sparse n=2000 m=4096 k=8", "twin dense n=2000 m=4096 k=8"},
        {"twin generator n=2000 m=4096", "twin gdense n=2000 m=4096"},
    };
    for (const auto& pair : pairs) {
      const auto& compact = report.case_result(pair.compact);
      const auto& dense = report.case_result(pair.dense);
      for (const char* metric : {"rejected", "completed", "total_flow"}) {
        const double a = compact.metric(metric).mean();
        const double b = dense.metric(metric).mean();
        if (a != b) {
          return Verdict{false, std::string("backend mismatch on ") + metric +
                                    " (" + pair.compact + " vs " + pair.dense +
                                    "): " + std::to_string(a) + " vs " +
                                    std::to_string(b)};
        }
      }
      // Contract 2: <= 1% of the dense twin's matrix bytes at m = 4096.
      const double compact_bytes = compact.metric("matrix_peak_bytes").mean();
      const double dense_bytes = dense.metric("matrix_peak_bytes").mean();
      if (!(compact_bytes <= 0.01 * dense_bytes)) {
        return Verdict{false, std::string(pair.compact) + " holds " +
                                  std::to_string(compact_bytes) +
                                  " matrix bytes, not <= 1% of the dense "
                                  "twin's " +
                                  std::to_string(dense_bytes)};
      }
    }
    // A generator session never holds ANY matrix bytes.
    const double generator_bytes = report.case_result("twin generator n=2000 m=4096")
                                       .metric("matrix_peak_bytes")
                                       .mean();
    if (generator_bytes != 0.0) {
      return Verdict{false, "generator session reports " +
                                std::to_string(generator_bytes) +
                                " matrix bytes; the contract is zero"};
    }
    // The fleet headline: the whole sparse fleet under 1% of its would-be
    // dense footprint.
    const double fleet_ratio =
        report.case_result("fleet sparse S=2048 n/tenant=1000 m=4096 k=8")
            .metric("matrix_vs_dense")
            .mean();
    if (!(fleet_ratio <= 0.01)) {
      return Verdict{false, "sparse fleet holds " +
                                std::to_string(100.0 * fleet_ratio) +
                                "% of the dense-equivalent matrix bytes"};
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "backends byte-identical; sparse fleet at %.3f%% of the "
                  "dense-equivalent bytes",
                  100.0 * fleet_ratio);
    return Verdict{true, buf};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e21);

}  // namespace
