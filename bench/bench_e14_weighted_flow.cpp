// E14 — the weighted flow-time EXTENSION (registered scenario
// "e14_weighted_flow"; no paper theorem — the conclusion's open direction)
// measured on the workloads where weights matter.
//
// Policy cases compare, per weight family, the weighted extension (HDF +
// weighted rules), the Theorem 1 scheduler (weight-blind), and the
// no-rejection list baselines. Objective: total WEIGHTED flow in the
// rejection model (rejected jobs pay w_j * (rejection - release)), plus the
// rejected weight fraction against the 2-eps weight budget — the service
// guarantee the weighted setting is actually about (the weight-blind run
// can post a lower weighted flow, but only by silently rejecting ~30% of
// total weight; its budget counts jobs).
//
// LP cases: the weighted time-indexed LP halved is a certified lower bound
// on the optimal weighted flow, so those ratio columns are sound upper
// bounds on each policy's weighted competitive ratio.
#include "baselines/list_scheduler.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "harness/registry.hpp"
#include "lp/flow_time_lp.hpp"
#include "metrics/metrics.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kEps = 0.25;

enum class Policy { kWeightedExt = 0, kTheorem1, kGreedySpt, kFifo };

const char* to_label(Policy policy) {
  switch (policy) {
    case Policy::kWeightedExt: return "weighted-ext";
    case Policy::kTheorem1: return "theorem1";
    case Policy::kGreedySpt: return "greedy-spt";
    case Policy::kFifo: return "fifo";
  }
  return "?";
}

Instance weighted_workload(workload::WeightDistribution weights,
                           std::size_t jobs, std::size_t machines, double load,
                           std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = machines;
  config.load = load;
  config.weights = weights;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = seed;
  return workload::generate_workload(config);
}

MetricRow run_policy_unit(const UnitContext& ctx) {
  const auto weights = static_cast<workload::WeightDistribution>(
      static_cast<int>(ctx.param("weights")));
  const auto policy = static_cast<Policy>(static_cast<int>(ctx.param("policy")));
  const Instance instance =
      weighted_workload(weights, ctx.scaled(1200), 4, 1.3, ctx.seed);

  Schedule schedule;
  switch (policy) {
    case Policy::kWeightedExt:
      schedule = run_weighted_rejection_flow(instance, {.epsilon = kEps}).schedule;
      break;
    case Policy::kTheorem1:
      schedule = run_rejection_flow(instance, {.epsilon = kEps}).schedule;
      break;
    case Policy::kGreedySpt:
      schedule = run_greedy_spt(instance);
      break;
    case Policy::kFifo:
      schedule = run_fifo(instance);
      break;
  }
  const auto report = evaluate(schedule, instance);
  MetricRow row;
  row.set("w_flow", report.total_weighted_flow);
  row.set("rejected_w_pct", 100.0 * report.rejected_weight_fraction);
  row.set("max_flow", report.max_flow);
  return row;
}

MetricRow run_lp_unit(const UnitContext& ctx) {
  const Instance instance = weighted_workload(
      workload::WeightDistribution::kUniform, 24, 2, 1.1, ctx.seed);
  lp::FlowLpOptions lp_options;
  lp_options.target_intervals = 72;
  lp_options.use_weights = true;
  const auto lp_result = lp::solve_flow_time_lp(instance, lp_options);

  MetricRow row;
  if (!lp_result.optimal()) return row;
  const double lb = lp_result.lower_bound;
  row.set("lp_half", lb);
  row.set("weighted_ext_ratio",
          run_weighted_rejection_flow(instance, {.epsilon = kEps})
                  .schedule.total_weighted_flow(instance) /
              lb);
  row.set("theorem1_ratio",
          run_rejection_flow(instance, {.epsilon = kEps})
                  .schedule.total_weighted_flow(instance) /
              lb);
  row.set("greedy_spt_ratio",
          run_greedy_spt(instance).total_weighted_flow(instance) / lb);
  return row;
}

Scenario make_e14() {
  Scenario scenario;
  scenario.name = "e14_weighted_flow";
  scenario.description =
      "weighted flow-time extension vs weight-blind and no-rejection policies";
  scenario.tags = {"flow", "weighted", "extension"};
  scenario.repetitions = 3;
  const struct {
    const char* label;
    workload::WeightDistribution weights;
  } families[] = {
      {"uniform-w", workload::WeightDistribution::kUniform},
      {"inverse-size-w", workload::WeightDistribution::kInverseSize},
      {"proportional-size-w", workload::WeightDistribution::kProportionalSize},
  };
  for (const auto& family : families) {
    for (const Policy policy : {Policy::kWeightedExt, Policy::kTheorem1,
                                Policy::kGreedySpt, Policy::kFifo}) {
      scenario.grid.push_back(
          CaseSpec(std::string(family.label) + " / " + to_label(policy))
              .with("weights", static_cast<double>(family.weights))
              .with("policy", static_cast<double>(policy)));
    }
  }
  scenario.grid.push_back(
      CaseSpec("certified vs weighted LP/2 (n=24)").with("lp", 1.0));

  scenario.run_unit = [](const UnitContext& ctx) {
    return ctx.param_or("lp", 0.0) > 0.5 ? run_lp_unit(ctx)
                                         : run_policy_unit(ctx);
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    Verdict verdict;
    for (const harness::CaseResult& c : report.cases) {
      // The extension's whole point: rejected weight within the 2*eps
      // weight budget on every family.
      if (c.spec.has_param("policy") &&
          static_cast<Policy>(static_cast<int>(c.spec.param("policy"))) ==
              Policy::kWeightedExt &&
          c.metric("rejected_w_pct").max() > 200.0 * kEps + 1e-9) {
        verdict.pass = false;
        verdict.note = "weighted-ext exceeded its weight budget at " +
                       c.spec.label;
        return verdict;
      }
      // LP ratios are certified: nothing may beat the lower bound.
      if (c.spec.has_param("lp") && c.has_metric("weighted_ext_ratio")) {
        for (const char* key :
             {"weighted_ext_ratio", "theorem1_ratio", "greedy_spt_ratio"}) {
          if (c.metric(key).min() < 1.0 - 1e-9) {
            verdict.pass = false;
            verdict.note = std::string(key) + " beat the certified LP bound";
            return verdict;
          }
        }
      }
    }
    verdict.note =
        "weighted-ext keeps rejected weight within 2*eps; LP bounds sound";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e14);

}  // namespace
