// E14 — the weighted flow-time EXTENSION (no paper theorem; the conclusion's
// open direction) measured on the workloads where weights matter.
//
// Two tables:
//   1. Policy comparison on large weighted workloads: the weighted extension
//      (HDF + weighted rules), the Theorem 1 scheduler (weight-blind), and
//      the no-rejection list baselines. Objective: total WEIGHTED flow in
//      the rejection model (rejected jobs pay w_j * (rejection - release)),
//      plus the rejected weight fraction against the 2-eps budget.
//   2. Certified ratios on small instances: the weighted time-indexed LP
//      (lp/flow_time_lp, use_weights) halved is a certified lower bound on
//      the optimal weighted flow, so ratio columns are sound upper bounds on
//      each policy's weighted competitive ratio there.
#include <iostream>

#include "analysis/sweep.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/flow/rejection_flow.hpp"
#include "extensions/weighted_flow.hpp"
#include "lp/flow_time_lp.hpp"
#include "metrics/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;

Instance weighted_workload(workload::WeightDistribution weights,
                           std::size_t jobs, std::size_t machines, double load,
                           std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = machines;
  config.load = load;
  config.weights = weights;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = seed;
  return workload::generate_workload(config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("eps", "0.25", "rejection parameter");
  cli.flag("reps", "5", "repetitions per cell");
  cli.flag("seed", "21", "root seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  std::cout << "E14: weighted flow-time extension (eps=" << eps
            << "); weighted flow in the rejection model\n\n";

  const std::vector<std::pair<std::string, workload::WeightDistribution>>
      families = {
          {"uniform weights", workload::WeightDistribution::kUniform},
          {"inverse-size (equal densities)",
           workload::WeightDistribution::kInverseSize},
          {"proportional-size (elephants matter)",
           workload::WeightDistribution::kProportionalSize},
      };

  for (const auto& [family_name, weights] : families) {
    std::vector<analysis::SweepCase> cases;
    const auto add_case = [&](const std::string& label, auto runner) {
      cases.push_back({label, [weights, eps, runner](std::uint64_t s) {
                         analysis::MetricRow row;
                         const Instance instance =
                             weighted_workload(weights, 1200, 4, 1.3, s);
                         runner(instance, row);
                         (void)eps;
                         return row;
                       }});
    };

    add_case("weighted-ext (HDF+rules)",
             [eps](const Instance& instance, analysis::MetricRow& row) {
               const auto result =
                   run_weighted_rejection_flow(instance, {.epsilon = eps});
               const auto report = evaluate(result.schedule, instance);
               row.set("w_flow", report.total_weighted_flow);
               row.set("rej_w%", 100.0 * report.rejected_weight_fraction);
               row.set("max_flow", report.max_flow);
             });
    add_case("theorem1 (weight-blind)",
             [eps](const Instance& instance, analysis::MetricRow& row) {
               const auto result =
                   run_rejection_flow(instance, {.epsilon = eps});
               const auto report = evaluate(result.schedule, instance);
               row.set("w_flow", report.total_weighted_flow);
               row.set("rej_w%", 100.0 * report.rejected_weight_fraction);
               row.set("max_flow", report.max_flow);
             });
    add_case("greedy-SPT (no reject)",
             [](const Instance& instance, analysis::MetricRow& row) {
               const Schedule schedule = run_greedy_spt(instance);
               const auto report = evaluate(schedule, instance);
               row.set("w_flow", report.total_weighted_flow);
               row.set("rej_w%", 0.0);
               row.set("max_flow", report.max_flow);
             });
    add_case("FIFO (no reject)",
             [](const Instance& instance, analysis::MetricRow& row) {
               const Schedule schedule = run_fifo(instance);
               const auto report = evaluate(schedule, instance);
               row.set("w_flow", report.total_weighted_flow);
               row.set("rej_w%", 0.0);
               row.set("max_flow", report.max_flow);
             });

    analysis::SweepOptions sweep;
    sweep.repetitions = reps;
    sweep.seed = seed;
    const auto result = analysis::run_sweep(cases, sweep);
    util::print_section(std::cout, family_name + " (n=1200, m=4, load 1.3)");
    result.to_spread_table("policy").print(std::cout);
  }

  // ---- Certified ratios against the weighted LP ----
  util::print_section(std::cout,
                      "certified ratios vs weighted LP/2 (n=24, m=2)");
  util::Table table({"seed", "LP/2", "weighted-ext", "theorem1", "greedy-SPT"});
  for (std::uint64_t s = 1; s <= 4; ++s) {
    const Instance instance = weighted_workload(
        workload::WeightDistribution::kUniform, 24, 2, 1.1, seed + s);
    lp::FlowLpOptions lp_options;
    lp_options.target_intervals = 72;
    lp_options.use_weights = true;
    const auto lp_result = lp::solve_flow_time_lp(instance, lp_options);
    if (!lp_result.optimal()) continue;
    const double lb = lp_result.lower_bound;

    const auto ext = run_weighted_rejection_flow(instance, {.epsilon = eps});
    const auto t1 = run_rejection_flow(instance, {.epsilon = eps});
    const Schedule greedy = run_greedy_spt(instance);
    table.row(static_cast<unsigned long>(s), lb,
              ext.schedule.total_weighted_flow(instance) / lb,
              t1.schedule.total_weighted_flow(instance) / lb,
              greedy.total_weighted_flow(instance) / lb);
  }
  table.print(std::cout);

  std::cout << "Reading: both rejection policies dominate the no-rejection\n"
               "baselines wherever load exceeds 1. The interesting split is\n"
               "under proportional-size weights: the weight-blind Theorem 1\n"
               "run can post a lower weighted flow, but only by silently\n"
               "rejecting ~30% of total WEIGHT (its budget counts jobs);\n"
               "the extension keeps rejected weight within its 2*eps weight\n"
               "budget — the service guarantee the weighted setting is\n"
               "actually about. No theorem is claimed: ratios are empirical.\n";
  return 0;
}
