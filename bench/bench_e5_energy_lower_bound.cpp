// E5 — Lemma 2: the adaptive adversary and the (alpha/9)^alpha mechanism.
//
// The lemma lower-bounds EVERY deterministic policy, and its construction
// punishes policies that concentrate speed: each released window sits inside
// the previous job's execution, so committed speed stacks. Two policies make
// the two sides of the story visible:
//   * eager-speed-1 (the paper's normalized fast policy): windows shrink
//     geometrically, speeds stack to ~alpha, and the certified ratio against
//     the offline witness grows with alpha — the mechanism, live.
//   * the Theorem 3 greedy: it stretches jobs at the lowest feasible speed,
//     keeps the stacked profile flat, and stays near-optimal on the few-job
//     instances reachable at small alpha — consistent with (alpha/9)^alpha
//     being vacuous until alpha > 9. Its ratio sitting at ~1 is a finding,
//     not a failure.
//
// The witness column is a certified feasible offline schedule found by
// branch-and-bound over the same strategy grid, so each row's ratio is a
// certified lower bound on that policy's competitive ratio at that alpha.
#include <cmath>
#include <iostream>

#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/lemma2_adversary.hpp"

namespace {

using namespace osched;

struct PolicyRun {
  std::vector<double> ratios;
};

PolicyRun run_policy(workload::Lemma2Policy policy,
                     const std::vector<double>& alphas,
                     std::size_t speed_levels, util::Table& table,
                     const char* name) {
  PolicyRun run;
  for (double alpha : alphas) {
    workload::Lemma2Config config;
    config.alpha = alpha;
    config.policy = policy;
    config.speed_levels = speed_levels;
    const auto outcome = run_lemma2_adversary(config);
    table.row(name, alpha, static_cast<int>(outcome.jobs_released),
              outcome.algorithm_energy, outcome.witness_energy, outcome.ratio(),
              outcome.witness_certified ? "yes" : "incumbent");
    run.ratios.push_back(outcome.ratio());
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("alphas", "2,2.5,3,3.5,4", "alpha sweep");
  cli.flag("speed_levels", "10", "speed grid resolution");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const std::vector<double> alphas = cli.num_list("alphas");
  const auto levels = static_cast<std::size_t>(cli.integer("speed_levels"));

  std::cout << "E5: Lemma 2 — adaptive adversary, single machine\n";

  util::Table table({"policy", "alpha", "jobs", "ALG energy", "witness energy",
                     "ratio (certified)", "witness exact?"});
  const PolicyRun eager = run_policy(workload::Lemma2Policy::kEagerSpeedOne,
                                     alphas, levels, table, "eager-speed-1");
  const PolicyRun greedy = run_policy(workload::Lemma2Policy::kConfigPrimalDual,
                                      alphas, levels, table, "theorem3-greedy");
  table.print(std::cout);

  // The eager policy must exhibit the lemma's growth; the greedy must stay
  // feasible (ratio >= 1) and flat at these alphas.
  bool eager_growing = eager.ratios.back() > eager.ratios.front();
  for (std::size_t i = 1; i < eager.ratios.size(); ++i) {
    if (eager.ratios[i] < eager.ratios[i - 1] * 0.9) eager_growing = false;
  }
  bool greedy_sound = true;
  for (double r : greedy.ratios) {
    if (r < 1.0 - 1e-9 || r > 2.0) greedy_sound = false;
  }

  std::cout << "eager-speed-1 ratio trend: "
            << (eager_growing ? "growing with alpha (the lemma's mechanism)"
                              : "NOT growing")
            << "\ntheorem3-greedy: "
            << (greedy_sound
                    ? "near-optimal at small alpha (bound vacuous for alpha <= 9)"
                    : "OUT OF EXPECTED RANGE")
            << '\n';
  const bool pass =
      eager_growing && eager.ratios.back() > 1.5 && greedy_sound;
  std::cout << (pass ? "E5 PASS\n" : "E5 FAIL\n");
  return pass ? 0 : 1;
}
