// E5 — Lemma 2 (registered scenario "e5_energy_lower_bound").
//
// The adaptive adversary and the (alpha/9)^alpha mechanism. The lemma
// lower-bounds EVERY deterministic policy, and its construction punishes
// policies that concentrate speed: each released window sits inside the
// previous job's execution, so committed speed stacks. Two policies make
// the two sides of the story visible:
//   * eager-speed-1 (the paper's normalized fast policy): windows shrink
//     geometrically, speeds stack to ~alpha, and the certified ratio against
//     the offline witness grows with alpha — the mechanism, live.
//   * the Theorem 3 greedy: it stretches jobs at the lowest feasible speed,
//     keeps the stacked profile flat, and stays near-optimal on the few-job
//     instances reachable at small alpha — consistent with (alpha/9)^alpha
//     being vacuous until alpha > 9. Its ratio sitting at ~1 is a finding,
//     not a failure.
//
// The witness column is a certified feasible offline schedule found by
// branch-and-bound over the same strategy grid, so each case's ratio is a
// certified lower bound on that policy's competitive ratio at that alpha.
#include <algorithm>

#include "harness/registry.hpp"
#include "util/table.hpp"
#include "workload/lemma2_adversary.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kAlphas[] = {2.0, 2.5, 3.0, 3.5, 4.0};

Scenario make_e5() {
  Scenario scenario;
  scenario.name = "e5_energy_lower_bound";
  scenario.description =
      "Lemma 2: adaptive adversary vs eager-speed-1 and the Theorem 3 greedy";
  // Not smoke-tagged: the branch-and-bound witness dominates the batch.
  scenario.tags = {"energy", "lemma2", "lower-bound", "paper"};
  scenario.repetitions = 1;  // the adversary is deterministic
  for (const double alpha : kAlphas) {
    scenario.grid.push_back(
        CaseSpec("eager alpha=" + util::Table::num(alpha, 2))
            .with("alpha", alpha)
            .with("eager", 1.0));
  }
  for (const double alpha : kAlphas) {
    scenario.grid.push_back(
        CaseSpec("greedy alpha=" + util::Table::num(alpha, 2))
            .with("alpha", alpha)
            .with("eager", 0.0));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    workload::Lemma2Config config;
    config.alpha = ctx.param("alpha");
    config.policy = ctx.param("eager") > 0.5
                        ? workload::Lemma2Policy::kEagerSpeedOne
                        : workload::Lemma2Policy::kConfigPrimalDual;
    config.speed_levels = 10;
    const auto outcome = run_lemma2_adversary(config);

    MetricRow row;
    row.set("jobs", static_cast<double>(outcome.jobs_released));
    row.set("alg_energy", outcome.algorithm_energy);
    row.set("witness_energy", outcome.witness_energy);
    row.set("ratio", outcome.ratio());
    row.set("witness_certified", outcome.witness_certified ? 1.0 : 0.0);
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    // The eager policy must exhibit the lemma's growth; the greedy must stay
    // feasible (ratio >= 1) and flat at these alphas.
    std::vector<double> eager_ratios;
    bool greedy_sound = true;
    for (const harness::CaseResult& c : report.cases) {
      const double ratio = c.metric("ratio").mean();
      if (c.spec.param("eager") > 0.5) {
        eager_ratios.push_back(ratio);
      } else if (ratio < 1.0 - 1e-9 || ratio > 2.0) {
        greedy_sound = false;
      }
    }
    bool eager_growing = eager_ratios.back() > eager_ratios.front();
    for (std::size_t i = 1; i < eager_ratios.size(); ++i) {
      if (eager_ratios[i] < eager_ratios[i - 1] * 0.9) eager_growing = false;
    }
    Verdict verdict;
    verdict.pass = eager_growing && eager_ratios.back() > 1.5 && greedy_sound;
    verdict.note =
        eager_growing
            ? "eager ratio grows with alpha (the lemma's mechanism); greedy "
              "near-optimal (bound vacuous for alpha <= 9)"
            : "eager-speed-1 ratio NOT growing";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e5);

}  // namespace
