// E11 — tightness of the certified lower bounds.
//
// Every ratio this repository reports divides an algorithm's cost by a
// CERTIFIED lower bound on OPT, so the looseness of the bound inflates every
// measured ratio. This experiment quantifies that looseness where ground
// truth is computable: on small instances with exact branch-and-bound OPT,
// it reports LB/OPT for each bound —
//   * lp/2      : time-indexed LP optimum (section 2 of the paper) halved,
//   * dual/2    : the Theorem 1 scheduler's own feasible dual solution halved,
//   * srpt      : preemptive SRPT relaxation (single machine only),
//   * sum p_min : the trivial bound.
// A second table shows the LP bound sharpening monotonically as the time
// grid refines — the knob experiments can turn when they need a tighter
// certificate.
#include <iostream>

#include "analysis/sweep.hpp"
#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "instance/builders.hpp"
#include "lp/flow_time_lp.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;

Instance small_instance(std::size_t machines, std::size_t jobs, bool pareto,
                        std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_jobs = jobs;
  config.num_machines = machines;
  config.load = 1.1;
  if (pareto) config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = seed;
  return workload::generate_workload(config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "6", "jobs per instance (exact OPT is exponential)");
  cli.flag("reps", "6", "instances per family");
  cli.flag("seed", "3", "root seed");
  cli.flag("grid", "64", "LP time-grid cells");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const auto jobs = static_cast<std::size_t>(cli.integer("jobs"));
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto grid = static_cast<std::size_t>(cli.integer("grid"));

  std::cout << "E11: lower-bound tightness vs exact OPT (n=" << jobs
            << ", reps=" << reps << ", LP grid=" << grid << ")\n"
            << "LB/OPT in [0,1]; 1.0 = exact. Certified bounds only.\n\n";

  struct Family {
    std::string name;
    std::size_t machines;
    bool pareto;
  };
  const std::vector<Family> families = {
      {"1 machine, uniform sizes", 1, false},
      {"1 machine, Pareto sizes", 1, true},
      {"2 unrelated machines, uniform", 2, false},
      {"2 unrelated machines, Pareto", 2, true},
  };

  std::vector<analysis::SweepCase> cases;
  for (const Family& family : families) {
    cases.push_back({family.name, [family, jobs, grid](std::uint64_t case_seed) {
                       analysis::MetricRow row;
                       const Instance instance = small_instance(
                           family.machines, jobs, family.pareto, case_seed);

                       const auto opt = exact_optimal_flow_unrelated(instance);
                       if (!opt.has_value()) return row;  // skip: too large
                       row.set("OPT", *opt);

                       const auto lp_result = lp::solve_flow_time_lp(
                           instance, {.target_intervals = grid});
                       if (lp_result.optimal()) {
                         row.set("lp/2 /OPT", lp_result.lower_bound / *opt);
                       }

                       const auto run =
                           run_rejection_flow(instance, {.epsilon = 0.2});
                       row.set("dual/2 /OPT", run.opt_lower_bound / *opt);

                       if (const auto srpt =
                               lb_srpt_preemptive_single_machine(instance)) {
                         row.set("srpt /OPT", *srpt / *opt);
                       }
                       row.set("sum_pmin /OPT",
                               lb_sum_min_processing(instance) / *opt);
                       return row;
                     }});
  }

  analysis::SweepOptions sweep;
  sweep.repetitions = reps;
  sweep.seed = seed;
  const auto result = analysis::run_sweep(cases, sweep);
  result.to_spread_table("instance family").print(std::cout);

  // ---- Grid refinement series ----
  util::print_section(std::cout, "LP bound vs grid resolution (single instance)");
  const Instance instance = small_instance(2, jobs, true, seed + 1);
  const auto opt = exact_optimal_flow_unrelated(instance);
  util::Table table({"grid cells", "lp objective", "lp/2", "lp/2 / OPT"});
  for (std::size_t cells : {8u, 16u, 32u, 64u, 128u}) {
    const auto lp_result =
        lp::solve_flow_time_lp(instance, {.target_intervals = cells});
    if (!lp_result.optimal()) continue;
    table.row(static_cast<unsigned long>(cells), lp_result.lp_objective,
              lp_result.lower_bound,
              opt ? lp_result.lower_bound / *opt : 0.0);
  }
  table.print(std::cout);

  std::cout << "Reading: lp/2 dominates the scheduler's own dual certificate;\n"
               "refining the grid only raises it (monotone by construction).\n";
  return 0;
}
