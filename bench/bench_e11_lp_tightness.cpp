// E11 — tightness of the certified lower bounds (registered scenario
// "e11_lp_tightness").
//
// Every ratio this repository reports divides an algorithm's cost by a
// CERTIFIED lower bound on OPT, so the looseness of the bound inflates every
// measured ratio. This scenario quantifies that looseness where ground
// truth is computable: on small instances with exact branch-and-bound OPT,
// it reports LB/OPT for each bound —
//   * lp/2      : time-indexed LP optimum (section 2 of the paper) halved,
//   * dual/2    : the Theorem 1 scheduler's own feasible dual solution halved,
//   * srpt      : preemptive SRPT relaxation (single machine only),
//   * sum p_min : the trivial bound.
// Grid-refinement cases show the LP bound sharpening monotonically as the
// time grid refines — the knob experiments can turn when they need a
// tighter certificate. The verdict asserts soundness: LB/OPT <= 1 always.
#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "lp/flow_time_lp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr std::size_t kJobs = 6;  // exact OPT is exponential

Instance small_instance(std::size_t machines, bool pareto,
                        std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_jobs = kJobs;
  config.num_machines = machines;
  config.load = 1.1;
  if (pareto) config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = seed;
  return workload::generate_workload(config);
}

MetricRow run_family_unit(const UnitContext& ctx) {
  MetricRow row;
  const Instance instance =
      small_instance(static_cast<std::size_t>(ctx.param("machines")),
                     ctx.param("pareto") > 0.5, ctx.seed);

  const auto opt = exact_optimal_flow_unrelated(instance);
  if (!opt.has_value()) return row;  // skip: too large
  row.set("opt", *opt);

  const auto lp_result = lp::solve_flow_time_lp(
      instance, {.target_intervals = 64});
  if (lp_result.optimal()) {
    row.set("lp_half_over_opt", lp_result.lower_bound / *opt);
  }

  const auto run = run_rejection_flow(instance, {.epsilon = 0.2});
  row.set("dual_half_over_opt", run.opt_lower_bound / *opt);

  if (const auto srpt = lb_srpt_preemptive_single_machine(instance)) {
    row.set("srpt_over_opt", *srpt / *opt);
  }
  row.set("sum_pmin_over_opt", lb_sum_min_processing(instance) / *opt);
  return row;
}

MetricRow run_grid_unit(const UnitContext& ctx) {
  // One fixed family (2 unrelated machines, Pareto sizes); the case sweeps
  // the LP time-grid resolution on the same per-repetition instance.
  const Instance instance = small_instance(
      2, true, util::derive_seed(ctx.scenario_seed,
                                 9000 + static_cast<std::uint64_t>(
                                            ctx.repetition)));
  const auto opt = exact_optimal_flow_unrelated(instance);
  const auto lp_result = lp::solve_flow_time_lp(
      instance,
      {.target_intervals = static_cast<std::size_t>(ctx.param("grid_cells"))});

  MetricRow row;
  if (!lp_result.optimal()) return row;
  row.set("lp_objective", lp_result.lp_objective);
  row.set("lp_half", lp_result.lower_bound);
  if (opt.has_value()) row.set("lp_half_over_opt", lp_result.lower_bound / *opt);
  return row;
}

Scenario make_e11() {
  Scenario scenario;
  scenario.name = "e11_lp_tightness";
  scenario.description =
      "LB/OPT tightness of every certified bound on exactly-solved instances";
  scenario.tags = {"lp", "duality", "certificates"};
  scenario.repetitions = 4;
  const struct {
    const char* label;
    double machines;
    double pareto;
  } families[] = {
      {"1 machine, uniform sizes", 1, 0},
      {"1 machine, Pareto sizes", 1, 1},
      {"2 unrelated machines, uniform", 2, 0},
      {"2 unrelated machines, Pareto", 2, 1},
  };
  for (const auto& family : families) {
    scenario.grid.push_back(CaseSpec(family.label)
                                .with("machines", family.machines)
                                .with("pareto", family.pareto));
  }
  for (const double cells : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    scenario.grid.push_back(
        CaseSpec("lp grid cells=" + util::Table::num(cells, 4))
            .with("grid_cells", cells));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    return ctx.unit_case.has_param("grid_cells") ? run_grid_unit(ctx)
                                                 : run_family_unit(ctx);
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    // Certified bounds must never exceed OPT.
    Verdict verdict;
    for (const harness::CaseResult& c : report.cases) {
      for (const char* key :
           {"lp_half_over_opt", "dual_half_over_opt", "srpt_over_opt",
            "sum_pmin_over_opt"}) {
        if (c.has_metric(key) && c.metric(key).max() > 1.0 + 1e-9) {
          verdict.pass = false;
          verdict.note = std::string(key) + " exceeds OPT at " + c.spec.label;
          return verdict;
        }
      }
    }
    verdict.note = "every certified bound stays below exact OPT";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e11);

}  // namespace
