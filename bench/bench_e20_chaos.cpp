// E20 — chaos soak (registered scenario "e20_chaos").
//
// The wall behind degraded-mode operation (PR 7): one seeded workload is
// driven through a RANDOMIZED chaos schedule — fails, drains, joins and
// speed changes composed from the scenario seed, with a fixed legal prefix
// guaranteeing every event kind appears — while the session runs under a
// live-window cap with a shed budget, so overload bursts trigger budgeted
// sheds and, once the budget is spent, backpressure with release-backoff
// retries (the documented ingest pattern for bounded feeds). Every cell
// ALSO cuts the same run at the halfway job through a checkpoint/restore
// drill. The verdict asserts, in-process:
//
//  1. Survival: no policy crashes, deadlocks, or leaves a job undecided
//     under the composed chaos (the independent validator runs at drain).
//  2. Overload contract: the live window never exceeds its cap, sheds fire
//     (and stay within budget), and the tight-budget cell actually observes
//     backpressure — overload is exercised, not just configured.
//  3. Storage invisibility: dense / sparse-CSR / generator backends running
//     the same chaos schedule stay byte-identical on the seeded outputs.
//  4. Checkpoint fidelity: the v2 blob (speed events + overload fields)
//     restores to a session whose continued run — including its future shed
//     decisions — reproduces the uninterrupted run exactly.
//
// Outputs that are deterministic ONLY per seed (the chaos schedule moves
// with --seed) are prefixed "seeded_": scripts/compare_bench.py diffs them
// exactly when both reports share a root_seed and skips them otherwise —
// that is what lets CI run this under a rotating OSCHED_FUZZ_SEED-style
// seed while still gating the always-deterministic columns (jobs_accounted,
// ckpt_match, window_respected).
//
// Tags: "perf" + "fleet" + "chaos" + "slow"; CI's stream-fuzz-smoke job
// runs it at --scale 0.05 under the rotating seed with --require-passed.
#include <algorithm>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "harness/registry.hpp"
#include "instance/stream_job.hpp"
#include "service/scheduler_session.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workload/generated_family.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

/// Randomized chaos schedule pinned to release-time quantiles. A fixed
/// legal prefix guarantees at least one throttle, fail, join, drain and
/// recovery regardless of the seed; the tail is drawn from the seed with a
/// membership replay keeping every pick legal and at least two machines
/// active. Same (instance, seed) -> same plan, so the backend triplet runs
/// one schedule and can be byte-compared.
FleetPlan make_chaos_plan(const Instance& instance, std::uint64_t seed,
                          std::uint64_t budget) {
  const auto at = [&](double fraction) {
    const auto idx = static_cast<JobId>(
        fraction * static_cast<double>(instance.num_jobs() - 1));
    return instance.job(idx).release;
  };
  const std::size_t m = instance.num_machines();
  FleetPlan plan;
  plan.events = {{at(0.05), 1, FleetEventKind::kSpeedChange, 0.5},
                 {at(0.10), 0, FleetEventKind::kFail},
                 {at(0.20), 0, FleetEventKind::kJoin},
                 {at(0.25), 2, FleetEventKind::kDrain},
                 {at(0.30), 2, FleetEventKind::kJoin},
                 {at(0.35), 1, FleetEventKind::kSpeedChange, 2.0}};

  // Membership replay of the prefix: 0 active, 1 draining, 2 down.
  std::vector<int> state(m, 0);
  std::size_t active = m;
  util::Rng rng(util::derive_seed(seed, 0xC4A05C4A05ULL));
  const double multipliers[] = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
  Time prev = plan.events.back().time;
  for (double f = 0.40; f <= 0.90; f += 0.05) {
    const Time t = at(f);
    if (t <= prev) continue;  // quantile collision: skip, order stays strict
    prev = t;
    const auto machine =
        static_cast<MachineId>(rng.uniform_int(0, static_cast<int>(m) - 1));
    int& s = state[static_cast<std::size_t>(machine)];
    switch (rng.uniform_int(0, 3)) {
      case 0:  // fail — only while at least two other machines stay active
        if (s == 2 || (s == 0 && active <= 2)) continue;
        if (s == 0) --active;
        s = 2;
        plan.events.push_back({t, machine, FleetEventKind::kFail});
        break;
      case 1:  // drain — same floor on active capacity
        if (s != 0 || active <= 2) continue;
        --active;
        s = 1;
        plan.events.push_back({t, machine, FleetEventKind::kDrain});
        break;
      case 2:  // join
        if (s == 0) continue;
        ++active;
        s = 0;
        plan.events.push_back({t, machine, FleetEventKind::kJoin});
        break;
      default:  // speed — legal in any membership state
        plan.events.push_back(
            {t, machine, FleetEventKind::kSpeedChange,
             multipliers[rng.uniform_int(0, 5)]});
        break;
    }
  }
  plan.rejection_budget = static_cast<std::size_t>(budget);
  return plan;
}

struct FeedOutcome {
  api::RunSummary summary;
  std::size_t sheds = 0;
  std::size_t backpressured = 0;
  std::size_t max_live = 0;
};

/// Feeds the whole instance through a capped session with the bounded-
/// ingest retry contract: a refused arrival is re-offered with its release
/// pushed back one backoff step (events due by the new release fire inside
/// try_submit and free slots), and the feed's release floor tracks the
/// session clock so bumped arrivals keep the stream monotone. Deterministic
/// for a given session configuration — which is what makes the cut/restore
/// drill and the backend triplet comparable.
FeedOutcome feed_with_backoff(service::SchedulerSession& session,
                              const Instance& instance, std::size_t from,
                              std::size_t to, Time backoff) {
  StreamJob job;
  for (std::size_t idx = from; idx < to; ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    job.release = std::max(job.release, session.now());
    while (session.try_submit(job) ==
           service::SubmitOutcome::kBackpressure) {
      job.release += backoff;
    }
  }
  FeedOutcome out;
  out.sheds = session.num_shed();
  out.backpressured = session.num_backpressured();
  out.max_live = session.max_live_jobs();
  out.summary = session.drain();
  return out;
}

MetricRow run_e20_unit(const UnitContext& ctx) {
  const auto algorithm = static_cast<api::Algorithm>(
      static_cast<int>(ctx.param("algorithm")));
  const auto backend = static_cast<StorageBackend>(
      static_cast<int>(ctx.param("backend")));

  workload::ClosedFormConfig config;
  config.num_jobs = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  config.num_machines = static_cast<std::size_t>(ctx.param("m"));
  // SCENARIO seed: the backend triplet must observe the same workload AND
  // the same chaos schedule or the byte-equality verdict is meaningless.
  config.seed = ctx.scenario_seed;
  config.load = 1.6;  // sustained overload: the live window actually fills
  const Instance instance =
      workload::make_closed_form_instance(config, backend);

  service::SessionOptions options;
  options.run.fleet = make_chaos_plan(
      instance, ctx.scenario_seed,
      static_cast<std::uint64_t>(ctx.param("fault_budget")));
  options.live_window_cap = static_cast<std::size_t>(ctx.param("cap"));
  options.shed_budget = static_cast<std::size_t>(ctx.param("shed_budget"));

  const Time span = instance.job(
      static_cast<JobId>(instance.num_jobs() - 1)).release;
  const Time backoff =
      span / static_cast<double>(instance.num_jobs()) * 4.0;

  util::Timer timer;
  service::SchedulerSession uninterrupted(algorithm, instance.num_machines(),
                                          options);
  const FeedOutcome reference = feed_with_backoff(
      uninterrupted, instance, 0, instance.num_jobs(), backoff);
  const double seconds = timer.elapsed_seconds();

  // Checkpoint-cut drill: identical feed, severed at the halfway job and
  // round-tripped through the v2 wire format — the restored session must
  // finish the stream (including every remaining shed decision) exactly as
  // the uninterrupted one did.
  double ckpt_match = 1.0;
  {
    service::SchedulerSession first_half(algorithm, instance.num_machines(),
                                         options);
    const std::size_t cut = instance.num_jobs() / 2;
    StreamJob job;
    for (std::size_t idx = 0; idx < cut; ++idx) {
      fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
      job.release = std::max(job.release, first_half.now());
      while (first_half.try_submit(job) ==
             service::SubmitOutcome::kBackpressure) {
        job.release += backoff;
      }
    }
    std::string error;
    auto restored =
        service::SchedulerSession::restore(first_half.checkpoint(), &error);
    OSCHED_CHECK(restored != nullptr) << error;
    const FeedOutcome resumed = feed_with_backoff(
        *restored, instance, cut, instance.num_jobs(), backoff);
    if (resumed.summary.report.num_rejected !=
            reference.summary.report.num_rejected ||
        resumed.summary.report.num_completed !=
            reference.summary.report.num_completed ||
        resumed.summary.report.total_flow !=
            reference.summary.report.total_flow ||
        resumed.sheds != reference.sheds) {
      ckpt_match = 0.0;
    }
  }

  const api::RunSummary& summary = reference.summary;
  const std::size_t accounted =
      summary.report.num_completed + summary.report.num_rejected;

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(config.num_jobs) / seconds : 0.0);
  // Always-deterministic contract columns (seed-independent expectations).
  row.set("jobs_accounted", accounted == config.num_jobs ? 1.0 : 0.0);
  row.set("ckpt_match", ckpt_match);
  row.set("window_respected",
          reference.max_live <= options.live_window_cap ? 1.0 : 0.0);
  // Deterministic per seed: the chaos schedule moves with --seed, so these
  // are exact-diffable only between same-seed reports (compare_bench.py's
  // seeded_ class).
  row.set("seeded_rejected", static_cast<double>(summary.report.num_rejected));
  row.set("seeded_completed",
          static_cast<double>(summary.report.num_completed));
  row.set("seeded_total_flow", summary.report.total_flow);
  row.set("seeded_sheds", static_cast<double>(reference.sheds));
  row.set("seeded_backpressured",
          static_cast<double>(reference.backpressured));
  row.set("seeded_max_live", static_cast<double>(reference.max_live));
  row.set("seeded_fails", static_cast<double>(summary.fleet.fails));
  row.set("seeded_drains", static_cast<double>(summary.fleet.drains));
  row.set("seeded_joins", static_cast<double>(summary.fleet.joins));
  row.set("seeded_speed_changes",
          static_cast<double>(summary.fleet.speed_changes));
  row.set("seeded_throttles", static_cast<double>(summary.fleet.throttles));
  row.set("seeded_recoveries", static_cast<double>(summary.fleet.recoveries));
  row.set("seeded_min_speed", summary.fleet.min_speed_multiplier);
  row.set("seeded_fault_rejections",
          static_cast<double>(summary.fleet.fault_rejections));
  return row;
}

Scenario make_e20() {
  Scenario scenario;
  scenario.name = "e20_chaos";
  scenario.description =
      "chaos soak: randomized fail/drain/join/speed schedules composed with "
      "overload bursts (window cap + shed budget + backpressure retries) and "
      "a mid-stream checkpoint/restore drill, asserted survivable, "
      "byte-stable across backends and checkpoint-faithful";
  scenario.tags = {"perf", "fleet", "chaos", "slow"};
  scenario.repetitions = 1;
  const struct {
    const char* label;
    api::Algorithm algorithm;
    StorageBackend backend;
    double shed_budget;
  } cells[] = {
      // The backend triplet: one policy, one chaos schedule, three stores.
      {"theorem1 dense", api::Algorithm::kTheorem1, StorageBackend::kDense,
       100000},
      {"theorem1 sparse", api::Algorithm::kTheorem1,
       StorageBackend::kSparseCsr, 100000},
      {"theorem1 generator", api::Algorithm::kTheorem1,
       StorageBackend::kGenerator, 100000},
      // Every other streamable policy under the same chaos, dense store.
      {"theorem2 dense", api::Algorithm::kTheorem2, StorageBackend::kDense,
       100000},
      {"weighted dense", api::Algorithm::kWeightedExt, StorageBackend::kDense,
       100000},
      {"greedy_spt dense", api::Algorithm::kGreedySpt, StorageBackend::kDense,
       100000},
      {"fifo dense", api::Algorithm::kFifo, StorageBackend::kDense, 100000},
      {"immediate dense", api::Algorithm::kImmediateReject,
       StorageBackend::kDense, 100000},
      // Tight budget: sheds run dry mid-burst, so saturation must surface
      // as backpressure and the retry loop carries the feed through.
      {"theorem1 dense tightbudget", api::Algorithm::kTheorem1,
       StorageBackend::kDense, 2},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(
        CaseSpec(cell.label)
            .with("algorithm", static_cast<double>(cell.algorithm))
            .with("backend", static_cast<double>(cell.backend))
            .with("n", 20000)
            .with("m", 16)
            .with("cap", 18)
            .with("shed_budget", cell.shed_budget)
            .with("fault_budget", 64));
  }
  scenario.run_unit = run_e20_unit;
  scenario.evaluate = [](const ScenarioReport& report) {
    for (const auto& result : report.cases) {
      // Contract 1 + 2: survived, every job accounted, window cap held, and
      // the restored half-run finished exactly like the uninterrupted one.
      for (const char* metric :
           {"jobs_accounted", "ckpt_match", "window_respected"}) {
        if (result.metric(metric).mean() != 1.0) {
          return Verdict{false, result.spec.label + ": " + metric + " != 1"};
        }
      }
      // The chaos prefix guarantees every event kind fires under any seed.
      if (result.metric("seeded_fails").mean() < 1.0 ||
          result.metric("seeded_drains").mean() < 1.0 ||
          result.metric("seeded_joins").mean() < 2.0 ||
          result.metric("seeded_throttles").mean() < 1.0 ||
          result.metric("seeded_recoveries").mean() < 1.0) {
        return Verdict{false, result.spec.label +
                                  ": chaos schedule not fully observed"};
      }
    }
    // Contract 2: overload actually bit, in both regimes.
    if (report.case_result("theorem1 dense").metric("seeded_sheds").mean() <
        1.0) {
      return Verdict{false, "theorem1 dense: window cap never triggered a "
                            "shed — overload not exercised"};
    }
    if (report.case_result("theorem1 dense tightbudget")
            .metric("seeded_backpressured")
            .mean() < 1.0) {
      return Verdict{false, "tightbudget cell: shed budget never ran dry — "
                            "backpressure not exercised"};
    }
    // Contract 3: the backend triplet scheduled byte-identically.
    const auto& dense = report.case_result("theorem1 dense");
    for (const char* twin : {"theorem1 sparse", "theorem1 generator"}) {
      const auto& compact = report.case_result(twin);
      for (const char* metric : {"seeded_rejected", "seeded_completed",
                                 "seeded_total_flow", "seeded_sheds"}) {
        const double a = dense.metric(metric).mean();
        const double b = compact.metric(metric).mean();
        if (a != b) {
          return Verdict{false, std::string("backend mismatch on ") + metric +
                                    " (theorem1 dense vs " + twin +
                                    "): " + std::to_string(a) + " vs " +
                                    std::to_string(b)};
        }
      }
    }
    return Verdict{true,
                   "every policy survived the chaos soak; window caps held; "
                   "sheds and backpressure both exercised; backends "
                   "byte-identical; checkpoint cuts reproduced every run"};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e20);

}  // namespace
