// E22 — adaptive overload soak (registered scenario "e22_adaptive").
//
// The wall behind the adaptive overload policy (PR 9): one seeded workload
// is BURST-WARPED (a monotone sinusoidal time warp modulates the arrival
// rate by roughly ±75% around its mean) and driven through capped sessions
// in two regimes — the PR 7 fixed rule (the oracle) and the adaptive stack
// (rate-tuned live-window cap, ε-charged sheds booked into the paper's
// rejection allowance) — plus a multi-tenant shard-driver leg where one hot
// tenant bursts against deficit-round-robin admission. Every session cell
// also cuts its run at the halfway job through a checkpoint/restore drill
// over the v4 wire format. The verdict asserts, in-process and
// seed-independently:
//
//  1. Survival and accounting: every job is completed or rejected; no cell
//     crashes or deadlocks (the fairness leg runs under 1, 2 and 4
//     workers).
//  2. Adaptive contract: the tuned cap never leaves [min_cap, max_cap]
//     (max_live <= max_cap), the ε-charged shed count stays inside
//     floor(2·ε·n), and the burst warp actually drives the tuner off its
//     seed cap (the cap moves at least once per adaptive cell).
//  3. Checkpoint fidelity: the v4 blob (shed policy + adaptive-cap
//     configuration) restores to a session whose continued run — including
//     every remaining cap move and charged shed — reproduces the
//     uninterrupted run exactly.
//  4. Fairness: the hot tenant never stages more than 2×quantum ops in a
//     round, the cold tenants are never deferred, and the per-shard
//     outcome set is identical under 1, 2 and 4 workers.
//
// Outputs that are deterministic ONLY per seed (the workload moves with
// --seed) are prefixed "seeded_": scripts/compare_bench.py diffs them
// exactly when both reports share a root_seed and skips them otherwise.
// The per-shard overload counters of the fairness leg ride in that class
// (seeded_hot_deferred, seeded_shard_shed_spread), which is what lets CI
// run this under the rotating GITHUB_RUN_ID seed while still gating the
// always-deterministic columns.
//
// Tags: "perf" + "overload" + "adaptive" + "slow"; CI's stream-fuzz-smoke
// job runs it at --scale 0.05 under the rotating seed with
// --require-passed.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "harness/registry.hpp"
#include "instance/stream_job.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "util/timer.hpp"
#include "workload/generated_family.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

/// Monotone burst warp: t -> t + a·span·sin(2πt/span) with a = 0.12 keeps
/// the derivative in [1 - 0.24π, 1 + 0.24π] ⊂ (0.24, 1.76) — release order
/// is preserved while the instantaneous arrival rate swings by ±75% around
/// its mean, which is exactly the regime a rate-tuned cap exists for.
Time burst_warp(Time t, Time span) {
  constexpr double kAmplitude = 0.12;
  if (span <= 0.0) return t;
  return t + kAmplitude * span * std::sin(2.0 * 3.141592653589793 * t / span);
}

struct FeedOutcome {
  api::RunSummary summary;
  std::size_t sheds = 0;
  std::size_t backpressured = 0;
  std::size_t max_live = 0;
  std::size_t final_cap = 0;
  std::size_t min_cap_seen = 0;
  std::size_t max_cap_seen = 0;
  std::size_t submitted = 0;
};

/// Feeds jobs [from, to) of the burst-warped instance through the session
/// with the bounded-ingest retry contract (release-backoff on
/// backpressure, floor at the session clock), sampling the effective cap
/// after every offer. Deterministic for a given configuration — the
/// checkpoint drill depends on it.
void feed_with_backoff(service::SchedulerSession& session,
                       const Instance& instance, std::size_t from,
                       std::size_t to, Time span, Time backoff,
                       FeedOutcome* out) {
  StreamJob job;
  for (std::size_t idx = from; idx < to; ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    job.release = std::max(burst_warp(job.release, span), session.now());
    while (session.try_submit(job) ==
           service::SubmitOutcome::kBackpressure) {
      job.release += backoff;
    }
    const std::size_t cap = session.current_window_cap();
    out->min_cap_seen = std::min(out->min_cap_seen, cap);
    out->max_cap_seen = std::max(out->max_cap_seen, cap);
  }
  out->sheds = session.num_shed();
  out->backpressured = session.num_backpressured();
  out->max_live = session.max_live_jobs();
  out->final_cap = session.current_window_cap();
  out->submitted = session.num_submitted();
}

MetricRow run_session_cell(const UnitContext& ctx) {
  const auto algorithm = static_cast<api::Algorithm>(
      static_cast<int>(ctx.param("algorithm")));
  const bool adaptive = ctx.param("adaptive") != 0.0;
  const bool charged = ctx.param("charged") != 0.0;

  workload::ClosedFormConfig config;
  config.num_jobs = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  config.num_machines = static_cast<std::size_t>(ctx.param("m"));
  config.seed = ctx.scenario_seed;
  config.load = 1.6;  // sustained overload: the cap genuinely binds
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const Time span =
      instance.job(static_cast<JobId>(instance.num_jobs() - 1)).release;
  const Time backoff = span / static_cast<double>(instance.num_jobs()) * 4.0;

  service::SessionOptions options;
  options.run.epsilon = 0.45;
  options.live_window_cap = static_cast<std::size_t>(ctx.param("cap"));
  if (adaptive) {
    options.adaptive_cap.enabled = true;
    options.adaptive_cap.min_cap = 8;
    options.adaptive_cap.max_cap = 24;
    options.adaptive_cap.window = span / 12.0 + 1e-9;
    options.adaptive_cap.target_delay =
        16.0 * span / static_cast<double>(instance.num_jobs()) + 1e-9;
    options.adaptive_cap.hysteresis = 1;
  }
  if (charged) {
    options.shed_policy = service::ShedPolicy::kEpsilonCharged;
  } else {
    options.shed_budget = 100000;  // absorbing, like the e20 oracle cells
  }

  util::Timer timer;
  service::SchedulerSession uninterrupted(algorithm, instance.num_machines(),
                                          options);
  FeedOutcome reference;
  reference.min_cap_seen = uninterrupted.current_window_cap();
  reference.max_cap_seen = reference.min_cap_seen;
  feed_with_backoff(uninterrupted, instance, 0, instance.num_jobs(), span,
                    backoff, &reference);
  reference.summary = uninterrupted.drain();
  const double seconds = timer.elapsed_seconds();

  // Checkpoint-cut drill over wire v4: sever the identical feed at the
  // halfway job; the restored session must re-derive the estimator and
  // the remaining charged-shed/cap decisions exactly.
  double ckpt_match = 1.0;
  {
    service::SchedulerSession first_half(algorithm, instance.num_machines(),
                                         options);
    FeedOutcome half;
    half.min_cap_seen = first_half.current_window_cap();
    half.max_cap_seen = half.min_cap_seen;
    const std::size_t cut = instance.num_jobs() / 2;
    feed_with_backoff(first_half, instance, 0, cut, span, backoff, &half);
    std::string error;
    auto restored =
        service::SchedulerSession::restore(first_half.checkpoint(), &error);
    OSCHED_CHECK(restored != nullptr) << error;
    if (restored->current_window_cap() != first_half.current_window_cap() ||
        restored->num_shed() != first_half.num_shed()) {
      ckpt_match = 0.0;
    }
    FeedOutcome resumed;
    resumed.min_cap_seen = restored->current_window_cap();
    resumed.max_cap_seen = resumed.min_cap_seen;
    feed_with_backoff(*restored, instance, cut, instance.num_jobs(), span,
                      backoff, &resumed);
    resumed.summary = restored->drain();
    if (resumed.summary.report.num_rejected !=
            reference.summary.report.num_rejected ||
        resumed.summary.report.num_completed !=
            reference.summary.report.num_completed ||
        resumed.summary.report.total_flow !=
            reference.summary.report.total_flow ||
        resumed.sheds != reference.sheds ||
        resumed.final_cap != reference.final_cap) {
      ckpt_match = 0.0;
    }
  }

  const api::RunSummary& summary = reference.summary;
  const std::size_t accounted =
      summary.report.num_completed + summary.report.num_rejected;
  // ε-charged allowance: sheds alone must fit inside the paper's
  // floor(2·ε·n) (the policy's own rule rejections only tighten it).
  const double allowance =
      std::floor(2.0 * options.run.epsilon *
                 static_cast<double>(reference.submitted + 1));
  const bool budget_ok =
      charged ? static_cast<double>(reference.sheds) <= allowance
              : reference.sheds <= options.shed_budget;
  const std::size_t cap_floor =
      adaptive ? options.adaptive_cap.min_cap : options.live_window_cap;
  const std::size_t cap_ceil =
      adaptive ? options.adaptive_cap.max_cap : options.live_window_cap;

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(config.num_jobs) / seconds : 0.0);
  // Always-deterministic contract columns (seed-independent expectations).
  row.set("jobs_accounted", accounted == config.num_jobs ? 1.0 : 0.0);
  row.set("ckpt_match", ckpt_match);
  row.set("window_respected", reference.max_live <= cap_ceil ? 1.0 : 0.0);
  row.set("cap_bounded", reference.min_cap_seen >= cap_floor &&
                                 reference.max_cap_seen <= cap_ceil
                             ? 1.0
                             : 0.0);
  row.set("budget_respected", budget_ok ? 1.0 : 0.0);
  row.set("cap_moved",
          !adaptive || reference.min_cap_seen != reference.max_cap_seen
              ? 1.0
              : 0.0);
  // Deterministic per seed (the workload moves with --seed).
  row.set("seeded_rejected", static_cast<double>(summary.report.num_rejected));
  row.set("seeded_completed",
          static_cast<double>(summary.report.num_completed));
  row.set("seeded_total_flow", summary.report.total_flow);
  row.set("seeded_sheds", static_cast<double>(reference.sheds));
  row.set("seeded_backpressured",
          static_cast<double>(reference.backpressured));
  row.set("seeded_max_live", static_cast<double>(reference.max_live));
  row.set("seeded_final_cap", static_cast<double>(reference.final_cap));
  return row;
}

/// One full multi-tenant DRR run: four shards, shard 0 hot (every second
/// job), three cold tenants splitting the rest. Each flush round offers the
/// hot backlog until the driver defers it and paces every cold tenant at
/// two ops — under the quantum, so a deferred cold tenant is a fairness
/// bug, not scheduling weather. Returns per-shard reports plus the
/// producer-side counters.
struct FairnessOutcome {
  std::vector<api::RunSummary> results;
  std::vector<service::ShardCounters> counters;
  bool hot_clipped = true;
  bool cold_deferred = false;
  std::size_t rounds = 0;
};

FairnessOutcome run_fairness(const Instance& instance, Time span,
                             std::size_t threads, std::size_t quantum) {
  constexpr std::size_t kShards = 4;
  service::ShardDriverOptions options;
  options.threads = threads;
  options.fair_quantum = quantum;
  options.session.live_window_cap = 12;
  options.session.shed_budget = instance.num_jobs();  // absorbing
  service::ShardDriver driver(api::Algorithm::kGreedySpt, kShards,
                              instance.num_machines(), options);

  std::vector<std::vector<StreamJob>> queues(kShards);
  StreamJob job;
  for (std::size_t idx = 0; idx < instance.num_jobs(); ++idx) {
    fill_stream_job(instance, static_cast<JobId>(idx), 0.0, &job);
    job.release = burst_warp(job.release, span);
    const std::size_t shard =
        idx % 2 == 0 ? 0 : 1 + (idx / 2) % (kShards - 1);
    queues[shard].push_back(job);
  }

  FairnessOutcome out;
  std::vector<std::size_t> cursor(kShards, 0);
  for (;;) {
    bool any_left = false;
    for (std::size_t s = 0; s < kShards; ++s) {
      any_left = any_left || cursor[s] < queues[s].size();
    }
    if (!any_left) break;
    ++out.rounds;
    // Hot tenant: burst until the round's credit runs out.
    std::size_t staged = 0;
    while (cursor[0] < queues[0].size()) {
      const auto outcome = driver.try_submit(0, queues[0][cursor[0]]);
      if (!service::stage_ok(outcome)) break;
      ++cursor[0];
      ++staged;
    }
    if (staged > 2 * quantum) out.hot_clipped = false;
    // Cold tenants: a paced trickle that must never be deferred.
    for (std::size_t s = 1; s < kShards; ++s) {
      for (std::size_t k = 0; k < 2 && cursor[s] < queues[s].size(); ++k) {
        const auto outcome = driver.try_submit(s, queues[s][cursor[s]]);
        if (outcome == service::StageOutcome::kDeferred) {
          out.cold_deferred = true;
          break;
        }
        OSCHED_CHECK(service::stage_ok(outcome));
        ++cursor[s];
      }
    }
    driver.flush();
  }
  out.results = driver.drain_all();
  out.counters.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    out.counters.push_back(driver.shard_counters(s));
  }
  return out;
}

MetricRow run_fairness_cell(const UnitContext& ctx) {
  workload::ClosedFormConfig config;
  config.num_jobs = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  config.num_machines = static_cast<std::size_t>(ctx.param("m"));
  config.seed = ctx.scenario_seed;
  config.load = 1.6;
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kDense);
  const Time span =
      instance.job(static_cast<JobId>(instance.num_jobs() - 1)).release;
  const auto quantum = static_cast<std::size_t>(ctx.param("quantum"));

  util::Timer timer;
  const FairnessOutcome inline_run = run_fairness(instance, span, 1, quantum);
  const double seconds = timer.elapsed_seconds();
  const FairnessOutcome two = run_fairness(instance, span, 2, quantum);
  const FairnessOutcome four = run_fairness(instance, span, 4, quantum);

  // Worker-count invariance: every shard's outcome (schedule-level totals
  // and overload counters) must be identical under 1, 2 and 4 workers.
  bool invariant = inline_run.results.size() == two.results.size() &&
                   inline_run.results.size() == four.results.size();
  std::size_t accounted = 0;
  std::size_t total_sheds = 0;
  std::size_t min_shard_sheds = instance.num_jobs();
  std::size_t max_shard_sheds = 0;
  for (std::size_t s = 0; invariant && s < inline_run.results.size(); ++s) {
    const auto& a = inline_run.results[s].report;
    for (const FairnessOutcome* other : {&two, &four}) {
      const auto& b = other->results[s].report;
      if (a.num_completed != b.num_completed ||
          a.num_rejected != b.num_rejected ||
          a.total_flow != b.total_flow ||
          inline_run.counters[s].sheds != other->counters[s].sheds) {
        invariant = false;
      }
    }
    accounted += a.num_completed + a.num_rejected;
    total_sheds += inline_run.counters[s].sheds;
    min_shard_sheds = std::min(min_shard_sheds, inline_run.counters[s].sheds);
    max_shard_sheds = std::max(max_shard_sheds, inline_run.counters[s].sheds);
  }

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(config.num_jobs) / seconds : 0.0);
  row.set("jobs_accounted", accounted == config.num_jobs ? 1.0 : 0.0);
  row.set("fair_invariant", invariant ? 1.0 : 0.0);
  row.set("hot_clipped", inline_run.hot_clipped && two.hot_clipped &&
                                 four.hot_clipped
                             ? 1.0
                             : 0.0);
  row.set("cold_never_deferred", !inline_run.cold_deferred &&
                                         !two.cold_deferred &&
                                         !four.cold_deferred
                                     ? 1.0
                                     : 0.0);
  // Per-shard overload counters, diffable per seed.
  row.set("seeded_hot_deferred",
          static_cast<double>(inline_run.counters[0].deferred));
  row.set("seeded_hot_staged",
          static_cast<double>(inline_run.counters[0].staged_ops));
  // From the 2-worker run: inline mode never hands off a batch.
  row.set("seeded_hot_max_batch",
          static_cast<double>(two.counters[0].max_batch_ops));
  row.set("seeded_total_sheds", static_cast<double>(total_sheds));
  row.set("seeded_shard_shed_spread",
          static_cast<double>(max_shard_sheds - min_shard_sheds));
  row.set("seeded_rounds", static_cast<double>(inline_run.rounds));
  return row;
}

MetricRow run_e22_unit(const UnitContext& ctx) {
  return ctx.param("fairness") != 0.0 ? run_fairness_cell(ctx)
                                      : run_session_cell(ctx);
}

Scenario make_e22() {
  Scenario scenario;
  scenario.name = "e22_adaptive";
  scenario.description =
      "adaptive overload soak: burst-warped arrivals against rate-tuned "
      "window caps and ε-charged sheds (fixed-budget oracle alongside), "
      "v4 checkpoint cuts mid-overload, and DRR multi-tenant fairness "
      "asserted worker-count invariant";
  scenario.tags = {"perf", "overload", "adaptive", "slow"};
  scenario.repetitions = 1;
  const struct {
    const char* label;
    api::Algorithm algorithm;
    bool adaptive;
    bool charged;
  } cells[] = {
      // The oracle: PR 7 fixed rule, fixed cap — the regime every earlier
      // baseline (e17/e20/e21) pins bit-identical.
      {"theorem1 fixed oracle", api::Algorithm::kTheorem1, false, false},
      // The tentpole stack, alone and combined.
      {"theorem1 epscharged", api::Algorithm::kTheorem1, false, true},
      {"theorem1 adaptive", api::Algorithm::kTheorem1, true, false},
      {"theorem1 adaptive epscharged", api::Algorithm::kTheorem1, true, true},
      // Policies without their own charged victim use the documented
      // fallback under the derived budget.
      {"greedy_spt adaptive epscharged", api::Algorithm::kGreedySpt, true,
       true},
      {"weighted adaptive epscharged", api::Algorithm::kWeightedExt, true,
       true},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(
        CaseSpec(cell.label)
            .with("fairness", 0)
            .with("algorithm", static_cast<double>(cell.algorithm))
            .with("adaptive", cell.adaptive ? 1.0 : 0.0)
            .with("charged", cell.charged ? 1.0 : 0.0)
            .with("n", 20000)
            .with("m", 16)
            .with("cap", 16));
  }
  scenario.grid.push_back(CaseSpec("multitenant drr")
                              .with("fairness", 1)
                              .with("algorithm", 0)
                              .with("adaptive", 0)
                              .with("charged", 0)
                              .with("n", 12000)
                              .with("m", 8)
                              .with("cap", 12)
                              .with("quantum", 8));
  scenario.run_unit = run_e22_unit;
  scenario.evaluate = [](const ScenarioReport& report) {
    for (const auto& result : report.cases) {
      const bool fairness = result.spec.param("fairness") != 0.0;
      const std::vector<const char*> metrics =
          fairness ? std::vector<const char*>{"jobs_accounted",
                                              "fair_invariant", "hot_clipped",
                                              "cold_never_deferred"}
                   : std::vector<const char*>{"jobs_accounted", "ckpt_match",
                                              "window_respected",
                                              "cap_bounded",
                                              "budget_respected", "cap_moved"};
      for (const char* metric : metrics) {
        if (result.metric(metric).mean() != 1.0) {
          return Verdict{false, result.spec.label + ": " + metric + " != 1"};
        }
      }
    }
    // Overload must actually bite in the flagship adaptive cell — load 1.6
    // against max_cap 24 saturates under any seed.
    if (report.case_result("theorem1 adaptive epscharged")
            .metric("seeded_sheds")
            .mean() +
            report.case_result("theorem1 adaptive epscharged")
                .metric("seeded_backpressured")
                .mean() <
        1.0) {
      return Verdict{false,
                     "adaptive epscharged cell: overload never engaged"};
    }
    return Verdict{true,
                   "adaptive caps stayed bounded and moved with the bursts; "
                   "ε-charged sheds stayed inside the paper allowance; v4 "
                   "checkpoint cuts reproduced every run; DRR held hot "
                   "tenants to their quantum, never starved cold ones, and "
                   "stayed worker-count invariant"};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e22);

}  // namespace
