// E13 — the Omega(Delta) blow-up of no-rejection schedulers, and how the
// Theorem 1 scheduler escapes it.
//
// Complements E2 (Lemma 1: even WITH immediate rejection the ratio is
// Omega(sqrt(Delta))): here the adversary is the classical
// long-job-then-unit-stream family against which any deterministic online
// non-preemptive algorithm that must finish every job pays Omega(Delta).
// The table sweeps Delta = L and reports, per policy, total flow divided by
// the adversary's explicit witness schedule (an upper bound on OPT, so the
// column is a certified lower bound on each policy's competitive ratio).
#include <iostream>

#include "baselines/immediate_rejection.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/flow/rejection_flow.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/no_reject_lower_bound.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("eps", "0.25", "Theorem 1 rejection parameter");
  cli.flag("Ls", "8,16,32,64,128", "long-job lengths (Delta values)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");
  const std::vector<double> Ls = cli.num_list("Ls");

  std::cout << "E13: Omega(Delta) lower bound for no-rejection policies\n"
            << "ratio = policy flow / adversary witness flow (certified "
               "ratio LB)\n\n";

  util::Table table({"Delta=L", "greedy-SPT", "FIFO", "immediate-reject",
                     "theorem1(eps=" + util::Table::num(eps, 3) + ")",
                     "t1 rejected"});

  for (double L : Ls) {
    workload::NoRejectLbConfig config;
    config.L = L;
    // Adapt the stream to the greedy's committed start; all policies are
    // then measured on that same final instance.
    const auto outcome = run_no_reject_lower_bound(
        [](const Instance& instance) { return run_greedy_spt(instance); },
        config);
    const Instance& instance = outcome.instance;
    const double witness = outcome.adversary_flow;

    const Schedule greedy = run_greedy_spt(instance);
    const Schedule fifo = run_fifo(instance);
    const auto immediate = run_immediate_rejection(instance, {.eps = eps});
    const auto t1 = run_rejection_flow(instance, {.epsilon = eps});

    table.row(L, greedy.total_flow(instance) / witness,
              fifo.total_flow(instance) / witness,
              immediate.schedule.total_flow(instance) / witness,
              t1.schedule.total_flow(instance) / witness,
              static_cast<unsigned long>(t1.schedule.num_rejected()));
  }
  table.print(std::cout);

  std::cout << "Reading: the no-rejection columns grow linearly with Delta\n"
               "(the committed elephant holds the unit stream hostage); the\n"
               "Theorem 1 column stays flat — Rule 1 interrupts the elephant\n"
               "after ceil(1/eps) arrivals, which is the paper's point.\n";
  return 0;
}
