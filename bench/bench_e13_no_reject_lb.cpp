// E13 — the Omega(Delta) blow-up of no-rejection schedulers (registered
// scenario "e13_no_reject_lb"), and how the Theorem 1 scheduler escapes it.
//
// Complements E2 (Lemma 1: even WITH immediate rejection the ratio is
// Omega(sqrt(Delta))): here the adversary is the classical
// long-job-then-unit-stream family against which any deterministic online
// non-preemptive algorithm that must finish every job pays Omega(Delta).
// Cases sweep Delta = L and report, per policy, total flow divided by the
// adversary's explicit witness schedule (an upper bound on OPT, so the
// column is a certified lower bound on each policy's competitive ratio).
// The no-rejection columns grow linearly with Delta (the committed elephant
// holds the unit stream hostage); the Theorem 1 column stays flat — Rule 1
// interrupts the elephant after ceil(1/eps) arrivals, the paper's point.
#include "baselines/immediate_rejection.hpp"
#include "baselines/list_scheduler.hpp"
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/no_reject_lower_bound.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kEps = 0.25;

Scenario make_e13() {
  Scenario scenario;
  scenario.name = "e13_no_reject_lb";
  scenario.description =
      "Omega(Delta) lower bound for no-rejection policies; Theorem 1 stays flat";
  scenario.tags = {"flow", "lower-bound", "paper", "smoke"};
  scenario.repetitions = 1;  // the adversary is deterministic
  for (const double L : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    scenario.grid.push_back(
        CaseSpec("Delta=" + util::Table::num(L, 4)).with("L", L));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    workload::NoRejectLbConfig config;
    config.L = ctx.param("L");
    // Adapt the stream to the greedy's committed start; all policies are
    // then measured on that same final instance.
    const auto outcome = run_no_reject_lower_bound(
        [](const Instance& instance) { return run_greedy_spt(instance); },
        config);
    const Instance& instance = outcome.instance;
    const double witness = outcome.adversary_flow;

    const auto t1 = run_rejection_flow(instance, {.epsilon = kEps});
    MetricRow row;
    row.set("greedy_spt_ratio",
            run_greedy_spt(instance).total_flow(instance) / witness);
    row.set("fifo_ratio", run_fifo(instance).total_flow(instance) / witness);
    row.set("immediate_ratio",
            run_immediate_rejection(instance, {.eps = kEps})
                    .schedule.total_flow(instance) /
                witness);
    row.set("theorem1_ratio", t1.schedule.total_flow(instance) / witness);
    row.set("t1_rejected", static_cast<double>(t1.schedule.num_rejected()));
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    // The greedy column must grow ~linearly in Delta; the Theorem 1 column
    // must not grow with it.
    std::vector<double> Ls, greedy_ratios;
    double t1_first = 0.0, t1_last = 0.0;
    for (const harness::CaseResult& c : report.cases) {
      Ls.push_back(c.spec.param("L"));
      greedy_ratios.push_back(c.metric("greedy_spt_ratio").mean());
      t1_last = c.metric("theorem1_ratio").mean();
      if (Ls.size() == 1) t1_first = t1_last;
    }
    const double slope = util::loglog_slope(Ls, greedy_ratios);
    Verdict verdict;
    verdict.pass = slope > 0.5 && t1_last < 2.0 * t1_first + 1.0;
    verdict.note = "greedy growth exponent " + util::Table::num(slope, 3) +
                   " (expect ~1); theorem1 " + util::Table::num(t1_first, 3) +
                   " -> " + util::Table::num(t1_last, 3);
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e13);

}  // namespace
