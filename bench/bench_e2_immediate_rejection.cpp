// E2 — Lemma 1 (registered scenario "e2_immediate_rejection").
//
// Immediate-rejection policies blow up as sqrt(Delta); the paper's
// late-rejection algorithm stays flat on the same instances. The adaptive
// two-phase adversary is run against the budgeted immediate-rejection
// policy for growing L (Delta = L^2); the measured ratio vs the adversary's
// explicit witness schedule should grow linearly in L = sqrt(Delta)
// (log-log slope ~ 1), while Theorem 1's algorithm — which rejects the
// RUNNING elephant when the flood arrives — keeps a small constant ratio.
#include <cmath>

#include "baselines/immediate_rejection.hpp"
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "metrics/ratio.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/lemma1_adversary.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kEps = 0.25;

Scenario make_e2() {
  Scenario scenario;
  scenario.name = "e2_immediate_rejection";
  scenario.description =
      "Lemma 1: immediate rejection is Omega(sqrt(Delta))-competitive";
  scenario.tags = {"flow", "lemma1", "lower-bound", "paper", "smoke"};
  scenario.repetitions = 1;  // the adversary is deterministic
  for (const double L : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    scenario.grid.push_back(
        CaseSpec("L=" + util::Table::num(L, 3)).with("L", L).with("eps", kEps));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    const double eps = ctx.param("eps");
    workload::Lemma1Config config;
    config.eps = eps;
    config.L = ctx.param("L");
    const workload::PolicyRunner policy = [eps](const Instance& instance) {
      return run_immediate_rejection(instance, {.eps = eps, .patience = 3.0})
          .schedule;
    };
    const auto outcome = run_lemma1_adversary(policy, config);
    const double immediate_flow =
        policy(outcome.instance).total_flow(outcome.instance);
    const auto t1 = run_rejection_flow(outcome.instance, {.epsilon = eps});

    MetricRow row;
    row.set("delta", outcome.delta);
    row.set("jobs", static_cast<double>(outcome.instance.num_jobs()));
    row.set("immediate_ratio", immediate_flow / outcome.adversary_flow);
    row.set("theorem1_ratio",
            t1.schedule.total_flow(outcome.instance) / outcome.adversary_flow);
    row.set("sqrt_delta", std::sqrt(outcome.delta));
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    std::vector<double> Ls, immediate_ratios;
    double max_t1_ratio = 0.0;
    for (const harness::CaseResult& c : report.cases) {
      Ls.push_back(c.spec.param("L"));
      immediate_ratios.push_back(c.metric("immediate_ratio").mean());
      max_t1_ratio = std::max(max_t1_ratio, c.metric("theorem1_ratio").max());
    }
    const double slope = util::loglog_slope(Ls, immediate_ratios);
    Verdict verdict;
    verdict.pass = slope > 0.5 && max_t1_ratio < theorem1_ratio_bound(kEps);
    verdict.note = "immediate-policy growth exponent " +
                   util::Table::num(slope, 3) + " (lemma predicts ~1); t1 max " +
                   util::Table::num(max_t1_ratio, 3);
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e2);

}  // namespace
