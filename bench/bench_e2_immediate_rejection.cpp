// E2 — Lemma 1: immediate-rejection policies blow up as sqrt(Delta); the
// paper's late-rejection algorithm stays flat on the same instances.
//
// The adaptive two-phase adversary is run against the budgeted
// immediate-rejection policy for growing L (Delta = L^2); the measured
// ratio vs the adversary's explicit witness schedule should grow linearly
// in L = sqrt(Delta) (log-log slope ~ 1), while Theorem 1's algorithm —
// which rejects the RUNNING elephant when the flood arrives — keeps a small
// constant ratio.
#include <iostream>

#include "baselines/immediate_rejection.hpp"
#include "core/flow/rejection_flow.hpp"
#include "metrics/ratio.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/lemma1_adversary.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("eps", "0.25", "rejection budget of both policies");
  cli.flag("L", "4,8,16,32,64", "big-job lengths (Delta = L^2)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");

  std::cout << "E2: Lemma 1 — any immediate rejection policy is "
               "Omega(sqrt(Delta))-competitive\n"
            << "    adaptive two-phase instance, single machine, eps=" << eps
            << "\n";

  util::Table table({"L", "Delta", "n", "immediate ratio", "theorem1 ratio",
                     "sqrt(Delta)"});
  std::vector<double> Ls, immediate_ratios;
  double max_t1_ratio = 0.0;
  for (double L : cli.num_list("L")) {
    workload::Lemma1Config config;
    config.eps = eps;
    config.L = L;
    const workload::PolicyRunner policy = [&](const Instance& instance) {
      return run_immediate_rejection(instance, {.eps = eps, .patience = 3.0})
          .schedule;
    };
    const auto outcome = run_lemma1_adversary(policy, config);
    const double immediate_flow =
        policy(outcome.instance).total_flow(outcome.instance);
    const double immediate_ratio = immediate_flow / outcome.adversary_flow;

    const auto t1 = run_rejection_flow(outcome.instance, {.epsilon = eps});
    const double t1_ratio =
        t1.schedule.total_flow(outcome.instance) / outcome.adversary_flow;
    max_t1_ratio = std::max(max_t1_ratio, t1_ratio);

    table.row(L, outcome.delta,
              static_cast<int>(outcome.instance.num_jobs()), immediate_ratio,
              t1_ratio, std::sqrt(outcome.delta));
    Ls.push_back(L);
    immediate_ratios.push_back(immediate_ratio);
  }
  table.print(std::cout);

  const double slope = util::loglog_slope(Ls, immediate_ratios);
  std::cout << "immediate-policy growth exponent vs sqrt(Delta): " << slope
            << " (lemma predicts ~1)\n"
            << "theorem 1 max ratio across the sweep: " << max_t1_ratio
            << " (stays bounded; its guarantee here is "
            << theorem1_ratio_bound(eps) << ")\n";
  const bool pass = slope > 0.5 && max_t1_ratio < theorem1_ratio_bound(eps);
  std::cout << (pass ? "E2 PASS: immediate policies diverge, Theorem 1 does not\n"
                     : "E2 FAIL\n");
  return pass ? 0 : 1;
}
