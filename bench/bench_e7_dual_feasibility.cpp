// E7 — Lemma 4 / Lemma 6 / Lemma 7: the dual solutions constructed by all
// three algorithms are feasible, verified constraint-by-constraint by
// independent checkers on randomized instances.
//
// Reported numbers are max violations (LHS - RHS over all sampled
// constraints): feasibility means <= 0 up to float noise. This is the
// empirical companion of the paper's three feasibility lemmas — and the
// soundness certificate behind every "ratio vs dual LB" column in E1/E3/E4.
#include <iostream>

#include "core/energy_flow/energy_flow.hpp"
#include "core/flow/rejection_flow.hpp"
#include "duality/config_dual_check.hpp"
#include "duality/energy_flow_dual_check.hpp"
#include "duality/flow_dual_check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("seeds", "6", "instances per lemma row");
  cli.flag("jobs", "250", "jobs per flow instance");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const auto seeds = static_cast<std::size_t>(cli.integer("seeds"));
  const auto jobs = static_cast<std::size_t>(cli.integer("jobs"));

  std::cout << "E7: dual feasibility (Lemmas 4, 6, 7) on randomized "
               "instances\n    max violation <= 0 (+float noise) certifies "
               "the lower bounds used by E1/E3/E4\n";

  struct Row {
    std::string lemma;
    std::string params;
    double max_violation = -1e300;
    std::size_t constraints = 0;
  };
  std::vector<Row> rows;

  // Lemma 4 rows.
  for (double eps : {0.15, 0.4, 0.7}) {
    Row row;
    row.lemma = "Lemma 4 (flow)";
    row.params = "eps=" + util::Table::num(eps, 2);
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      workload::WorkloadConfig config;
      config.num_jobs = jobs;
      config.num_machines = 3;
      config.load = 1.3;
      config.sizes.dist = workload::SizeDistribution::kPareto;
      config.seed = util::derive_seed(7007, seed);
      const Instance instance = workload::generate_workload(config);
      const auto result = run_rejection_flow(instance, {.epsilon = eps});
      const auto report = check_flow_dual_feasibility(instance, result, eps);
      row.max_violation = std::max(row.max_violation, report.max_violation);
      row.constraints += report.constraints_checked;
    }
    rows.push_back(row);
  }

  // Lemma 6 rows.
  for (double alpha : {2.0, 3.0}) {
    Row row;
    row.lemma = "Lemma 6 (flow+energy)";
    row.params = "alpha=" + util::Table::num(alpha, 2) + " eps=0.4";
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      workload::WorkloadConfig config;
      config.num_jobs = jobs / 2;
      config.num_machines = 2;
      config.load = 1.0;
      config.weights = workload::WeightDistribution::kUniform;
      config.seed = util::derive_seed(7077, seed);
      const Instance instance = workload::generate_workload(config);
      EnergyFlowOptions options;
      options.epsilon = 0.4;
      options.alpha = alpha;
      const auto result = run_energy_flow(instance, options);
      const auto report =
          check_energy_flow_dual_feasibility(instance, result, options);
      row.max_violation = std::max(row.max_violation, report.max_violation);
      row.constraints += report.constraints_checked;
    }
    rows.push_back(row);
  }

  // Lemma 7 rows.
  for (double alpha : {1.5, 2.5}) {
    Row row;
    row.lemma = "Lemma 7 (config LP)";
    row.params = "alpha=" + util::Table::num(alpha, 2);
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      workload::WorkloadConfig config;
      config.num_jobs = 20;
      config.num_machines = 2;
      config.with_deadlines = true;
      config.seed = util::derive_seed(7777, seed);
      const Instance instance = workload::generate_workload(config);
      ConfigPDOptions options;
      options.alpha = alpha;
      options.speed_levels = 4;
      const auto report =
          check_config_dual_feasibility(instance, options, 32, seed);
      row.max_violation =
          std::max({row.max_violation, report.max_delta_violation,
                    report.max_config_violation});
      row.constraints += report.strategies_checked + report.configs_checked;
    }
    rows.push_back(row);
  }

  util::Table table({"constraint family", "parameters", "constraints checked",
                     "max violation", "status"});
  bool all_pass = true;
  for (const Row& row : rows) {
    const bool pass = row.max_violation <= 1e-6;
    all_pass = all_pass && pass;
    table.row(row.lemma, row.params,
              static_cast<unsigned long long>(row.constraints),
              row.max_violation, pass ? "PASS" : "FAIL");
  }
  table.print(std::cout);
  std::cout << (all_pass ? "E7 PASS: every sampled dual constraint holds\n"
                         : "E7 FAIL: dual infeasibility detected!\n");
  return all_pass ? 0 : 1;
}
