// E7 — Lemmas 4, 6, 7 (registered scenario "e7_dual_feasibility").
//
// The dual solutions constructed by all three algorithms are feasible,
// verified constraint-by-constraint by independent checkers on randomized
// instances. Reported numbers are max violations (LHS - RHS over all
// sampled constraints): feasibility means <= 0 up to float noise. This is
// the empirical companion of the paper's three feasibility lemmas — and the
// soundness certificate behind every "ratio vs dual LB" column in E1/E3/E4.
#include <algorithm>

#include "core/energy_flow/energy_flow.hpp"
#include "core/flow/rejection_flow.hpp"
#include "duality/config_dual_check.hpp"
#include "duality/energy_flow_dual_check.hpp"
#include "duality/flow_dual_check.hpp"
#include "harness/registry.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kLemma4 = 4.0, kLemma6 = 6.0, kLemma7 = 7.0;

Scenario make_e7() {
  Scenario scenario;
  scenario.name = "e7_dual_feasibility";
  scenario.description =
      "Lemmas 4/6/7: constructed duals are feasible, checked independently";
  scenario.tags = {"duality", "lemma4", "lemma6", "lemma7", "paper", "smoke"};
  scenario.repetitions = 4;
  for (const double eps : {0.15, 0.4, 0.7}) {
    scenario.grid.push_back(
        CaseSpec("lemma4 flow eps=" + util::Table::num(eps, 2))
            .with("lemma", kLemma4)
            .with("eps", eps));
  }
  for (const double alpha : {2.0, 3.0}) {
    scenario.grid.push_back(
        CaseSpec("lemma6 flow+energy alpha=" + util::Table::num(alpha, 2))
            .with("lemma", kLemma6)
            .with("alpha", alpha));
  }
  for (const double alpha : {1.5, 2.5}) {
    scenario.grid.push_back(
        CaseSpec("lemma7 config-LP alpha=" + util::Table::num(alpha, 2))
            .with("lemma", kLemma7)
            .with("alpha", alpha));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    MetricRow row;
    const double lemma = ctx.param("lemma");
    if (lemma == kLemma4) {
      workload::WorkloadConfig config;
      config.num_jobs = ctx.scaled(250);
      config.num_machines = 3;
      config.load = 1.3;
      config.sizes.dist = workload::SizeDistribution::kPareto;
      config.seed = ctx.seed;
      const Instance instance = workload::generate_workload(config);
      const double eps = ctx.param("eps");
      const auto result = run_rejection_flow(instance, {.epsilon = eps});
      const auto report = check_flow_dual_feasibility(instance, result, eps);
      row.set("max_violation", report.max_violation);
      row.set("constraints", static_cast<double>(report.constraints_checked));
    } else if (lemma == kLemma6) {
      workload::WorkloadConfig config;
      config.num_jobs = ctx.scaled(125);
      config.num_machines = 2;
      config.load = 1.0;
      config.weights = workload::WeightDistribution::kUniform;
      config.seed = ctx.seed;
      const Instance instance = workload::generate_workload(config);
      EnergyFlowOptions options;
      options.epsilon = 0.4;
      options.alpha = ctx.param("alpha");
      const auto result = run_energy_flow(instance, options);
      const auto report =
          check_energy_flow_dual_feasibility(instance, result, options);
      row.set("max_violation", report.max_violation);
      row.set("constraints", static_cast<double>(report.constraints_checked));
    } else {
      workload::WorkloadConfig config;
      config.num_jobs = 20;
      config.num_machines = 2;
      config.with_deadlines = true;
      config.seed = ctx.seed;
      const Instance instance = workload::generate_workload(config);
      ConfigPDOptions options;
      options.alpha = ctx.param("alpha");
      options.speed_levels = 4;
      const auto report =
          check_config_dual_feasibility(instance, options, 32, ctx.seed);
      row.set("max_violation", std::max(report.max_delta_violation,
                                        report.max_config_violation));
      row.set("constraints", static_cast<double>(report.strategies_checked +
                                                 report.configs_checked));
    }
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    Verdict verdict;
    for (const harness::CaseResult& c : report.cases) {
      if (c.metric("max_violation").max() > 1e-6) {
        verdict.pass = false;
        verdict.note = "dual infeasibility detected at " + c.spec.label;
        return verdict;
      }
    }
    verdict.note = "every sampled dual constraint holds";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e7);

}  // namespace
