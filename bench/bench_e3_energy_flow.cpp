// E3 — Theorem 2 verification table.
//
// Claim: weighted flow + energy is O((1+1/eps)^{alpha/(alpha-1)})-
// competitive while the rejected weight stays within an eps fraction.
//
// Sweep (eps, alpha); measured ratio = (weighted flow + energy) / certified
// lower bound (Lemma 6 dual vs the per-job isolated-cost bound). PASS =
// rejected-weight budget holds everywhere and ratios stay below the
// theorem's exact closed form where it is valid (alpha > 2) / a constant
// times the envelope elsewhere.
#include <iostream>

#include "core/energy_flow/energy_flow.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "600", "jobs per run");
  cli.flag("seeds", "4", "seeds per configuration");
  cli.flag("eps", "0.2,0.4,0.6,0.8", "epsilon sweep");
  cli.flag("alphas", "1.8,2,2.5,3", "alpha sweep");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const auto jobs = static_cast<std::size_t>(cli.integer("jobs"));
  const auto seeds = static_cast<std::size_t>(cli.integer("seeds"));

  std::cout << "E3: Theorem 2 — weighted flow + energy with weight rejection\n"
            << "    " << jobs << " weighted Pareto jobs, 3 unrelated machines, "
            << seeds << " seeds per cell\n";

  struct Row {
    double eps, alpha;
    double geo_ratio = 0.0, max_ratio = 0.0, max_rejected_weight = 0.0;
    bool feasible = true;
  };
  std::vector<Row> rows;
  for (double eps : cli.num_list("eps")) {
    for (double alpha : cli.num_list("alphas")) rows.push_back({eps, alpha});
  }

  util::ThreadPool pool;
  util::parallel_for(pool, rows.size(), [&](std::size_t i) {
    Row& row = rows[i];
    std::vector<double> ratios;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      workload::WorkloadConfig config;
      config.num_jobs = jobs;
      config.num_machines = 3;
      config.load = 1.0;
      config.weights = workload::WeightDistribution::kUniform;
      config.sizes.dist = workload::SizeDistribution::kPareto;
      config.seed = util::derive_seed(3003, seed * 13 + i);
      const Instance instance = workload::generate_workload(config);

      EnergyFlowOptions options;
      options.epsilon = row.eps;
      options.alpha = row.alpha;
      const auto result = run_energy_flow(instance, options);
      row.feasible =
          row.feasible && validate_schedule(result.schedule, instance).empty();

      const PolynomialPower power(row.alpha);
      const double alg = result.schedule.total_weighted_flow(instance) +
                         compute_energy(result.schedule, instance, power);
      ratios.push_back(alg / result.best_lower_bound());
      row.max_ratio = std::max(row.max_ratio, ratios.back());
      row.max_rejected_weight =
          std::max(row.max_rejected_weight,
                   result.schedule.rejected_weight(instance) /
                       instance.total_weight());
    }
    row.geo_ratio = util::geometric_mean(ratios);
  });

  util::Table table({"eps", "alpha", "ratio (geo)", "ratio (max)",
                     "theorem bound", "rej weight (max)", "budget eps",
                     "status"});
  bool all_pass = true;
  for (const Row& row : rows) {
    const double bound = theorem2_ratio_bound(row.eps, row.alpha);
    // The closed form is valid for alpha > 2; elsewhere compare against a
    // documented constant times the envelope (see metrics/ratio.cpp).
    const double slack = row.alpha > 2.0 ? 1.0 : 10.0;
    const bool pass = row.feasible && row.max_ratio <= slack * bound &&
                      row.max_rejected_weight <= row.eps + 1e-12;
    all_pass = all_pass && pass;
    table.row(row.eps, row.alpha, row.geo_ratio, row.max_ratio, bound,
              row.max_rejected_weight, row.eps, pass ? "PASS" : "FAIL");
  }
  table.print(std::cout);

  // ---- Rejection ablation: Theorem 2 with its relaxation switched off ----
  // Same HDF order, dispatching and speed scaling; only the weight-counter
  // rule is disabled. On a burst-heavy weighted workload the no-rejection
  // variant keeps serving behind committed elephants, and the flow term
  // (not the energy term) pays for it.
  util::print_section(std::cout,
                      "ablation: weight-counter rejection on/off (alpha=2.5)");
  util::Table ablation({"workload", "with rejection", "without", "penalty x",
                        "rejected weight%"});
  for (std::uint64_t seed : {71ull, 72ull, 73ull}) {
    workload::WorkloadConfig config;
    config.num_jobs = 600;
    config.num_machines = 3;
    config.load = 1.4;
    config.sizes.dist = workload::SizeDistribution::kBimodal;
    config.weights = workload::WeightDistribution::kUniform;
    config.seed = seed;
    const Instance instance = workload::generate_workload(config);
    const PolynomialPower power(2.5);

    EnergyFlowOptions with;
    with.epsilon = 0.3;
    with.alpha = 2.5;
    const auto on = run_energy_flow(instance, with);
    EnergyFlowOptions without = with;
    without.enable_rejection = false;
    const auto off = run_energy_flow(instance, without);

    const double cost_on = on.schedule.total_weighted_flow(instance) +
                           compute_energy(on.schedule, instance, power);
    const double cost_off = off.schedule.total_weighted_flow(instance) +
                            compute_energy(off.schedule, instance, power);
    ablation.row("bimodal load 1.4 seed " + std::to_string(seed), cost_on,
                 cost_off, cost_off / cost_on,
                 100.0 * on.schedule.rejected_weight(instance) /
                     instance.total_weight());
  }
  ablation.print(std::cout);

  std::cout << (all_pass
                    ? "E3 PASS: budgets and ratio bounds hold in every cell\n"
                    : "E3 FAIL\n");
  return all_pass ? 0 : 1;
}
