// E3 — Theorem 2 verification (registered scenario "e3_energy_flow").
//
// Claim: weighted flow + energy is O((1+1/eps)^{alpha/(alpha-1)})-
// competitive while the rejected weight stays within an eps fraction.
//
// Grid part: sweep (eps, alpha); measured ratio = (weighted flow + energy) /
// certified lower bound (Lemma 6 dual vs the per-job isolated-cost bound).
// PASS = rejected-weight budget holds everywhere and ratios stay below the
// theorem's exact closed form where it is valid (alpha > 2) / a constant
// times the envelope elsewhere.
//
// Ablation cases: same HDF order, dispatching and speed scaling with only
// the weight-counter rule disabled — on burst-heavy weighted workloads the
// no-rejection variant keeps serving behind committed elephants and the
// flow term pays for it.
#include <algorithm>

#include "core/energy_flow/energy_flow.hpp"
#include "harness/registry.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

MetricRow run_grid_unit(const UnitContext& ctx) {
  const double eps = ctx.param("eps");
  const double alpha = ctx.param("alpha");

  workload::WorkloadConfig config;
  config.num_jobs = ctx.scaled(600);
  config.num_machines = 3;
  config.load = 1.0;
  config.weights = workload::WeightDistribution::kUniform;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = ctx.seed;
  const Instance instance = workload::generate_workload(config);

  EnergyFlowOptions options;
  options.epsilon = eps;
  options.alpha = alpha;
  const auto result = run_energy_flow(instance, options);

  const PolynomialPower power(alpha);
  const double alg = result.schedule.total_weighted_flow(instance) +
                     compute_energy(result.schedule, instance, power);

  MetricRow row;
  row.set("ratio", alg / result.best_lower_bound());
  row.set("rejected_weight", result.schedule.rejected_weight(instance) /
                                 instance.total_weight());
  row.set("feasible",
          validate_schedule(result.schedule, instance).empty() ? 1.0 : 0.0);
  return row;
}

MetricRow run_ablation_unit(const UnitContext& ctx) {
  workload::WorkloadConfig config;
  config.num_jobs = ctx.scaled(600);
  config.num_machines = 3;
  config.load = 1.4;
  config.sizes.dist = workload::SizeDistribution::kBimodal;
  config.weights = workload::WeightDistribution::kUniform;
  config.seed = ctx.seed;
  const Instance instance = workload::generate_workload(config);
  const PolynomialPower power(2.5);

  EnergyFlowOptions with;
  with.epsilon = 0.3;
  with.alpha = 2.5;
  const auto on = run_energy_flow(instance, with);
  EnergyFlowOptions without = with;
  without.enable_rejection = false;
  const auto off = run_energy_flow(instance, without);

  const double cost_on = on.schedule.total_weighted_flow(instance) +
                         compute_energy(on.schedule, instance, power);
  const double cost_off = off.schedule.total_weighted_flow(instance) +
                          compute_energy(off.schedule, instance, power);

  MetricRow row;
  row.set("with_rejection", cost_on);
  row.set("without_rejection", cost_off);
  row.set("penalty_x", cost_off / cost_on);
  row.set("rejected_weight_pct", 100.0 *
                                     on.schedule.rejected_weight(instance) /
                                     instance.total_weight());
  return row;
}

Scenario make_e3() {
  Scenario scenario;
  scenario.name = "e3_energy_flow";
  scenario.description =
      "Theorem 2: weighted flow + energy with weight rejection";
  scenario.tags = {"energy", "flow", "theorem2", "paper"};
  scenario.repetitions = 3;
  for (const double eps : {0.2, 0.4, 0.6, 0.8}) {
    for (const double alpha : {1.8, 2.0, 2.5, 3.0}) {
      scenario.grid.push_back(CaseSpec("eps=" + util::Table::num(eps, 2) +
                                       " alpha=" + util::Table::num(alpha, 2))
                                  .with("eps", eps)
                                  .with("alpha", alpha));
    }
  }
  scenario.grid.push_back(
      CaseSpec("ablation: weight-counter off (alpha=2.5)").with("ablation", 1.0));

  scenario.run_unit = [](const UnitContext& ctx) {
    return ctx.param_or("ablation", 0.0) > 0.5 ? run_ablation_unit(ctx)
                                               : run_grid_unit(ctx);
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    Verdict verdict;
    for (const harness::CaseResult& c : report.cases) {
      if (c.spec.has_param("ablation")) continue;  // informational
      const double eps = c.spec.param("eps");
      const double alpha = c.spec.param("alpha");
      const double bound = theorem2_ratio_bound(eps, alpha);
      // The closed form is valid for alpha > 2; elsewhere compare against a
      // documented constant times the envelope (see metrics/ratio.cpp).
      const double slack = alpha > 2.0 ? 1.0 : 10.0;
      const bool pass = c.metric("feasible").min() >= 1.0 &&
                        c.metric("ratio").max() <= slack * bound &&
                        c.metric("rejected_weight").max() <= eps + 1e-12;
      if (!pass && verdict.pass) {
        verdict.pass = false;
        verdict.note = "theorem 2 guarantee violated at " + c.spec.label;
      }
    }
    if (verdict.pass) verdict.note = "budgets and ratio bounds hold everywhere";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e3);

}  // namespace
