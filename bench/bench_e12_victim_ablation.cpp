// E12 — ablation of Rule 2's victim choice.
//
// Theorem 1 rejects the LARGEST pending job when the per-machine counter
// fires; Lemma 3's partition argument (and through it Corollary 1 and the
// dual feasibility of Lemma 4) depends on exactly that choice. This
// experiment replaces the victim rule with smallest / newest / random while
// keeping the counters identical, and measures what breaks: total flow time
// (the paper's objective, rejected jobs paying until their rejection),
// the rejected fraction (identical by construction — the counters don't
// change), and the measured ratio against the strongest certified lower
// bound for the instance.
#include <iostream>

#include "analysis/sweep.hpp"
#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "metrics/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;

Instance make_workload(const std::string& kind, std::uint64_t seed) {
  if (kind == "burst-trap") {
    workload::BurstTrapConfig trap;
    trap.num_rounds = 6;
    trap.burst_jobs = 60;
    trap.seed = seed;
    return workload::generate_burst_trap(trap);
  }
  workload::WorkloadConfig config;
  config.num_jobs = 1200;
  config.num_machines = 4;
  config.seed = seed;
  if (kind == "overload") {
    config.load = 1.5;
  } else {  // "pareto"
    config.load = 0.95;
    config.sizes.dist = workload::SizeDistribution::kPareto;
  }
  return workload::generate_workload(config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("eps", "0.25", "rejection parameter");
  cli.flag("reps", "5", "seeded repetitions per cell");
  cli.flag("seed", "7", "root seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");
  const auto reps = static_cast<std::size_t>(cli.integer("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  std::cout << "E12: Rule-2 victim ablation (eps=" << eps << ", reps=" << reps
            << ")\n"
            << "Counters identical across rules; only the sacrificed job "
               "changes.\n\n";

  const std::vector<Rule2Victim> victims = {
      Rule2Victim::kLargest, Rule2Victim::kSmallest, Rule2Victim::kNewest,
      Rule2Victim::kRandom};

  for (const std::string kind : {"burst-trap", "overload", "pareto"}) {
    std::vector<analysis::SweepCase> cases;
    for (Rule2Victim victim : victims) {
      const std::string label = to_string(victim);
      cases.push_back({label, [kind, victim, eps](std::uint64_t case_seed) {
                         analysis::MetricRow row;
                         const Instance instance = make_workload(kind, case_seed);

                         RejectionFlowOptions options;
                         options.epsilon = eps;
                         options.rule2_victim = victim;
                         options.victim_seed = case_seed ^ 0x5ACF1CEULL;
                         const auto result = run_rejection_flow(instance, options);

                         const auto report = evaluate(result.schedule, instance);
                         row.set("flow", report.total_flow);
                         row.set("rejected%", 100.0 * report.rejected_fraction);
                         row.set("max_flow", report.max_flow);

                         // Certified LB: the paper rule's dual is only valid
                         // for kLargest; for the ablation rows reuse the
                         // instance's combinatorial bounds plus the paper
                         // run's dual (computed fresh, independent of the
                         // ablated run).
                         const auto paper = run_rejection_flow(
                             instance, {.epsilon = eps});
                         const double lb = best_flow_lower_bound(
                             instance, paper.opt_lower_bound);
                         if (lb > 0.0) row.set("ratio_vs_LB", report.total_flow / lb);
                         return row;
                       }});
    }
    analysis::SweepOptions sweep;
    sweep.repetitions = reps;
    sweep.seed = seed;
    const auto result = analysis::run_sweep(cases, sweep);
    util::print_section(std::cout, "workload: " + kind);
    result.to_spread_table("victim rule").print(std::cout);
  }

  std::cout << "Reading: kLargest (the paper) should dominate or match on\n"
               "burst-heavy workloads; kSmallest wastes the budget on cheap\n"
               "jobs and keeps the elephants, inflating total flow.\n";
  return 0;
}
