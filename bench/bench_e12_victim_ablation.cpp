// E12 — Rule-2 victim ablation (registered scenario "e12_victim_ablation").
//
// Theorem 1 rejects the LARGEST pending job when the per-machine counter
// fires; Lemma 3's partition argument (and through it Corollary 1 and the
// dual feasibility of Lemma 4) depends on exactly that choice. This
// scenario replaces the victim rule with smallest / newest / random while
// keeping the counters identical, and measures what breaks: total flow time
// (the paper's objective, rejected jobs paying until their rejection), the
// rejected fraction, and the measured ratio against the strongest certified
// lower bound for the instance.
//
// Every victim variant of a (workload, repetition) pair sees the SAME
// instance (seed derived from scenario seed + repetition, not the case), so
// the verdict can assert the partition-argument invariant directly: the
// counters don't change, hence the rejected fraction must be identical
// across victim rules on each workload.
#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kEps = 0.25;

enum class Load { kBurstTrap = 0, kOverload, kPareto };

const char* to_label(Load load) {
  switch (load) {
    case Load::kBurstTrap: return "burst-trap";
    case Load::kOverload: return "overload";
    case Load::kPareto: return "pareto";
  }
  return "?";
}

Instance make_instance(Load load, const UnitContext& ctx) {
  const std::uint64_t seed = util::derive_seed(
      ctx.scenario_seed, 2000 + static_cast<std::uint64_t>(load) * 64 +
                             static_cast<std::uint64_t>(ctx.repetition));
  if (load == Load::kBurstTrap) {
    workload::BurstTrapConfig trap;
    trap.num_rounds = 6;
    trap.burst_jobs = ctx.scaled(60);
    trap.seed = seed;
    return workload::generate_burst_trap(trap);
  }
  workload::WorkloadConfig config;
  config.num_jobs = ctx.scaled(1200);
  config.num_machines = 4;
  config.seed = seed;
  if (load == Load::kOverload) {
    config.load = 1.5;
  } else {
    config.load = 0.95;
    config.sizes.dist = workload::SizeDistribution::kPareto;
  }
  return workload::generate_workload(config);
}

Scenario make_e12() {
  Scenario scenario;
  scenario.name = "e12_victim_ablation";
  scenario.description =
      "Rule 2 victim choice ablation: largest (paper) vs smallest/newest/random";
  scenario.tags = {"flow", "ablation", "theorem1", "lemma3"};
  scenario.repetitions = 3;
  const Rule2Victim victims[] = {Rule2Victim::kLargest, Rule2Victim::kSmallest,
                                 Rule2Victim::kNewest, Rule2Victim::kRandom};
  for (const Load load : {Load::kBurstTrap, Load::kOverload, Load::kPareto}) {
    for (const Rule2Victim victim : victims) {
      scenario.grid.push_back(
          CaseSpec(std::string(to_label(load)) + " / " + to_string(victim))
              .with("workload", static_cast<double>(load))
              .with("victim", static_cast<double>(victim)));
    }
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    const auto load = static_cast<Load>(static_cast<int>(ctx.param("workload")));
    const Instance instance = make_instance(load, ctx);

    RejectionFlowOptions options;
    options.epsilon = kEps;
    options.rule2_victim =
        static_cast<Rule2Victim>(static_cast<int>(ctx.param("victim")));
    options.victim_seed = ctx.seed ^ 0x5ACF1CEULL;
    const auto result = run_rejection_flow(instance, options);

    const auto report = evaluate(result.schedule, instance);
    MetricRow row;
    row.set("flow", report.total_flow);
    row.set("rejected_pct", 100.0 * report.rejected_fraction);
    row.set("max_flow", report.max_flow);

    // Certified LB: the paper rule's dual is only valid for kLargest; the
    // ablation cases combine the instance's combinatorial bounds with a
    // fresh paper-rule run's dual (independent of the ablated run). The
    // kLargest cases ARE the paper rule, so their own dual is reused.
    const double paper_dual =
        options.rule2_victim == Rule2Victim::kLargest
            ? result.opt_lower_bound
            : run_rejection_flow(instance, {.epsilon = kEps}).opt_lower_bound;
    const double lb = best_flow_lower_bound(instance, paper_dual);
    if (lb > 0.0) row.set("ratio_vs_lb", report.total_flow / lb);
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    Verdict verdict;
    for (const Load load :
         {Load::kBurstTrap, Load::kOverload, Load::kPareto}) {
      const std::string base = to_label(load);
      const auto& largest = report.case_result(base + " / largest");
      for (const char* victim : {"smallest", "newest", "random"}) {
        const auto& other = report.case_result(base + " / " + victim);
        // The Rule 2 counters are victim-independent, so the rejected
        // fraction may drift only through Rule 1's dependence on the
        // dispatch dynamics: within a fraction of a percentage point.
        if (std::abs(largest.metric("rejected_pct").mean() -
                     other.metric("rejected_pct").mean()) > 0.5) {
          verdict.pass = false;
          verdict.note = "rejected fraction moved with the victim rule on " +
                         base + " (" + victim + ")";
          return verdict;
        }
        // Lemma 3's choice must not lose: kLargest at least matches every
        // ablated victim's total flow (small tolerance for noise).
        if (largest.metric("flow").mean() >
            other.metric("flow").mean() * 1.05) {
          verdict.pass = false;
          verdict.note = "largest-victim rule lost to " + std::string(victim) +
                         " on " + base;
          return verdict;
        }
      }
    }
    verdict.note =
        "counters near-invariant across victim rules; largest (the paper's "
        "choice) dominates";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e12);

}  // namespace
