// E19 — dynamic-fleet fault injection (registered scenario "e19_faults").
//
// The tier behind the fleet-membership subsystem (sim/fleet.hpp): one
// closed-form workload is driven through kill / drain / join schedules —
// plus a throttle/recovery speed-change pair riding along on machine 3 —
// across every streamable policy and every storage backend, and each cell
// ALSO cuts the same run in half through a checkpoint/restore cycle
// (service/checkpoint.hpp). The verdict asserts the subsystem's contracts
// in-process:
//
//  1. Survival: a machine failure mid-run never crashes or deadlocks any
//     policy — every cell must account for every job (completed + rejected
//     == n) and observe the plan's full fail/drain/join schedule.
//  2. Storage invisibility under faults: rejected / completed / total_flow
//     are bit-identical between dense, sparse-CSR and generator backends
//     running the same faulted workload.
//  3. Checkpoint fidelity: restoring a mid-stream checkpoint and feeding
//     the rest reproduces the uninterrupted run's rejected / completed /
//     total_flow byte-for-byte (ckpt_match is 1.0 in every cell).
//
// The fleet plan is derived from release-time quantiles so fleet events
// land exactly on arrival instants — the tie-order case the batch/streaming
// equivalence has to get right.
//
// Tags: "perf" + "fleet" + "slow"; CI's stream-fuzz-smoke job runs it at
// --scale 0.05 with the compare gate against BENCH_stream_smoke_baseline.
#include <string>

#include "api/scheduler_api.hpp"
#include "harness/registry.hpp"
#include "instance/stream_job.hpp"
#include "service/scheduler_session.hpp"
#include "util/timer.hpp"
#include "workload/generated_family.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

/// Kill / drain / join schedule pinned to release-time quantiles: machine 0
/// fails early, machine 1 drains, both come back, machine 2 fails late —
/// plus a throttle/recovery pair on machine 3, so every cell also carries a
/// mid-run speed change through the churn (and through the checkpoint cut).
FleetPlan make_churn_plan(const Instance& instance, std::uint64_t budget) {
  const auto at = [&](double fraction) {
    const auto idx = static_cast<JobId>(
        fraction * static_cast<double>(instance.num_jobs() - 1));
    return instance.job(idx).release;
  };
  FleetPlan plan;
  plan.events = {{at(0.20), 0, FleetEventKind::kFail},
                 {at(0.30), 3, FleetEventKind::kSpeedChange, 0.5},
                 {at(0.35), 1, FleetEventKind::kDrain},
                 {at(0.55), 0, FleetEventKind::kJoin},
                 {at(0.70), 2, FleetEventKind::kFail},
                 {at(0.80), 3, FleetEventKind::kSpeedChange, 1.0},
                 {at(0.85), 1, FleetEventKind::kJoin}};
  plan.rejection_budget = budget;
  return plan;
}

MetricRow run_e19_unit(const UnitContext& ctx) {
  const auto algorithm = static_cast<api::Algorithm>(
      static_cast<int>(ctx.param("algorithm")));
  const auto backend = static_cast<StorageBackend>(
      static_cast<int>(ctx.param("backend")));

  workload::ClosedFormConfig config;
  config.num_jobs = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  config.num_machines = static_cast<std::size_t>(ctx.param("m"));
  // SCENARIO seed, not the per-case unit seed: the backend triplet must run
  // the SAME workload or the verdict's byte-equality would be meaningless.
  config.seed = ctx.scenario_seed;
  const Instance instance =
      workload::make_closed_form_instance(config, backend);

  api::RunOptions options;
  options.fleet = make_churn_plan(
      instance, static_cast<std::uint64_t>(ctx.param("budget")));

  util::Timer timer;
  const api::RunSummary summary = api::run(algorithm, instance, options);
  const double seconds = timer.elapsed_seconds();

  // Checkpoint leg: stream the same run, cut it at the halfway job,
  // round-trip the session through the wire format, feed the rest and
  // compare the deterministic outputs against the uninterrupted run.
  double ckpt_match = 1.0;
  {
    service::SessionOptions session_options;
    session_options.run = options;
    service::SchedulerSession session(algorithm, instance.num_machines(),
                                      session_options);
    StreamJob job;
    const std::size_t cut = instance.num_jobs() / 2;
    for (std::size_t j = 0; j < cut; ++j) {
      fill_stream_job(instance, static_cast<JobId>(j), 0.0, &job);
      session.submit(job);
    }
    std::string error;
    auto restored = service::SchedulerSession::restore(session.checkpoint(),
                                                       &error);
    OSCHED_CHECK(restored != nullptr) << error;
    for (std::size_t j = cut; j < instance.num_jobs(); ++j) {
      fill_stream_job(instance, static_cast<JobId>(j), 0.0, &job);
      restored->submit(job);
    }
    const api::RunSummary resumed = restored->drain();
    if (resumed.report.num_rejected != summary.report.num_rejected ||
        resumed.report.num_completed != summary.report.num_completed ||
        resumed.report.total_flow != summary.report.total_flow) {
      ckpt_match = 0.0;
    }
  }

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(config.num_jobs) / seconds : 0.0);
  // Deterministic outputs — diffed exactly by scripts/compare_bench.py and
  // byte-compared across the backend triplet in the verdict.
  row.set("rejected", static_cast<double>(summary.report.num_rejected));
  row.set("completed", static_cast<double>(summary.report.num_completed));
  row.set("total_flow", summary.report.total_flow);
  row.set("fleet_fails", static_cast<double>(summary.fleet.fails));
  row.set("fleet_drains", static_cast<double>(summary.fleet.drains));
  row.set("fleet_joins", static_cast<double>(summary.fleet.joins));
  row.set("redispatched", static_cast<double>(summary.fleet.redispatched));
  row.set("fault_rejections",
          static_cast<double>(summary.fleet.fault_rejections));
  row.set("budget_spent", static_cast<double>(summary.fleet.budget_spent));
  row.set("speed_changes", static_cast<double>(summary.fleet.speed_changes));
  row.set("throttles", static_cast<double>(summary.fleet.throttles));
  row.set("recoveries", static_cast<double>(summary.fleet.recoveries));
  row.set("min_speed", summary.fleet.min_speed_multiplier);
  row.set("ckpt_match", ckpt_match);
  return row;
}

Scenario make_e19() {
  Scenario scenario;
  scenario.name = "e19_faults";
  scenario.description =
      "fault injection: kill/drain/join schedules across every policy and "
      "storage backend, with a mid-stream checkpoint/restore cut asserted "
      "byte-identical to the uninterrupted run";
  scenario.tags = {"perf", "fleet", "slow"};
  scenario.repetitions = 1;
  const struct {
    const char* label;
    api::Algorithm algorithm;
    StorageBackend backend;
    double budget;
  } cells[] = {
      // The backend triplet: one policy, one plan, three stores.
      {"theorem1 dense", api::Algorithm::kTheorem1, StorageBackend::kDense,
       64},
      {"theorem1 sparse", api::Algorithm::kTheorem1,
       StorageBackend::kSparseCsr, 64},
      {"theorem1 generator", api::Algorithm::kTheorem1,
       StorageBackend::kGenerator, 64},
      // Every other streamable policy under the same churn, dense store.
      {"theorem2 dense", api::Algorithm::kTheorem2, StorageBackend::kDense,
       64},
      {"weighted dense", api::Algorithm::kWeightedExt, StorageBackend::kDense,
       64},
      {"greedy_spt dense", api::Algorithm::kGreedySpt, StorageBackend::kDense,
       64},
      {"fifo dense", api::Algorithm::kFifo, StorageBackend::kDense, 64},
      {"immediate dense", api::Algorithm::kImmediateReject,
       StorageBackend::kDense, 64},
      // Zero budget: every fault-displaced job must be re-dispatched or
      // force-rejected, never shed.
      {"theorem1 dense nobudget", api::Algorithm::kTheorem1,
       StorageBackend::kDense, 0},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(
        CaseSpec(cell.label)
            .with("algorithm", static_cast<double>(cell.algorithm))
            .with("backend", static_cast<double>(cell.backend))
            .with("n", 30000)
            .with("m", 32)
            .with("budget", cell.budget));
  }
  scenario.run_unit = run_e19_unit;
  scenario.evaluate = [](const ScenarioReport& report) {
    // Contract 1: every cell survived the full schedule and accounted for
    // every job (the harness reaching here at all means no crash/deadlock).
    for (const auto& result : report.cases) {
      const double n = result.metric("completed").mean() +
                       result.metric("rejected").mean();
      if (result.metric("fleet_fails").mean() != 2.0 ||
          result.metric("fleet_drains").mean() != 1.0 ||
          result.metric("fleet_joins").mean() != 2.0) {
        return Verdict{false, result.spec.label + ": fleet schedule not fully "
                                             "observed"};
      }
      if (result.metric("speed_changes").mean() != 2.0 ||
          result.metric("throttles").mean() != 1.0 ||
          result.metric("recoveries").mean() != 1.0 ||
          result.metric("min_speed").mean() != 0.5) {
        return Verdict{false, result.spec.label +
                                  ": speed schedule not fully observed"};
      }
      if (n <= 0.0) {
        return Verdict{false, result.spec.label + ": no jobs accounted for"};
      }
      // Contract 3: the checkpoint cut reproduced the uninterrupted run.
      if (result.metric("ckpt_match").mean() != 1.0) {
        return Verdict{false, result.spec.label +
                                  ": checkpoint/restore diverged from the "
                                  "uninterrupted run"};
      }
    }
    // Contract 2: the backend triplet scheduled byte-identically.
    const auto& dense = report.case_result("theorem1 dense");
    for (const char* twin : {"theorem1 sparse", "theorem1 generator"}) {
      const auto& compact = report.case_result(twin);
      for (const char* metric : {"rejected", "completed", "total_flow"}) {
        const double a = dense.metric(metric).mean();
        const double b = compact.metric(metric).mean();
        if (a != b) {
          return Verdict{false, std::string("backend mismatch on ") + metric +
                                    " (theorem1 dense vs " + twin +
                                    "): " + std::to_string(a) + " vs " +
                                    std::to_string(b)};
        }
      }
    }
    return Verdict{true,
                   "all policies survived the churn; backends byte-identical "
                   "under faults; checkpoint cuts reproduced every run"};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e19);

}  // namespace
