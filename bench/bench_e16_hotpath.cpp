// E16 — flat-memory hot-path throughput (registered scenario "e16_hotpath").
//
// The perf tier behind the arena-treap / slot-event-queue / eligibility-
// adjacency rewrite: it drives the Theorem 1 scheduler at production scale
// (n up to 10^6 jobs, m up to 256 machines) across dense, sparse
// (restricted-assignment) and adversarial (bursty bimodal, rejection-heavy)
// workloads, and reports jobs/sec plus peak RSS so BENCH_*.json finally
// tracks a throughput trajectory, not just solution quality.
//
// Deterministic side metrics (rejected, total_flow) double as the
// correctness gate: scripts/compare_bench.py checks them for exact equality
// between two reports while giving the wall-clock metrics a tolerance band.
// Peak RSS is the process high-water mark, so run this tier with --jobs 1
// for meaningful memory numbers (parallel units share one address space).
//
// Tags: "perf" (wall-clock metric values vary run to run — keep out of
// determinism diffs) and "slow" (excluded from quick batches via the
// "-slow" filter token; CI's perf-smoke job runs it at --scale 0.05).
#include "core/flow/rejection_flow.hpp"
#include "harness/registry.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

enum class Family {
  kDense = 0,    ///< fully unrelated: every machine eligible
  kSparse,       ///< restricted assignment: few eligible machines per job
  kAdversarial,  ///< bursty bimodal overload: heavy Rule 1/2 churn
};

/// Process peak RSS in MiB (0.0 where unsupported). Monotone over the
/// process lifetime: meaningful for sizing single-unit (--jobs 1) runs.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

Instance hotpath_workload(Family family, std::size_t n, std::size_t m,
                          double eligibility, std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  switch (family) {
    case Family::kDense:
      config.load = 1.1;
      config.sizes.dist = workload::SizeDistribution::kPareto;
      config.machines.model = workload::MachineModel::kUnrelated;
      break;
    case Family::kSparse:
      config.load = 1.1;
      config.sizes.dist = workload::SizeDistribution::kPareto;
      config.machines.model = workload::MachineModel::kRestricted;
      config.machines.eligibility = eligibility;
      break;
    case Family::kAdversarial:
      // Overloaded bursts of mostly-tiny jobs with a heavy elephant tail:
      // the arrival pattern the rejection rules exist to survive, and the
      // worst case for pending-queue churn.
      config.load = 1.4;
      config.arrivals.kind = workload::ArrivalKind::kBursty;
      config.arrivals.burst_factor = 16.0;
      config.sizes.dist = workload::SizeDistribution::kBimodal;
      config.sizes.bimodal_fraction = 0.08;
      config.sizes.max_size = 50.0;
      config.machines.model = workload::MachineModel::kUnrelated;
      break;
  }
  return workload::generate_workload(config);
}

MetricRow run_hotpath_unit(const UnitContext& ctx) {
  const auto family = static_cast<Family>(static_cast<int>(ctx.param("family")));
  const std::size_t n = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  const auto m = static_cast<std::size_t>(ctx.param("m"));
  const double eligibility = ctx.param_or("eligibility", 1.0);

  const Instance instance =
      hotpath_workload(family, n, m, eligibility, ctx.seed);

  util::Timer timer;
  const RejectionFlowResult result =
      run_rejection_flow(instance, {.epsilon = 0.25});
  const double seconds = timer.elapsed_seconds();

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0);
  row.set("peak_rss_mib", peak_rss_mib());
  // Deterministic outputs: identical across runs, binaries and --jobs
  // values for one (seed, scale) — compare_bench.py diffs them exactly.
  row.set("rejected", static_cast<double>(result.schedule.num_rejected()));
  row.set("completed", static_cast<double>(result.schedule.num_completed()));
  row.set("total_flow", result.schedule.total_flow(instance));
  return row;
}

Scenario make_e16() {
  Scenario scenario;
  scenario.name = "e16_hotpath";
  scenario.description =
      "hot-path throughput at scale: jobs/s + peak RSS, dense/sparse/"
      "adversarial";
  scenario.tags = {"perf", "hotpath", "slow"};
  scenario.repetitions = 1;
  const struct {
    const char* label;
    Family family;
    double n;
    double m;
    double eligibility;
  } cells[] = {
      {"dense n=100000 m=8", Family::kDense, 100000, 8, 1.0},
      {"dense n=100000 m=64", Family::kDense, 100000, 64, 1.0},
      {"dense n=1000000 m=16", Family::kDense, 1000000, 16, 1.0},
      {"dense n=200000 m=256", Family::kDense, 200000, 256, 1.0},
      {"sparse n=1000000 m=64", Family::kSparse, 1000000, 64, 0.1},
      {"sparse n=200000 m=256", Family::kSparse, 200000, 256, 0.05},
      {"adversarial n=1000000 m=8", Family::kAdversarial, 1000000, 8, 1.0},
      {"adversarial n=200000 m=64", Family::kAdversarial, 200000, 64, 1.0},
      // m-sweep at fixed n: the machine-selection index's scaling story —
      // pre-index, jobs/s fell superlinearly with m on exactly this curve.
      // Appended AFTER the original grid: unit seeds derive from the case
      // index, so earlier cases keep their committed deterministic metrics.
      {"msweep dense n=100000 m=64", Family::kDense, 100000, 64, 1.0},
      {"msweep dense n=100000 m=256", Family::kDense, 100000, 256, 1.0},
      {"msweep dense n=100000 m=512", Family::kDense, 100000, 512, 1.0},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(CaseSpec(cell.label)
                                .with("family", static_cast<double>(cell.family))
                                .with("n", cell.n)
                                .with("m", cell.m)
                                .with("eligibility", cell.eligibility));
  }
  scenario.run_unit = run_hotpath_unit;
  scenario.evaluate = [](const ScenarioReport&) {
    return Verdict{true, "informational: throughput tracked, not asserted"};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e16);

}  // namespace
