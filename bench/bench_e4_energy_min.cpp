// E4 — Theorem 3 verification (registered scenario "e4_energy_min").
//
// Claim: the configuration primal-dual greedy is alpha^alpha-competitive
// for non-preemptive energy minimization with deadlines.
//
// Exact cases: small randomized instances solved EXACTLY (branch-and-bound
// over the same strategy grid), so reported ratios are true competitive
// ratios within the discretized space, not bounds. The AVR baseline rides
// along for context.
//
// YDS cases: single machine at sizes the witness search cannot reach. YDS
// is the exact PREEMPTIVE continuous-speed optimum — a lower bound on the
// non-preemptive OPT — so ratios there are certified upper bounds on the
// greedy's true competitive ratio.
#include "baselines/avr_energy.hpp"
#include "baselines/yds_energy.hpp"
#include "core/energy_min/bruteforce.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "harness/registry.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

MetricRow run_exact_unit(const UnitContext& ctx) {
  const double alpha = ctx.param("alpha");
  workload::WorkloadConfig config;
  config.num_jobs = 5;  // kept small: exact OPT is exponential
  config.num_machines = 2;
  config.with_deadlines = true;
  config.slack_min = 1.5;
  config.slack_max = 6.0;
  config.seed = ctx.seed;
  const Instance instance = workload::generate_workload(config);

  ConfigPDOptions pd_options;
  pd_options.alpha = alpha;
  pd_options.speed_levels = 4;
  pd_options.start_grid = 1.0;
  const auto greedy = run_config_primal_dual(instance, pd_options);
  ValidationOptions vopts;
  vopts.allow_parallel_execution = true;
  vopts.require_deadlines = true;
  const bool feasible =
      validate_schedule(greedy.schedule, instance, vopts).empty();

  BruteForceOptions bf_options;
  bf_options.alpha = alpha;
  bf_options.speed_levels = 4;
  bf_options.start_grid = 1.0;
  const auto exact = brute_force_energy(instance, bf_options);

  MetricRow row;
  row.set("feasible", feasible ? 1.0 : 0.0);
  if (!exact.has_value()) {
    row.set("certified", 0.0);
    return row;
  }
  row.set("certified", exact->certified_optimal ? 1.0 : 0.0);
  row.set("ratio", greedy.algorithm_energy / exact->optimal_energy);
  row.set("dual_gap", exact->optimal_energy / greedy.opt_lower_bound);
  row.set("avr_ratio",
          run_avr_energy(instance, alpha).energy / exact->optimal_energy);
  return row;
}

MetricRow run_yds_unit(const UnitContext& ctx) {
  const double alpha = ctx.param("alpha");
  workload::WorkloadConfig config;
  config.num_jobs = ctx.scaled(static_cast<std::size_t>(ctx.param("jobs")));
  config.num_machines = 1;
  config.load = 0.8;
  config.with_deadlines = true;
  config.slack_min = 2.0;
  config.slack_max = 8.0;
  config.seed = ctx.seed;
  const Instance instance = workload::generate_workload(config);

  ConfigPDOptions pd_options;
  pd_options.alpha = alpha;
  pd_options.speed_levels = 8;
  const auto greedy = run_config_primal_dual(instance, pd_options);
  const auto yds = yds_optimal_energy(instance, alpha);

  MetricRow row;
  if (!yds.has_value()) return row;
  row.set("greedy_energy", greedy.algorithm_energy);
  row.set("yds_lb", yds->energy);
  row.set("ratio", greedy.algorithm_energy / yds->energy);
  return row;
}

Scenario make_e4() {
  Scenario scenario;
  scenario.name = "e4_energy_min";
  scenario.description =
      "Theorem 3: config primal-dual within alpha^alpha of exact/YDS optimum";
  scenario.tags = {"energy", "theorem3", "paper"};
  scenario.repetitions = 6;
  for (const double alpha : {1.5, 2.0, 2.5, 3.0}) {
    scenario.grid.push_back(
        CaseSpec("exact alpha=" + util::Table::num(alpha, 2))
            .with("alpha", alpha)
            .with("exact", 1.0));
  }
  for (const double alpha : {1.5, 2.0, 2.5, 3.0}) {
    for (const double jobs : {20.0, 60.0}) {
      scenario.grid.push_back(
          CaseSpec("yds alpha=" + util::Table::num(alpha, 2) + " n=" +
                   util::Table::num(jobs, 3))
              .with("alpha", alpha)
              .with("jobs", jobs));
    }
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    return ctx.param_or("exact", 0.0) > 0.5 ? run_exact_unit(ctx)
                                            : run_yds_unit(ctx);
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    Verdict verdict;
    for (const harness::CaseResult& c : report.cases) {
      const double bound = theorem3_ratio_bound(c.spec.param("alpha"));
      bool pass = true;
      if (c.spec.has_param("exact")) {
        pass = c.metric("feasible").min() >= 1.0 &&
               c.metric("certified").min() >= 1.0 &&
               c.metric("ratio").max() <= bound + 1e-9 &&
               c.metric("ratio").min() >= 1.0 - 1e-9;
      } else if (c.has_metric("ratio")) {
        pass = c.metric("ratio").min() >= 1.0 - 1e-9 &&
               c.metric("ratio").max() <= bound + 1e-9;
      }
      if (!pass && verdict.pass) {
        verdict.pass = false;
        verdict.note = "alpha^alpha guarantee violated at " + c.spec.label;
      }
    }
    if (verdict.pass) {
      verdict.note = "greedy within alpha^alpha of B&B and YDS certificates";
    }
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e4);

}  // namespace
