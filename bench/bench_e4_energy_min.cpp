// E4 — Theorem 3 verification table.
//
// Claim: the configuration primal-dual greedy is alpha^alpha-competitive
// for non-preemptive energy minimization with deadlines.
//
// Small randomized instances are solved EXACTLY (branch-and-bound over the
// same strategy grid); reported ratios are therefore true competitive
// ratios within the discretized space, not bounds. The AVR baseline rides
// along for context.
#include <iostream>

#include "baselines/avr_energy.hpp"
#include "baselines/yds_energy.hpp"
#include "core/energy_min/bruteforce.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "5", "jobs per instance (kept small for exact OPT)");
  cli.flag("seeds", "12", "instances per alpha");
  cli.flag("alphas", "1.5,2,2.5,3", "alpha sweep");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const auto jobs = static_cast<std::size_t>(cli.integer("jobs"));
  const auto seeds = static_cast<std::size_t>(cli.integer("seeds"));

  std::cout << "E4: Theorem 3 — greedy vs EXACT optimum on the same strategy "
               "grid\n"
            << "    " << jobs << " deadline jobs, 2 machines, " << seeds
            << " instances per alpha\n";

  struct Row {
    double alpha;
    double geo_ratio = 0.0, max_ratio = 0.0;
    double geo_avr = 0.0;
    double geo_dual_gap = 0.0;  ///< OPT / dual lower bound
    bool all_certified = true;
    bool feasible = true;
  };
  std::vector<Row> rows;
  for (double alpha : cli.num_list("alphas")) rows.push_back({alpha});

  util::ThreadPool pool;
  util::parallel_for(pool, rows.size(), [&](std::size_t row_index) {
    Row& row = rows[row_index];
    std::vector<double> ratios, avr_ratios, dual_gaps;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      workload::WorkloadConfig config;
      config.num_jobs = jobs;
      config.num_machines = 2;
      config.with_deadlines = true;
      config.slack_min = 1.5;
      config.slack_max = 6.0;
      config.seed = util::derive_seed(4004, seed * 7 + row_index);
      const Instance instance = workload::generate_workload(config);

      ConfigPDOptions pd_options;
      pd_options.alpha = row.alpha;
      pd_options.speed_levels = 4;
      pd_options.start_grid = 1.0;
      const auto greedy = run_config_primal_dual(instance, pd_options);
      ValidationOptions vopts;
      vopts.allow_parallel_execution = true;
      vopts.require_deadlines = true;
      row.feasible = row.feasible &&
                     validate_schedule(greedy.schedule, instance, vopts).empty();

      BruteForceOptions bf_options;
      bf_options.alpha = row.alpha;
      bf_options.speed_levels = 4;
      bf_options.start_grid = 1.0;
      const auto exact = brute_force_energy(instance, bf_options);
      if (!exact.has_value()) {
        row.all_certified = false;
        continue;
      }
      row.all_certified = row.all_certified && exact->certified_optimal;

      ratios.push_back(greedy.algorithm_energy / exact->optimal_energy);
      row.max_ratio = std::max(row.max_ratio, ratios.back());
      dual_gaps.push_back(exact->optimal_energy / greedy.opt_lower_bound);

      const auto avr = run_avr_energy(instance, row.alpha);
      avr_ratios.push_back(avr.energy / exact->optimal_energy);
    }
    row.geo_ratio = util::geometric_mean(ratios);
    row.geo_avr = util::geometric_mean(avr_ratios);
    row.geo_dual_gap = util::geometric_mean(dual_gaps);
  });

  util::Table table({"alpha", "greedy/OPT (geo)", "greedy/OPT (max)",
                     "bound a^a", "AVR/OPT (geo)", "OPT/dualLB (geo)",
                     "status"});
  bool all_pass = true;
  for (const Row& row : rows) {
    const double bound = theorem3_ratio_bound(row.alpha);
    const bool pass = row.feasible && row.all_certified &&
                      row.max_ratio <= bound + 1e-9 && row.geo_ratio >= 1.0 - 1e-9;
    all_pass = all_pass && pass;
    table.row(row.alpha, row.geo_ratio, row.max_ratio, bound, row.geo_avr,
              row.geo_dual_gap, pass ? "PASS" : "FAIL");
  }
  table.print(std::cout);
  std::cout << "(greedy/OPT is exact within the shared strategy grid; the\n"
            << " dual gap column shows how much slack the alpha^alpha dual\n"
            << " certificate leaves on benign instances)\n";

  // ---- Scale beyond brute force: single machine vs the YDS certificate ----
  // YDS is the exact PREEMPTIVE continuous-speed optimum, a lower bound on
  // the non-preemptive OPT, and runs at sizes the witness search cannot
  // reach. Ratios here are certified upper bounds on the greedy's true
  // competitive ratio.
  util::print_section(std::cout,
                      "single machine at scale: greedy vs YDS preemptive LB");
  util::Table yds_table({"alpha", "n", "greedy energy", "YDS LB",
                         "ratio (certified)", "bound a^a"});
  bool yds_pass = true;
  for (double alpha : cli.num_list("alphas")) {
    for (std::size_t n : {20u, 60u}) {
      workload::WorkloadConfig config;
      config.num_jobs = n;
      config.num_machines = 1;
      config.load = 0.8;
      config.with_deadlines = true;
      config.slack_min = 2.0;
      config.slack_max = 8.0;
      config.seed = util::derive_seed(4040, n);
      const Instance instance = workload::generate_workload(config);

      ConfigPDOptions pd_options;
      pd_options.alpha = alpha;
      pd_options.speed_levels = 8;
      const auto greedy = run_config_primal_dual(instance, pd_options);
      const auto yds = yds_optimal_energy(instance, alpha);
      if (!yds.has_value()) continue;
      const double ratio = greedy.algorithm_energy / yds->energy;
      yds_pass = yds_pass && ratio >= 1.0 - 1e-9 &&
                 ratio <= theorem3_ratio_bound(alpha) + 1e-9;
      yds_table.row(alpha, static_cast<unsigned long>(n),
                    greedy.algorithm_energy, yds->energy, ratio,
                    theorem3_ratio_bound(alpha));
    }
  }
  yds_table.print(std::cout);

  all_pass = all_pass && yds_pass;
  std::cout << (all_pass ? "E4 PASS: greedy within alpha^alpha of the exact "
                           "optimum (B&B) and of the YDS certificate\n"
                         : "E4 FAIL\n");
  return all_pass ? 0 : 1;
}
