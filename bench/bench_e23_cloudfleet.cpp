// E23 — huge-m cloud-fleet soak (registered scenario "e23_cloudfleet").
//
// The perf tier behind the huge-m frontier work: uint32 order tables past
// the uint16 id ceiling, the explicitly vectorized dispatch kernels
// (util/simd_argmin.hpp), and NUMA-aware shard workers. One closed-form
// cloud fleet is exercised three ways:
//
//  1. Dispatch sweep, m = 64 -> 262144 on the GENERATOR backend (no n x m
//     matrix ever exists; the closed form synthesizes rows on demand).
//     Synthesizing a DENSE row is itself Theta(m) per job, so the dense
//     endpoints cannot witness sublinear selection; they instead gate
//     "never meaningfully superlinear" (kMaxDenseExponent) — the
//     regression tripwire for the vectorized lower-bound fill.
//  2. A huge-m SPARSE cell at m = 262144 with ~64 eligible machines per
//     job: the uint32 (p, id) order table keeps per-job work O(row), so
//     throughput stays near the small-m cells' — the uint32-order-table
//     acceptance cell (tier_order_width == 32 is asserted). Because this
//     cell's per-job row work matches the dense m=64 cell (~64 entries
//     each) while m grows 4096x, the pair isolates MACHINE-SELECTION
//     cost, and the verdict asserts its scaling exponent stays below
//     kMaxScalingExponent — the "fleet frontier" property. A pure-O(m)
//     selection sweep (the pre-index shadow scan at huge m) fails this.
//  3. Streamed fleet serving at m = 4096: one generator-backed session
//     (metadata-only submissions) vs its batch twin — byte-identical
//     deterministic outputs asserted — plus an S=8 ShardDriver under
//     NumaPolicy::kInterleave (placement-only; a no-op on single-node
//     hosts). scripts/compare_bench.py prints shard-scaling efficiency
//     from the "sharded" / "stream t1" label pair.
//
// Every case reports its dispatch tier (tier_simd: 0 scalar / 1 avx2 /
// 2 avx512; tier_order_width: 0 / 16 / 32) so a perf number is always
// attributable to the code path that produced it. Tier metrics are
// hardware-shaped, NOT determinism inputs: compare_bench.py reports tier
// changes informationally instead of failing the diff (all tiers are
// bit-identical by the simd_argmin contract; tests/simd_argmin_test.cpp).
//
// Tags: "perf" + "slow" like e16-e22; CI's e23 smoke gate runs it at
// --scale 0.02 with --require-passed, so the sublinearity and
// byte-equality verdicts gate merges at reduced scale too.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/scheduler_api.hpp"
#include "harness/registry.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "util/rng.hpp"
#include "util/simd_argmin.hpp"
#include "util/timer.hpp"
#include "workload/generated_family.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

constexpr double kEpsilon = 0.25;
constexpr std::size_t kFleetMachines = 4096;
/// Machine-selection cost must scale no worse than m^kMaxScalingExponent
/// between the equal-row-work cells (dense m=64 vs sparse m=262144).
/// Exponent 1.0 = linear selection, the pre-index shadow-scan behavior;
/// the indexed + vectorized path measures ~0.6, so 0.95 rejects a linear
/// regression outright with ample noise margin.
constexpr double kMaxScalingExponent = 0.95;
/// The dense sweep includes Theta(m) per-job row synthesis, so its honest
/// bound is "at most linear, modulo the cache cliff at a 1 MiB row":
/// exponent must stay below this cap or the dispatch layer (not the
/// generator) has regressed.
constexpr double kMaxDenseExponent = 1.05;

enum class Mode {
  kStream = 0,  ///< one generator-backed session, metadata-only feed
  kSharded,     ///< ShardDriver: 8 generator tenants, NUMA interleave
  kBatch,       ///< api::run on the same generator instance (stream twin)
  kDispatch,    ///< batch dispatch sweep cell (generator backend)
  kDispatchSparse,  ///< huge-m sparse cell: uint32 order table, O(row) jobs
};

double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

workload::ClosedFormConfig fleet_config(std::uint64_t seed, std::size_t n,
                                        std::size_t m) {
  workload::ClosedFormConfig config;
  config.num_jobs = n;
  config.num_machines = m;
  config.seed = seed;
  config.load = 1.1;
  return config;
}

/// The tier attribution every case carries. Order width comes from the
/// summary (0 for generator/streamed stores, 16/32 for matrix backends);
/// the SIMD tier is process-wide.
void set_tier_metrics(MetricRow& row, const api::RunSummary& summary) {
  row.set("tier_simd", static_cast<double>(summary.dispatch_simd_tier));
  row.set("tier_order_width",
          static_cast<double>(summary.dispatch_order_width));
}

void set_deterministic_metrics(MetricRow& row, std::size_t rejected,
                               std::size_t completed, double total_flow) {
  row.set("rejected", static_cast<double>(rejected));
  row.set("completed", static_cast<double>(completed));
  row.set("total_flow", total_flow);
}

service::SessionOptions fleet_session_options(
    const workload::ClosedFormConfig& config) {
  service::SessionOptions options;
  options.run.epsilon = kEpsilon;
  options.run.validate = false;
  options.retain_records = false;
  options.storage = StorageBackend::kGenerator;
  options.generator = workload::make_closed_form_generator(config);
  return options;
}

MetricRow run_stream_case(const UnitContext& ctx, std::size_t n) {
  const workload::ClosedFormConfig config =
      fleet_config(ctx.scenario_seed, n, kFleetMachines);
  // kGenerator materialization is job records only — the metadata source.
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  service::SchedulerSession session(api::Algorithm::kTheorem1, kFleetMachines,
                                    fleet_session_options(config));
  util::Timer timer;
  StreamJob job;
  for (std::size_t idx = 0; idx < n; ++idx) {
    fill_stream_job_meta(instance.job(static_cast<JobId>(idx)), 0.0, &job);
    session.submit(job);
  }
  const api::RunSummary summary = session.drain();
  const double seconds = timer.elapsed_seconds();

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0);
  row.set("peak_rss_mib", peak_rss_mib());
  set_tier_metrics(row, summary);
  set_deterministic_metrics(row, summary.report.num_rejected,
                            summary.report.num_completed,
                            summary.report.total_flow);
  return row;
}

MetricRow run_sharded_case(const UnitContext& ctx, std::size_t n) {
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kWave = 8192;  ///< ops staged per shard per wave
  const std::size_t per_shard = std::max<std::size_t>(1, n / kShards);
  // Eight identical tenants of the same closed form (each session indexes
  // the generator by ITS OWN job ids, so equal feeds mean equal fleets) —
  // the serving-throughput shape, not a differential.
  const workload::ClosedFormConfig config =
      fleet_config(util::derive_seed(ctx.scenario_seed, 23), per_shard,
                   kFleetMachines);
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  service::ShardDriverOptions options;
  options.session = fleet_session_options(config);
  // The PR's placement knob, on: pins workers round-robin across NUMA
  // nodes where the host has them, a byte-identical no-op where it does
  // not (tests/numa_test.cpp holds the invariance either way).
  options.numa_policy = service::NumaPolicy::kInterleave;
  service::ShardDriver driver(api::Algorithm::kTheorem1, kShards,
                              kFleetMachines, options);
  util::Timer timer;
  StreamJob job;
  for (std::size_t at = 0; at < per_shard; at += kWave) {
    const std::size_t take = std::min(kWave, per_shard - at);
    for (std::size_t s = 0; s < kShards; ++s) {
      for (std::size_t k = 0; k < take; ++k) {
        fill_stream_job_meta(instance.job(static_cast<JobId>(at + k)), 0.0,
                             &job);
        driver.submit(s, job);
      }
      driver.flush();
    }
    driver.sync();
  }
  const std::vector<api::RunSummary> summaries = driver.drain_all();
  const double seconds = timer.elapsed_seconds();

  std::size_t rejected = 0;
  std::size_t completed = 0;
  double total_flow = 0.0;
  for (const api::RunSummary& summary : summaries) {
    rejected += summary.report.num_rejected;
    completed += summary.report.num_completed;
    total_flow += summary.report.total_flow;
  }
  const auto total_jobs = static_cast<double>(per_shard * kShards);
  const auto workers =
      static_cast<double>(std::max<std::size_t>(1, driver.worker_count()));
  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec", seconds > 0.0 ? total_jobs / seconds : 0.0);
  row.set("per_worker_jobs_per_sec",
          seconds > 0.0 ? total_jobs / seconds / workers : 0.0);
  row.set("workers", workers);
  row.set("pinned_workers", static_cast<double>(driver.pinned_workers()));
  row.set("peak_rss_mib", peak_rss_mib());
  set_tier_metrics(row, summaries.front());
  set_deterministic_metrics(row, rejected, completed, total_flow);
  return row;
}

MetricRow run_batch_case(const UnitContext& ctx, std::size_t n) {
  // The SAME workload run_stream_case fed (same config, same seed), as one
  // batch run on the generator instance.
  const workload::ClosedFormConfig config =
      fleet_config(ctx.scenario_seed, n, kFleetMachines);
  const Instance instance =
      workload::make_closed_form_instance(config, StorageBackend::kGenerator);
  api::RunOptions options;
  options.epsilon = kEpsilon;
  options.validate = false;
  util::Timer timer;
  const api::RunSummary summary =
      api::run(api::Algorithm::kTheorem1, instance, options);
  const double seconds = timer.elapsed_seconds();

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0);
  row.set("peak_rss_mib", peak_rss_mib());
  set_tier_metrics(row, summary);
  set_deterministic_metrics(row, summary.report.num_rejected,
                            summary.report.num_completed,
                            summary.report.total_flow);
  return row;
}

MetricRow run_dispatch_case(const UnitContext& ctx, std::size_t n,
                            std::size_t m, bool sparse) {
  workload::ClosedFormConfig config =
      fleet_config(util::derive_seed(ctx.scenario_seed, 91), n, m);
  if (sparse) {
    // ~64 eligible machines per job regardless of m: per-job dispatch work
    // is O(row), and the order table carries uint32 ids at this m.
    config.eligibility =
        std::min(1.0, 64.0 / static_cast<double>(m));
  }
  const Instance instance = workload::make_closed_form_instance(
      config, sparse ? StorageBackend::kSparseCsr : StorageBackend::kGenerator);
  api::RunOptions options;
  options.epsilon = kEpsilon;
  options.validate = false;
  util::Timer timer;
  const api::RunSummary summary =
      api::run(api::Algorithm::kTheorem1, instance, options);
  const double seconds = timer.elapsed_seconds();

  MetricRow row;
  row.set("seconds", seconds);
  row.set("jobs_per_sec",
          seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0);
  row.set("peak_rss_mib", peak_rss_mib());
  set_tier_metrics(row, summary);
  set_deterministic_metrics(row, summary.report.num_rejected,
                            summary.report.num_completed,
                            summary.report.total_flow);
  return row;
}

MetricRow run_e23_unit(const UnitContext& ctx) {
  const auto mode = static_cast<Mode>(static_cast<int>(ctx.param("mode")));
  const std::size_t n = ctx.scaled(static_cast<std::size_t>(ctx.param("n")));
  switch (mode) {
    case Mode::kStream: return run_stream_case(ctx, n);
    case Mode::kSharded: return run_sharded_case(ctx, n);
    case Mode::kBatch: return run_batch_case(ctx, n);
    case Mode::kDispatch:
      return run_dispatch_case(
          ctx, n, static_cast<std::size_t>(ctx.param("m")), false);
    case Mode::kDispatchSparse:
      return run_dispatch_case(
          ctx, n, static_cast<std::size_t>(ctx.param("m")), true);
  }
  OSCHED_CHECK(false) << "unreachable mode";
  return MetricRow{};
}

Scenario make_e23() {
  Scenario scenario;
  scenario.name = "e23_cloudfleet";
  scenario.description =
      "huge-m cloud fleet: generator dispatch sweep m=64..262144 with "
      "sublinear-in-m verdict, uint32-order-table sparse cell, streamed vs "
      "batch twin, NUMA-interleaved shard fleet";
  scenario.tags = {"perf", "streaming", "storage", "slow"};
  scenario.repetitions = 1;
  const struct {
    const char* label;
    Mode mode;
    double n;
    double m;
  } cells[] = {
      // Streamed cases first (peak RSS is a process high-water mark).
      {"stream t1 fleet m=4096 n=200000", Mode::kStream, 200000, 4096},
      {"stream sharded S=8 numa m=4096 n=200000", Mode::kSharded, 200000,
       4096},
      {"batch t1 fleet m=4096 n=200000", Mode::kBatch, 200000, 4096},
      // The generator dispatch sweep: 4096x in m, 64 -> 262144.
      {"dispatch gen m=64 n=20000", Mode::kDispatch, 20000, 64},
      {"dispatch gen m=1024 n=20000", Mode::kDispatch, 20000, 1024},
      {"dispatch gen m=16384 n=20000", Mode::kDispatch, 20000, 16384},
      {"dispatch gen m=262144 n=5000", Mode::kDispatch, 5000, 262144},
      // The uint32 order-table cell: huge m, bounded eligibility.
      {"dispatch sparse order32 m=262144 n=20000", Mode::kDispatchSparse,
       20000, 262144},
  };
  for (const auto& cell : cells) {
    scenario.grid.push_back(CaseSpec(cell.label)
                                .with("mode", static_cast<double>(cell.mode))
                                .with("n", cell.n)
                                .with("m", cell.m));
  }
  scenario.run_unit = run_e23_unit;
  scenario.evaluate = [](const ScenarioReport& report) {
    // Gate 1: streamed == batch, bit for bit, on the shared fleet.
    const auto& streamed = report.case_result("stream t1 fleet m=4096 n=200000");
    const auto& batch = report.case_result("batch t1 fleet m=4096 n=200000");
    for (const char* metric : {"rejected", "completed", "total_flow"}) {
      const double a = streamed.metric(metric).mean();
      const double b = batch.metric(metric).mean();
      if (a != b) {
        return Verdict{false, std::string("streamed/batch mismatch on ") +
                                  metric + ": " + std::to_string(a) + " vs " +
                                  std::to_string(b)};
      }
    }
    // Gate 2: the huge-m sparse cell really ran the uint32 order table.
    const auto& order32 =
        report.case_result("dispatch sparse order32 m=262144 n=20000");
    if (order32.metric("tier_order_width").mean() != 32.0) {
      return Verdict{false,
                     "sparse m=262144 cell expected tier_order_width 32, got " +
                         std::to_string(
                             order32.metric("tier_order_width").mean())};
    }
    // Gate 3: sublinear MACHINE SELECTION. A dense generator row is
    // synthesized per job and is itself Theta(m), so the dense endpoints
    // can never separate selection cost from row materialization. The
    // two cells below hold per-job row work constant (~64 entries each:
    // dense m=64, and sparse m=262144 with eligibility 64/m) while m
    // grows 4096x — any throughput gap is selection-side cost. With
    // selection cost ~ m^e, thr(64)/thr(262144) ~ 4096^e; assert
    // e < kMaxScalingExponent.
    const double thr_small =
        report.case_result("dispatch gen m=64 n=20000")
            .metric("jobs_per_sec").mean();
    const double thr_select =
        report.case_result("dispatch sparse order32 m=262144 n=20000")
            .metric("jobs_per_sec").mean();
    const double thr_dense_large =
        report.case_result("dispatch gen m=262144 n=5000")
            .metric("jobs_per_sec").mean();
    if (!(thr_small > 0.0) || !(thr_select > 0.0) ||
        !(thr_dense_large > 0.0)) {
      return Verdict{false, "dispatch sweep produced a zero throughput"};
    }
    const double m_ratio = 262144.0 / 64.0;
    const double exponent =
        std::log(thr_small / thr_select) / std::log(m_ratio);
    if (!(exponent < kMaxScalingExponent)) {
      return Verdict{false,
                     "machine selection not sublinear in m: exponent " +
                         std::to_string(exponent) + " (thr m=64 " +
                         std::to_string(thr_small) + ", sparse m=262144 " +
                         std::to_string(thr_select) + "), cap " +
                         std::to_string(kMaxScalingExponent)};
    }
    // Gate 4: the dense sweep may approach linear (row synthesis is
    // Theta(m)) but must never go meaningfully SUPERlinear — that would
    // mean the dispatch layer regressed, not the generator.
    const double dense_exponent =
        std::log(thr_small / thr_dense_large) / std::log(m_ratio);
    if (!(dense_exponent < kMaxDenseExponent)) {
      return Verdict{false,
                     "dense dispatch went superlinear in m: exponent " +
                         std::to_string(dense_exponent) + ", cap " +
                         std::to_string(kMaxDenseExponent)};
    }
    char note[200];
    std::snprintf(note, sizeof(note),
                  "streamed == batch bit-for-bit; selection exponent %.3f "
                  "(cap %.2f), dense sweep exponent %.3f (cap %.2f) over "
                  "4096x m; order32 cell active",
                  exponent, kMaxScalingExponent, dense_exponent,
                  kMaxDenseExponent);
    return Verdict{true, note};
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e23);

}  // namespace
