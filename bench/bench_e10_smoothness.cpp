// E10 — smoothness of polynomial powers (registered scenario
// "e10_smoothness", Definition 1).
//
// Theorem 3's alpha^alpha ratio = lambda/(1-mu) rests on P(s)=s^alpha being
// (Theta(alpha^{alpha-1}), (alpha-1)/alpha)-smooth [18]. The probe stresses
// the smooth inequality with adversarial random sequences and reports the
// smallest lambda that would have sufficed at mu=(alpha-1)/alpha, plus the
// ratio bound that empirical lambda would imply ("implied_ratio" tracking
// alpha^alpha confirms the smoothness route to the bound).
#include "duality/smoothness.hpp"
#include "harness/registry.hpp"
#include "instance/power.hpp"
#include "metrics/ratio.hpp"
#include "util/table.hpp"

namespace {

using namespace osched;
using harness::CaseSpec;
using harness::MetricRow;
using harness::Scenario;
using harness::ScenarioReport;
using harness::UnitContext;
using harness::Verdict;

Scenario make_e10() {
  Scenario scenario;
  scenario.name = "e10_smoothness";
  scenario.description =
      "empirical smoothness of P(s)=s^alpha backing Theorem 3's ratio";
  scenario.tags = {"energy", "smoothness", "paper", "smoke"};
  scenario.repetitions = 2;
  for (const double alpha : {1.5, 2.0, 2.5, 3.0, 3.5}) {
    scenario.grid.push_back(
        CaseSpec("alpha=" + util::Table::num(alpha, 2)).with("alpha", alpha));
  }
  scenario.run_unit = [](const UnitContext& ctx) {
    const double alpha = ctx.param("alpha");
    const auto probe = probe_polynomial_smoothness(alpha, ctx.scaled(20000),
                                                   /*sequence_length=*/16,
                                                   ctx.seed);
    MetricRow row;
    row.set("mu", probe.mu);
    row.set("required_lambda", probe.required_lambda);
    row.set("claimed_lambda", probe.claimed_lambda);
    row.set("implied_ratio", probe.required_lambda / (1.0 - probe.mu));
    row.set("alpha_pow_alpha", theorem3_ratio_bound(alpha));
    // The Theta() in [18] hides a constant; requiring <= 3x the witness
    // keeps the check honest without hard-coding their exact constant.
    row.set("within_claim", probe.within_claim(3.0) ? 1.0 : 0.0);
    return row;
  };
  scenario.evaluate = [](const ScenarioReport& report) {
    Verdict verdict;
    for (const harness::CaseResult& c : report.cases) {
      if (c.metric("within_claim").min() < 1.0) {
        verdict.pass = false;
        verdict.note = "smoothness claim violated at " + c.spec.label;
        return verdict;
      }
    }
    verdict.note = "empirical lambda within 3x of alpha^{alpha-1} everywhere";
    return verdict;
  };
  return scenario;
}

OSCHED_REGISTER_SCENARIO(make_e10);

}  // namespace
