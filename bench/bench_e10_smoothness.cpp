// E10 — smoothness of polynomial powers (Definition 1).
//
// Theorem 3's alpha^alpha ratio = lambda/(1-mu) rests on P(s)=s^alpha being
// (Theta(alpha^{alpha-1}), (alpha-1)/alpha)-smooth [18]. The probe stresses
// the smooth inequality with adversarial random sequences and reports the
// smallest lambda that would have sufficed at mu=(alpha-1)/alpha, plus the
// ratio bound that empirical lambda would imply.
#include <cmath>
#include <iostream>

#include "duality/smoothness.hpp"
#include "instance/power.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("alphas", "1.5,2,2.5,3,3.5", "alpha sweep");
  cli.flag("trials", "20000", "random sequences per alpha");
  cli.flag("length", "16", "sequence length");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const auto trials = static_cast<std::size_t>(cli.integer("trials"));
  const auto length = static_cast<std::size_t>(cli.integer("length"));

  std::cout << "E10: empirical smoothness of P(s)=s^alpha (" << trials
            << " adversarial sequences x length " << length << ")\n";

  util::Table table({"alpha", "mu=(a-1)/a", "lambda required", "alpha^{a-1}",
                     "implied ratio", "alpha^alpha", "status"});
  bool all_pass = true;
  for (double alpha : cli.num_list("alphas")) {
    const auto probe = probe_polynomial_smoothness(alpha, trials, length, 10101);
    const double implied_ratio = probe.required_lambda / (1.0 - probe.mu);
    // The Theta() in [18] hides a constant; requiring <= 3x the witness
    // keeps the check honest without hard-coding their exact constant.
    const bool pass = probe.within_claim(3.0);
    all_pass = all_pass && pass;
    table.row(alpha, probe.mu, probe.required_lambda, probe.claimed_lambda,
              implied_ratio, theorem3_ratio_bound(alpha), pass ? "PASS" : "FAIL");
  }
  table.print(std::cout);
  std::cout << "('implied ratio' = required_lambda/(1-mu): what the ratio of\n"
            << " Theorem 3 would be with the EMPIRICAL lambda — tracking\n"
            << " alpha^alpha confirms the smoothness route to the bound)\n"
            << (all_pass ? "E10 PASS\n" : "E10 FAIL\n");
  return all_pass ? 0 : 1;
}
