// Speed-scaling cluster scenario (Theorem 2): weighted jobs on unrelated
// machines whose power curves follow P(s) = s^alpha. Sweeps alpha and
// reports the weighted-flow/energy split, the rejected weight and the
// certified ratio for each.
//
//   ./energy_cluster [--jobs=800 --machines=4 --eps=0.4 --alphas=2,2.5,3 --seed=1]
#include <iostream>

#include "core/energy_flow/energy_flow.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "800", "number of jobs");
  cli.flag("machines", "4", "number of machines");
  cli.flag("eps", "0.4", "rejected-weight budget");
  cli.flag("alphas", "2,2.5,3", "power exponents to sweep");
  cli.flag("seed", "1", "workload seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  workload::WorkloadConfig config;
  config.num_jobs = static_cast<std::size_t>(cli.integer("jobs"));
  config.num_machines = static_cast<std::size_t>(cli.integer("machines"));
  config.load = 1.0;
  config.weights = workload::WeightDistribution::kUniform;
  config.sizes.dist = workload::SizeDistribution::kLognormal;
  config.machines.model = workload::MachineModel::kRelated;
  config.machines.speed_spread = 2.5;
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const Instance instance = workload::generate_workload(config);
  const double eps = cli.num("eps");

  std::cout << "workload: " << config.num_jobs
            << " weighted lognormal jobs on " << config.num_machines
            << " related machines, eps = " << eps << ", seed " << config.seed
            << "\n";

  util::Table table({"alpha", "gamma", "wflow", "energy", "objective",
                     "rej weight %", "ratio<=", "theorem bound"});
  for (double alpha : cli.num_list("alphas")) {
    EnergyFlowOptions options;
    options.epsilon = eps;
    options.alpha = alpha;
    const auto result = run_energy_flow(instance, options);
    check_schedule(result.schedule, instance);

    const PolynomialPower power(alpha);
    const ObjectiveReport report = evaluate(result.schedule, instance, &power);
    const double objective = report.flow_plus_energy();
    table.row(alpha, result.gamma, report.total_weighted_flow, report.energy,
              objective, 100.0 * report.rejected_weight_fraction,
              objective / result.best_lower_bound(),
              theorem2_ratio_bound(eps, alpha));
  }
  table.print(std::cout);
  std::cout << "('ratio<=' is ALG / certified lower bound; the theorem bound\n"
            << " column is the paper's guarantee for this eps and alpha)\n";
  return 0;
}
