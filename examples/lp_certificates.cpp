// Certificate walkthrough: how this repository knows what it claims.
//
// Every competitive-ratio number reported by the benches divides an
// algorithm's measured cost by a CERTIFIED lower bound on the optimum. This
// example builds one small instance and walks the whole chain on it:
//
//   sum p_min  <=  dual/2  or  LP/2  <=  OPT  <=  greedy upper bounds
//
// printing each certificate, the exact optimum (branch-and-bound), and
// where the Theorem 1 run lands — so a reader can see the sandwich close
// around OPT on a real instance.
//
//   ./lp_certificates [--jobs=6] [--eps=0.25] [--seed=3] [--grid=96]
#include <iostream>

#include "baselines/flow_lower_bounds.hpp"
#include "core/flow/rejection_flow.hpp"
#include "lp/flow_time_lp.hpp"
#include "metrics/ratio.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "viz/gantt.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "6", "jobs (exact OPT is exponential in this)");
  cli.flag("eps", "0.25", "Theorem 1 rejection parameter");
  cli.flag("seed", "3", "workload seed");
  cli.flag("grid", "96", "LP time-grid cells");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");

  workload::WorkloadConfig config;
  config.num_jobs = static_cast<std::size_t>(cli.integer("jobs"));
  config.num_machines = 2;
  config.load = 1.2;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const Instance instance = workload::generate_workload(config);

  std::cout << "One instance, every certificate (n=" << instance.num_jobs()
            << ", m=" << instance.num_machines() << ", seed=" << config.seed
            << ")\n\n";

  // ---- Lower bounds, weakest to strongest ----
  const double sum_pmin = lb_sum_min_processing(instance);

  const auto t1 = run_rejection_flow(instance, {.epsilon = eps});
  const double dual_lb = t1.opt_lower_bound;

  lp::FlowLpOptions lp_options;
  lp_options.target_intervals = static_cast<std::size_t>(cli.integer("grid"));
  const auto lp_result = lp::solve_flow_time_lp(instance, lp_options);

  const auto opt = exact_optimal_flow_unrelated(instance);

  util::Table table({"quantity", "value", "certifies"});
  table.row("sum of min p_ij", sum_pmin, "OPT >= this (trivially)");
  table.row("Theorem 1 dual / 2", dual_lb,
            "OPT >= this (Lemma 4 feasible dual + weak duality)");
  if (lp_result.optimal()) {
    table.row("time-indexed LP / 2", lp_result.lower_bound,
              "OPT >= this (LP relaxation, factor-2 objective)");
  }
  if (opt) {
    table.row("exact OPT (B&B)", *opt, "ground truth (complete all jobs)");
  }
  table.row("Theorem 1 total flow", t1.schedule.total_flow(instance),
            "the algorithm, rejecting <= 2*eps*n jobs");
  table.row("Theorem 1 bound", opt ? theorem1_ratio_bound(eps) * *opt : 0.0,
            "2((1+eps)/eps)^2 * OPT — the theorem's ceiling");
  table.print(std::cout);

  if (opt && lp_result.optimal()) {
    std::cout << "certificate tightness on this instance:  sum_pmin "
              << util::Table::num(sum_pmin / *opt, 3) << " | dual/2 "
              << util::Table::num(dual_lb / *opt, 3) << " | LP/2 "
              << util::Table::num(lp_result.lower_bound / *opt, 3)
              << "  (fraction of true OPT)\n\n";
  }

  // ---- The LP's fractional assignment vs the algorithm's integral one ----
  util::print_section(std::cout, "LP fractional machine assignment (time units)");
  if (lp_result.optimal()) {
    util::Table assignment({"job", "machine 0", "machine 1", "T1 ran it on"});
    for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
      const auto& rec = t1.schedule.record(static_cast<JobId>(j));
      assignment.row(static_cast<unsigned long>(j),
                     lp_result.machine_time[0][j], lp_result.machine_time[1][j],
                     rec.machine == kInvalidMachine
                         ? std::string("-")
                         : "m" + std::to_string(rec.machine) +
                               (rec.rejected() ? " (rejected)" : ""));
    }
    assignment.print(std::cout);
  }

  util::print_section(std::cout, "Theorem 1 schedule");
  std::cout << viz::render_gantt(t1.schedule, instance, {.width = 72});
  return 0;
}
