// Deadline-constrained energy minimization (Theorem 3): jobs with hard
// deadlines on a small cluster; the configuration primal-dual greedy vs the
// AVR baseline vs (on small instances) the exact optimum.
//
//   ./deadline_energy [--jobs=30 --machines=2 --alpha=2.5 --seed=1 --exact=true]
#include <iostream>

#include "baselines/avr_energy.hpp"
#include "core/energy_min/bruteforce.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "30", "number of jobs");
  cli.flag("machines", "2", "number of machines");
  cli.flag("alpha", "2.5", "power exponent");
  cli.flag("seed", "1", "workload seed");
  cli.flag("exact", "false", "also run the exact optimum (small jobs only)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  workload::WorkloadConfig config;
  config.num_jobs = static_cast<std::size_t>(cli.integer("jobs"));
  config.num_machines = static_cast<std::size_t>(cli.integer("machines"));
  config.load = 0.8;
  config.with_deadlines = true;
  config.slack_min = 1.5;
  config.slack_max = 5.0;
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const Instance instance = workload::generate_workload(config);
  const double alpha = cli.num("alpha");

  std::cout << "workload: " << config.num_jobs << " deadline jobs (slack "
            << config.slack_min << "-" << config.slack_max << "x) on "
            << config.num_machines << " machines, P(s)=s^" << alpha
            << ", seed " << config.seed << "\n";

  ValidationOptions vopts;
  vopts.allow_parallel_execution = true;
  vopts.require_deadlines = true;

  ConfigPDOptions pd_options;
  pd_options.alpha = alpha;
  pd_options.speed_levels = 8;
  pd_options.start_grid = 0.5;
  const auto pd = run_config_primal_dual(instance, pd_options);
  check_schedule(pd.schedule, instance, vopts);

  const auto avr = run_avr_energy(instance, alpha);
  check_schedule(avr.schedule, instance, vopts);

  util::Table table({"algorithm", "energy", "vs dual LB"});
  table.row("config primal-dual (thm 3)", pd.algorithm_energy,
            pd.algorithm_energy / pd.opt_lower_bound);
  table.row("AVR baseline [17]", avr.energy, avr.energy / pd.opt_lower_bound);

  if (cli.boolean("exact")) {
    BruteForceOptions bf_options;
    bf_options.alpha = alpha;
    bf_options.speed_levels = 4;
    bf_options.start_grid = 1.0;
    if (const auto exact = brute_force_energy(instance, bf_options)) {
      table.row(exact->certified_optimal ? "exact optimum" : "B&B incumbent",
                exact->optimal_energy,
                exact->optimal_energy / pd.opt_lower_bound);
      std::cout << "greedy/OPT ratio: "
                << pd.algorithm_energy / exact->optimal_energy
                << " (theorem bound alpha^alpha = "
                << theorem3_ratio_bound(alpha) << ")\n";
    } else {
      std::cout << "exact search exhausted its node budget\n";
    }
  }
  table.print(std::cout);
  std::cout << "dual lower bound (Lemma 7 + weak duality): "
            << pd.opt_lower_bound << "\n";
  return 0;
}
