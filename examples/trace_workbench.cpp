// Trace workbench: generate synthetic traces to CSV, inspect them, and run
// any of the library's schedulers on a trace file. Glue for experiment
// pipelines that want to keep workloads as artifacts.
//
//   ./trace_workbench --mode=generate --out=/tmp/trace.csv --jobs=500
//       --machines=4 --load=1.1 --sizes=pareto --seed=7
//   ./trace_workbench --mode=inspect --in=/tmp/trace.csv
//   ./trace_workbench --mode=run --in=/tmp/trace.csv --algo=theorem1 --eps=0.2
#include <iostream>

#include <fstream>

#include "api/scheduler_api.hpp"
#include "baselines/flow_lower_bounds.hpp"
#include "metrics/metrics.hpp"
#include "sim/schedule_io.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace osched;

workload::SizeDistribution parse_sizes(const std::string& name) {
  if (name == "uniform") return workload::SizeDistribution::kUniform;
  if (name == "exponential") return workload::SizeDistribution::kExponential;
  if (name == "pareto") return workload::SizeDistribution::kPareto;
  if (name == "bimodal") return workload::SizeDistribution::kBimodal;
  if (name == "lognormal") return workload::SizeDistribution::kLognormal;
  std::cerr << "unknown size distribution '" << name << "', using uniform\n";
  return workload::SizeDistribution::kUniform;
}

int generate(const util::Cli& cli) {
  workload::WorkloadConfig config;
  config.num_jobs = static_cast<std::size_t>(cli.integer("jobs"));
  config.num_machines = static_cast<std::size_t>(cli.integer("machines"));
  config.load = cli.num("load");
  config.sizes.dist = parse_sizes(cli.str("sizes"));
  config.weights = workload::WeightDistribution::kUniform;
  config.with_deadlines = cli.boolean("deadlines");
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const Instance instance = workload::generate_workload(config);
  const std::string path = cli.str("out");
  if (!workload::save_instance(instance, path)) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << instance.num_jobs() << " jobs x "
            << instance.num_machines() << " machines to " << path << "\n";
  return 0;
}

int inspect(const Instance& instance) {
  util::Table table({"property", "value"});
  table.row("jobs", static_cast<int>(instance.num_jobs()));
  table.row("machines", static_cast<int>(instance.num_machines()));
  table.row("total weight", instance.total_weight());
  table.row("processing spread (Delta)", instance.processing_spread());
  double min_release = 0.0, max_release = 0.0;
  bool has_deadlines = false;
  if (instance.num_jobs() > 0) {
    min_release = instance.job(0).release;
    max_release =
        instance.job(static_cast<JobId>(instance.num_jobs() - 1)).release;
    for (const Job& job : instance.jobs()) {
      has_deadlines = has_deadlines || job.has_deadline();
    }
  }
  table.row("release span", max_release - min_release);
  table.row("has deadlines", has_deadlines ? "yes" : "no");
  table.row("sum of min processing", lb_sum_min_processing(instance));
  table.print(std::cout);
  return 0;
}

int run(const util::Cli& cli, const Instance& instance) {
  const std::string algo = cli.str("algo");
  const auto algorithm = api::parse_algorithm(algo);
  if (!algorithm) {
    std::cerr << "unknown --algo '" << algo << "' (";
    for (const std::string& name : api::algorithm_names()) {
      std::cerr << name << ' ';
    }
    std::cerr << ")\n";
    return 1;
  }
  api::RunOptions options;
  options.epsilon = cli.num("eps");
  options.alpha = cli.num("alpha");
  const api::RunSummary summary = api::run(*algorithm, instance, options);
  std::cout << algo << ": " << to_string(summary.report) << "\n";
  if (summary.certified_lower_bound > 0.0) {
    std::cout << "certified lower bound: " << summary.certified_lower_bound
              << "\n";
  }
  if (const std::string dump = cli.str("dump"); !dump.empty()) {
    std::ofstream out(dump);
    if (!out) {
      std::cerr << "cannot open --dump file '" << dump << "'\n";
      return 1;
    }
    write_schedule_csv(summary.schedule, out);
    std::cout << "schedule written to " << dump << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("mode", "inspect", "generate | inspect | run");
  cli.flag("in", "", "input trace (inspect/run)");
  cli.flag("out", "/tmp/osched_trace.csv", "output trace (generate)");
  cli.flag("jobs", "500", "generate: number of jobs");
  cli.flag("machines", "4", "generate: number of machines");
  cli.flag("load", "1.0", "generate: target utilization");
  cli.flag("sizes", "pareto", "generate: size distribution");
  cli.flag("deadlines", "false", "generate: attach deadlines");
  cli.flag("seed", "1", "generate: RNG seed");
  cli.flag("algo", "theorem1",
           "run: theorem1 | theorem2 | theorem3 | weighted-ext | greedy-spt "
           "| fifo | immediate-reject");
  cli.flag("eps", "0.2", "run: rejection parameter");
  cli.flag("alpha", "2.0", "run: power exponent (theorem2)");
  cli.flag("dump", "", "run: write the schedule record to this CSV file");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const std::string mode = cli.str("mode");
  if (mode == "generate") return generate(cli);

  // inspect / run need an input trace; default to a small generated demo so
  // the binary is runnable with no arguments.
  Instance instance;
  const std::string in = cli.str("in");
  if (in.empty()) {
    workload::WorkloadConfig config;
    config.num_jobs = 200;
    config.num_machines = 3;
    config.seed = 42;
    instance = workload::generate_workload(config);
    std::cout << "(no --in given: using a generated 200-job demo trace)\n";
  } else {
    std::string error;
    auto loaded = workload::load_instance(in, &error);
    if (!loaded) {
      std::cerr << "cannot load " << in << ": " << error << "\n";
      return 1;
    }
    instance = std::move(*loaded);
  }
  if (mode == "inspect") return inspect(instance);
  if (mode == "run") return run(cli, instance);
  std::cerr << "unknown --mode '" << mode << "'\n";
  return 1;
}
