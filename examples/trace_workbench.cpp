// Trace workbench: generate synthetic traces to CSV, inspect them, run any
// of the library's schedulers on a trace file, or stream a trace through a
// live SchedulerSession with fault injection and checkpoint/restore. Glue
// for experiment pipelines that want to keep workloads as artifacts; the
// operator-facing usage is documented in docs/OPERATIONS.md.
//
//   ./trace_workbench --mode=generate --out=/tmp/trace.csv --jobs=500
//       --machines=4 --load=1.1 --sizes=pareto --seed=7
//   ./trace_workbench --mode=inspect --in=/tmp/trace.csv
//   ./trace_workbench --mode=run --in=/tmp/trace.csv --algo=theorem1 --eps=0.2
//   ./trace_workbench --mode=stream --in=/tmp/trace.csv --algo=theorem1
//       --fail=4.0:0 --join=9.0:0 --budget=8 --speed=2.0:1:0.5,8.0:1:1.0
//       --window-cap=64 --shed-budget=16
//       --checkpoint-at=6.0 --checkpoint-out=/tmp/session.ckpt
//   ./trace_workbench --mode=stream --in=/tmp/trace.csv --algo=theorem1
//       --window-cap=16 --shed-policy=epsilon
//       --adaptive-cap=8:32:4.0:2.0:1 --fairness=4:8
//   ./trace_workbench --mode=restore --from=/tmp/session.ckpt
//       --in=/tmp/trace.csv
#include <iostream>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "api/scheduler_api.hpp"
#include "baselines/flow_lower_bounds.hpp"
#include "instance/stream_job.hpp"
#include "metrics/metrics.hpp"
#include "service/checkpoint.hpp"
#include "service/scheduler_session.hpp"
#include "service/shard_driver.hpp"
#include "sim/schedule_io.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace osched;

workload::SizeDistribution parse_sizes(const std::string& name) {
  if (name == "uniform") return workload::SizeDistribution::kUniform;
  if (name == "exponential") return workload::SizeDistribution::kExponential;
  if (name == "pareto") return workload::SizeDistribution::kPareto;
  if (name == "bimodal") return workload::SizeDistribution::kBimodal;
  if (name == "lognormal") return workload::SizeDistribution::kLognormal;
  std::cerr << "unknown size distribution '" << name << "', using uniform\n";
  return workload::SizeDistribution::kUniform;
}

int generate(const util::Cli& cli) {
  workload::WorkloadConfig config;
  config.num_jobs = static_cast<std::size_t>(cli.integer("jobs"));
  config.num_machines = static_cast<std::size_t>(cli.integer("machines"));
  config.load = cli.num("load");
  config.sizes.dist = parse_sizes(cli.str("sizes"));
  config.weights = workload::WeightDistribution::kUniform;
  config.with_deadlines = cli.boolean("deadlines");
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const Instance instance = workload::generate_workload(config);
  const std::string path = cli.str("out");
  if (!workload::save_instance(instance, path)) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << instance.num_jobs() << " jobs x "
            << instance.num_machines() << " machines to " << path << "\n";
  return 0;
}

int inspect(const Instance& instance) {
  util::Table table({"property", "value"});
  table.row("jobs", static_cast<int>(instance.num_jobs()));
  table.row("machines", static_cast<int>(instance.num_machines()));
  table.row("total weight", instance.total_weight());
  table.row("processing spread (Delta)", instance.processing_spread());
  double min_release = 0.0, max_release = 0.0;
  bool has_deadlines = false;
  if (instance.num_jobs() > 0) {
    min_release = instance.job(0).release;
    max_release =
        instance.job(static_cast<JobId>(instance.num_jobs() - 1)).release;
    for (const Job& job : instance.jobs()) {
      has_deadlines = has_deadlines || job.has_deadline();
    }
  }
  table.row("release span", max_release - min_release);
  table.row("has deadlines", has_deadlines ? "yes" : "no");
  table.row("storage backend", to_string(instance.backend()));
  table.row("dispatch index",
            instance.dispatch_index_active() ? "active"
                                             : "inactive (shadow-row scan)");
  table.row("sum of min processing", lb_sum_min_processing(instance));
  table.print(std::cout);
  return 0;
}

int run(const util::Cli& cli, const Instance& instance) {
  const std::string algo = cli.str("algo");
  const auto algorithm = api::parse_algorithm(algo);
  if (!algorithm) {
    std::cerr << "unknown --algo '" << algo << "' (";
    for (const std::string& name : api::algorithm_names()) {
      std::cerr << name << ' ';
    }
    std::cerr << ")\n";
    return 1;
  }
  api::RunOptions options;
  options.epsilon = cli.num("eps");
  options.alpha = cli.num("alpha");
  const api::RunSummary summary = api::run(*algorithm, instance, options);
  std::cout << algo << ": " << to_string(summary.report) << "\n";
  if (summary.certified_lower_bound > 0.0) {
    std::cout << "certified lower bound: " << summary.certified_lower_bound
              << "\n";
  }
  if (const std::string dump = cli.str("dump"); !dump.empty()) {
    std::ofstream out(dump);
    if (!out) {
      std::cerr << "cannot open --dump file '" << dump << "'\n";
      return 1;
    }
    write_schedule_csv(summary.schedule, out);
    std::cout << "schedule written to " << dump << "\n";
  }
  return 0;
}

/// Parses a "time:machine,time:machine,..." fleet-event flag.
bool parse_fleet_events(const std::string& spec, FleetEventKind kind,
                        std::vector<FleetEvent>* out) {
  std::stringstream items(spec);
  std::string item;
  while (std::getline(items, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      std::cerr << "bad fleet event '" << item << "' (want time:machine)\n";
      return false;
    }
    FleetEvent event;
    event.kind = kind;
    try {
      event.time = std::stod(item.substr(0, colon));
      event.machine = static_cast<MachineId>(std::stol(item.substr(colon + 1)));
    } catch (const std::exception&) {
      std::cerr << "bad fleet event '" << item << "' (want time:machine)\n";
      return false;
    }
    out->push_back(event);
  }
  return true;
}

/// Parses the "time:machine:multiplier,..." --speed flag into kSpeedChange
/// events (multiplier > 1 is a recovery/boost, < 1 a throttle; it applies
/// to jobs STARTED at or after the event — in-flight work is never
/// rescaled).
bool parse_speed_events(const std::string& spec, std::vector<FleetEvent>* out) {
  std::stringstream items(spec);
  std::string item;
  while (std::getline(items, item, ',')) {
    const auto first = item.find(':');
    const auto second =
        first == std::string::npos ? first : item.find(':', first + 1);
    if (second == std::string::npos) {
      std::cerr << "bad speed event '" << item
                << "' (want time:machine:multiplier)\n";
      return false;
    }
    FleetEvent event;
    event.kind = FleetEventKind::kSpeedChange;
    try {
      event.time = std::stod(item.substr(0, first));
      event.machine = static_cast<MachineId>(
          std::stol(item.substr(first + 1, second - first - 1)));
      event.speed = std::stod(item.substr(second + 1));
    } catch (const std::exception&) {
      std::cerr << "bad speed event '" << item
                << "' (want time:machine:multiplier)\n";
      return false;
    }
    out->push_back(event);
  }
  return true;
}

/// Builds the FleetPlan from --fail/--drain/--join/--speed/--down/--budget.
/// Returns false (with a message) on malformed flags or an invalid plan.
bool build_fleet_plan(const util::Cli& cli, std::size_t num_machines,
                      FleetPlan* plan) {
  if (!parse_fleet_events(cli.str("fail"), FleetEventKind::kFail,
                          &plan->events) ||
      !parse_fleet_events(cli.str("drain"), FleetEventKind::kDrain,
                          &plan->events) ||
      !parse_fleet_events(cli.str("join"), FleetEventKind::kJoin,
                          &plan->events) ||
      !parse_speed_events(cli.str("speed"), &plan->events)) {
    return false;
  }
  std::stable_sort(plan->events.begin(), plan->events.end(),
                   [](const FleetEvent& a, const FleetEvent& b) {
                     return a.time < b.time;
                   });
  std::stringstream down(cli.str("down"));
  std::string item;
  while (std::getline(down, item, ',')) {
    try {
      plan->initially_down.push_back(static_cast<MachineId>(std::stol(item)));
    } catch (const std::exception&) {
      std::cerr << "bad --down machine '" << item << "'\n";
      return false;
    }
  }
  plan->rejection_budget = static_cast<std::size_t>(cli.integer("budget"));
  if (const std::string problems = plan->validate(num_machines);
      !problems.empty()) {
    std::cerr << "invalid fleet plan: " << problems << "\n";
    return false;
  }
  return true;
}

/// Parses the --shed-policy flag ("fixed" keeps PR 7's fixed-budget rule,
/// "epsilon" selects the paper-derived ε-charged rule).
bool parse_shed_policy(const std::string& name, service::ShedPolicy* out) {
  if (name.empty() || name == "fixed") {
    *out = service::ShedPolicy::kFixedBudget;
    return true;
  }
  if (name == "epsilon" || name == "eps-charged") {
    *out = service::ShedPolicy::kEpsilonCharged;
    return true;
  }
  std::cerr << "unknown --shed-policy '" << name << "' (fixed | epsilon)\n";
  return false;
}

/// Parses the --adaptive-cap "min:max:window:delay[:hysteresis]" flag.
/// Empty spec leaves tuning disabled (the PR 7 pinned cap).
bool parse_adaptive_cap(const std::string& spec,
                        service::AdaptiveCapOptions* out) {
  if (spec.empty()) return true;
  std::stringstream fields(spec);
  std::string field;
  std::vector<std::string> parts;
  while (std::getline(fields, field, ':')) parts.push_back(field);
  if (parts.size() != 4 && parts.size() != 5) {
    std::cerr << "bad --adaptive-cap '" << spec
              << "' (want min:max:window:delay[:hysteresis])\n";
    return false;
  }
  try {
    out->enabled = true;
    out->min_cap = static_cast<std::size_t>(std::stoul(parts[0]));
    out->max_cap = static_cast<std::size_t>(std::stoul(parts[1]));
    out->window = std::stod(parts[2]);
    out->target_delay = std::stod(parts[3]);
    out->hysteresis =
        parts.size() == 5 ? static_cast<std::size_t>(std::stoul(parts[4])) : 0;
  } catch (const std::exception&) {
    std::cerr << "bad --adaptive-cap '" << spec
              << "' (want min:max:window:delay[:hysteresis])\n";
    return false;
  }
  if (out->min_cap < 1 || out->max_cap < out->min_cap || out->window <= 0.0 ||
      out->target_delay <= 0.0) {
    std::cerr << "bad --adaptive-cap '" << spec
              << "' (need 1 <= min <= max, window > 0, delay > 0)\n";
    return false;
  }
  return true;
}

/// Parses the --fairness "shards:quantum" flag. Empty spec leaves both at 0
/// (single-session stream, no DRR).
bool parse_fairness(const std::string& spec, std::size_t* shards,
                    std::size_t* quantum) {
  if (spec.empty()) return true;
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    std::cerr << "bad --fairness '" << spec << "' (want shards:quantum)\n";
    return false;
  }
  try {
    *shards = static_cast<std::size_t>(std::stoul(spec.substr(0, colon)));
    *quantum = static_cast<std::size_t>(std::stoul(spec.substr(colon + 1)));
  } catch (const std::exception&) {
    std::cerr << "bad --fairness '" << spec << "' (want shards:quantum)\n";
    return false;
  }
  if (*shards == 0 || *quantum == 0) {
    std::cerr << "bad --fairness '" << spec
              << "' (both shards and quantum must be >= 1)\n";
    return false;
  }
  return true;
}

void print_session_summary(const service::SchedulerSession& session,
                           const api::RunSummary& summary) {
  std::cout << to_string(summary.report) << "\n";
  const FleetStats& fleet = summary.fleet;
  if (fleet.joins + fleet.drains + fleet.fails > 0) {
    util::Table table({"fleet counter", "value"});
    table.row("joins", static_cast<int>(fleet.joins));
    table.row("drains", static_cast<int>(fleet.drains));
    table.row("fails", static_cast<int>(fleet.fails));
    table.row("redispatched", static_cast<int>(fleet.redispatched));
    table.row("fault rejections", static_cast<int>(fleet.fault_rejections));
    table.row("forced rejections", static_cast<int>(fleet.forced_rejections));
    table.row("budget spent", static_cast<int>(fleet.budget_spent));
    table.print(std::cout);
  }
  if (fleet.speed_changes > 0) {
    util::Table table({"speed counter", "value"});
    table.row("speed changes", static_cast<int>(fleet.speed_changes));
    table.row("throttles", static_cast<int>(fleet.throttles));
    table.row("recoveries", static_cast<int>(fleet.recoveries));
    table.row("min multiplier", fleet.min_speed_multiplier);
    table.print(std::cout);
  }
  if (session.num_shed() + session.num_backpressured() > 0) {
    util::Table table({"overload counter", "value"});
    table.row("sheds", static_cast<int>(session.num_shed()));
    table.row("backpressured", static_cast<int>(session.num_backpressured()));
    table.row("max live jobs", static_cast<int>(session.max_live_jobs()));
    table.row("window cap (final)",
              static_cast<int>(session.current_window_cap()));
    table.row("shed allowance left",
              static_cast<int>(session.shed_allowance()));
    table.print(std::cout);
  }
}

/// Per-shard report + overload/fairness counters for the --fairness path.
/// Counters are sampled before drain_all() finishes the driver.
void print_driver_summary(const std::vector<api::RunSummary>& results,
                          const std::vector<service::ShardCounters>& counters) {
  for (std::size_t s = 0; s < results.size(); ++s) {
    std::cout << "shard " << s << ": " << to_string(results[s].report) << "\n";
  }
  util::Table table(
      {"shard", "sheds", "backpressured", "deferred", "staged ops"});
  for (std::size_t s = 0; s < counters.size(); ++s) {
    table.row(static_cast<int>(s), static_cast<int>(counters[s].sheds),
              static_cast<int>(counters[s].backpressured),
              static_cast<int>(counters[s].deferred),
              static_cast<unsigned long long>(counters[s].staged_ops));
  }
  table.print(std::cout);
}

/// --fairness stream leg: route the trace through a ShardDriver (stable
/// tenant routing via shard_for, DRR admission via fair_quantum). The
/// workbench drives the driver inline (threads=1) so every per-job
/// backpressure outcome stays visible to the backoff loop — a worker-mode
/// hand-off applies ops asynchronously and cannot deliver one (see
/// ShardDriver::try_submit).
int stream_sharded(const util::Cli& cli, const Instance& instance,
                   api::Algorithm algorithm,
                   const service::SessionOptions& options,
                   std::size_t num_shards, std::size_t quantum) {
  service::ShardDriverOptions driver_options;
  driver_options.threads = 1;
  driver_options.session = options;
  driver_options.fair_quantum = quantum;
  service::ShardDriver driver(algorithm, num_shards, instance.num_machines(),
                              driver_options);
  const Time backoff =
      instance.num_jobs() > 0
          ? std::max(instance.job(static_cast<JobId>(instance.num_jobs() - 1))
                             .release /
                         static_cast<double>(instance.num_jobs()) * 4.0,
                     1e-3)
          : 1.0;
  const double checkpoint_at = cli.num("checkpoint-at");
  const std::string checkpoint_out = cli.str("checkpoint-out");
  bool checkpointed = checkpoint_out.empty();
  StreamJob job;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    fill_stream_job(instance, static_cast<JobId>(j), 0.0, &job);
    if (!checkpointed && job.release > checkpoint_at) {
      for (std::size_t s = 0; s < driver.num_shards(); ++s) {
        if (checkpoint_at > driver.session(s).now()) {
          driver.advance(s, checkpoint_at);
        }
      }
      const std::string blob = driver.checkpoint();
      std::ofstream out(checkpoint_out, std::ios::binary);
      if (!out.write(blob.data(), static_cast<std::streamsize>(blob.size()))) {
        std::cerr << "cannot write " << checkpoint_out << "\n";
        return 1;
      }
      std::cout << "checkpoint: " << blob.size() << " bytes ("
                << driver.num_shards() << " shards, clock " << checkpoint_at
                << ") -> " << checkpoint_out << "\n";
      checkpointed = true;
    }
    const std::size_t shard = driver.shard_for(j);
    job.release = std::max(job.release, driver.session(shard).now());
    for (;;) {
      const service::StageOutcome outcome = driver.try_submit(shard, job);
      if (service::stage_ok(outcome)) break;
      if (outcome == service::StageOutcome::kDeferred) {
        driver.flush();  // round boundary: replenishes every shard's credit
        continue;
      }
      job.release += backoff;  // kBackpressure: re-offer the arrival later
    }
  }
  if (!checkpointed) {
    std::cerr << "warning: --checkpoint-at=" << checkpoint_at
              << " is past the last arrival; no checkpoint written\n";
  }
  std::vector<service::ShardCounters> counters;
  counters.reserve(driver.num_shards());
  for (std::size_t s = 0; s < driver.num_shards(); ++s) {
    counters.push_back(driver.shard_counters(s));
  }
  print_driver_summary(driver.drain_all(), counters);
  return 0;
}

/// --mode=stream: feed the trace through a live session, optionally under a
/// fault plan, optionally cutting a checkpoint at --checkpoint-at.
int stream(const util::Cli& cli, const Instance& instance) {
  const auto algorithm = api::parse_algorithm(cli.str("algo"));
  if (!algorithm) {
    std::cerr << "unknown --algo '" << cli.str("algo") << "'\n";
    return 1;
  }
  if (*algorithm == api::Algorithm::kTheorem3) {
    std::cerr << "theorem3 is batch-only (offline LP); pick a streamable "
                 "algorithm\n";
    return 1;
  }
  service::SessionOptions options;
  options.run.epsilon = cli.num("eps");
  options.run.alpha = cli.num("alpha");
  options.live_window_cap = static_cast<std::size_t>(cli.integer("window-cap"));
  options.shed_budget = static_cast<std::size_t>(cli.integer("shed-budget"));
  if (!parse_shed_policy(cli.str("shed-policy"), &options.shed_policy) ||
      !parse_adaptive_cap(cli.str("adaptive-cap"), &options.adaptive_cap)) {
    return 1;
  }
  if (!build_fleet_plan(cli, instance.num_machines(), &options.run.fleet)) {
    return 1;
  }
  std::size_t fair_shards = 0;
  std::size_t fair_quantum = 0;
  if (!parse_fairness(cli.str("fairness"), &fair_shards, &fair_quantum)) {
    return 1;
  }
  if (fair_shards > 0) {
    return stream_sharded(cli, instance, *algorithm, options, fair_shards,
                          fair_quantum);
  }

  service::SchedulerSession session(*algorithm, instance.num_machines(),
                                    options);
  // Under a window cap a saturated submit is refused, not fatal: the
  // operator contract (docs/OPERATIONS.md) is to re-offer the arrival with
  // its release pushed back one backoff step, letting the events due by the
  // new release fire and free slots.
  const Time backoff =
      instance.num_jobs() > 0
          ? std::max(instance.job(static_cast<JobId>(instance.num_jobs() - 1))
                             .release /
                         static_cast<double>(instance.num_jobs()) * 4.0,
                     1e-3)
          : 1.0;
  const auto submit_with_backoff = [&](service::SchedulerSession& target,
                                       StreamJob& pending) {
    pending.release = std::max(pending.release, target.now());
    while (target.try_submit(pending) ==
           service::SubmitOutcome::kBackpressure) {
      pending.release += backoff;
    }
  };
  const double checkpoint_at = cli.num("checkpoint-at");
  const std::string checkpoint_out = cli.str("checkpoint-out");
  bool checkpointed = checkpoint_out.empty();  // nothing to cut
  StreamJob job;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    fill_stream_job(instance, static_cast<JobId>(j), 0.0, &job);
    if (!checkpointed && job.release > checkpoint_at) {
      if (checkpoint_at > session.now()) session.advance(checkpoint_at);
      const std::string blob = session.checkpoint();
      std::ofstream out(checkpoint_out, std::ios::binary);
      if (!out.write(blob.data(), static_cast<std::streamsize>(blob.size()))) {
        std::cerr << "cannot write " << checkpoint_out << "\n";
        return 1;
      }
      std::cout << "checkpoint: " << blob.size() << " bytes ("
                << session.num_submitted() << " jobs, clock "
                << session.now() << ") -> " << checkpoint_out << "\n";
      checkpointed = true;
    }
    submit_with_backoff(session, job);
  }
  if (!checkpointed) {
    std::cerr << "warning: --checkpoint-at=" << checkpoint_at
              << " is past the last arrival; no checkpoint written\n";
  }
  const api::RunSummary summary = session.drain();
  print_session_summary(session, summary);
  return 0;
}

/// Driver-blob restore leg ("OSCKPD01" magic): rebuild every tenant
/// session, re-arm fairness (checkpoints deliberately carry no runtime
/// knobs — set_fair_quantum is the contract), then replay the routing to
/// find each shard's not-yet-submitted tail and feed it.
int restore_driver(const util::Cli& cli, const Instance& instance,
                   const std::string& blob) {
  std::string error;
  auto driver = service::ShardDriver::restore(blob, /*threads=*/1, &error);
  if (driver == nullptr) {
    std::cerr << "restore failed: " << error << "\n";
    return 1;
  }
  std::size_t fair_shards = 0;
  std::size_t fair_quantum = 0;
  if (!parse_fairness(cli.str("fairness"), &fair_shards, &fair_quantum)) {
    return 1;
  }
  if (fair_shards > 0 && fair_shards != driver->num_shards()) {
    std::cerr << "--fairness names " << fair_shards
              << " shards but the checkpoint has " << driver->num_shards()
              << " (routing is fixed at stream time; only the quantum can "
                 "change)\n";
    return 1;
  }
  if (fair_quantum > 0) driver->set_fair_quantum(fair_quantum);
  std::size_t replayed = 0;
  std::vector<std::size_t> remaining(driver->num_shards(), 0);
  for (std::size_t s = 0; s < driver->num_shards(); ++s) {
    remaining[s] = driver->session(s).num_submitted();
    replayed += remaining[s];
  }
  std::cout << "restored " << driver->num_shards() << "-shard "
            << api::to_string(driver->session(0).algorithm()) << ": "
            << replayed << " jobs replayed\n";
  if (driver->session(0).num_machines() != instance.num_machines()) {
    std::cerr << "trace has " << instance.num_machines()
              << " machines, checkpoint has "
              << driver->session(0).num_machines() << "\n";
    return 1;
  }
  const Time backoff =
      instance.num_jobs() > 0
          ? std::max(instance.job(static_cast<JobId>(instance.num_jobs() - 1))
                             .release /
                         static_cast<double>(instance.num_jobs()) * 4.0,
                     1e-3)
          : 1.0;
  StreamJob job;
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    const std::size_t shard = driver->shard_for(j);
    // shard_for is stable, so the first remaining[shard] jobs routed to a
    // shard are exactly the ones its session already replayed.
    if (remaining[shard] > 0) {
      --remaining[shard];
      continue;
    }
    fill_stream_job(instance, static_cast<JobId>(j), 0.0, &job);
    job.release = std::max(job.release, driver->session(shard).now());
    for (;;) {
      const service::StageOutcome outcome = driver->try_submit(shard, job);
      if (service::stage_ok(outcome)) break;
      if (outcome == service::StageOutcome::kDeferred) {
        driver->flush();
        continue;
      }
      job.release += backoff;
    }
  }
  std::vector<service::ShardCounters> counters;
  counters.reserve(driver->num_shards());
  for (std::size_t s = 0; s < driver->num_shards(); ++s) {
    counters.push_back(driver->shard_counters(s));
  }
  print_driver_summary(driver->drain_all(), counters);
  return 0;
}

/// --mode=restore: rebuild a session from --from, then (when the trace is
/// supplied) feed the not-yet-submitted tail and drain.
int restore(const util::Cli& cli, const Instance& instance) {
  const std::string path = cli.str("from");
  if (path.empty()) {
    std::cerr << "--mode=restore needs --from=<checkpoint file>\n";
    return 1;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string blob = buffer.str();
  if (blob.size() >= sizeof(service::kDriverCheckpointMagic) &&
      std::memcmp(blob.data(), service::kDriverCheckpointMagic,
                  sizeof(service::kDriverCheckpointMagic)) == 0) {
    return restore_driver(cli, instance, blob);
  }

  std::string error;
  auto session = service::SchedulerSession::restore(blob, &error);
  if (session == nullptr) {
    std::cerr << "restore failed: " << error << "\n";
    return 1;
  }
  std::cout << "restored " << api::to_string(session->algorithm()) << ": "
            << session->num_submitted() << " jobs replayed, clock "
            << session->now() << "\n";
  if (session->num_machines() != instance.num_machines()) {
    std::cerr << "trace has " << instance.num_machines()
              << " machines, checkpoint has " << session->num_machines()
              << "\n";
    return 1;
  }
  // The restored session carries its window cap and shed budget in the
  // blob, so the tail feed honours the same backpressure contract as
  // --mode=stream.
  const Time backoff =
      instance.num_jobs() > 0
          ? std::max(instance.job(static_cast<JobId>(instance.num_jobs() - 1))
                             .release /
                         static_cast<double>(instance.num_jobs()) * 4.0,
                     1e-3)
          : 1.0;
  StreamJob job;
  for (std::size_t j = session->num_submitted(); j < instance.num_jobs();
       ++j) {
    fill_stream_job(instance, static_cast<JobId>(j), 0.0, &job);
    job.release = std::max(job.release, session->now());
    while (session->try_submit(job) ==
           service::SubmitOutcome::kBackpressure) {
      job.release += backoff;
    }
  }
  const api::RunSummary summary = session->drain();
  print_session_summary(*session, summary);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.flag("mode", "inspect", "generate | inspect | run | stream | restore");
  cli.flag("in", "", "input trace (inspect/run/stream/restore)");
  cli.flag("out", "/tmp/osched_trace.csv", "output trace (generate)");
  cli.flag("jobs", "500", "generate: number of jobs");
  cli.flag("machines", "4", "generate: number of machines");
  cli.flag("load", "1.0", "generate: target utilization");
  cli.flag("sizes", "pareto", "generate: size distribution");
  cli.flag("deadlines", "false", "generate: attach deadlines");
  cli.flag("seed", "1", "generate: RNG seed");
  cli.flag("algo", "theorem1",
           "run: theorem1 | theorem2 | theorem3 | weighted-ext | greedy-spt "
           "| fifo | immediate-reject");
  cli.flag("eps", "0.2", "run: rejection parameter");
  cli.flag("alpha", "2.0", "run: power exponent (theorem2)");
  cli.flag("dump", "", "run: write the schedule record to this CSV file");
  cli.flag("fail", "", "stream: kill schedule, time:machine[,time:machine]");
  cli.flag("drain", "", "stream: drain schedule, time:machine[,...]");
  cli.flag("join", "", "stream: join schedule, time:machine[,...]");
  cli.flag("down", "", "stream: machines outside the fleet at t=0, id[,id]");
  cli.flag("speed", "",
           "stream: speed schedule, time:machine:multiplier[,...]");
  cli.flag("budget", "0", "stream: fault rejection budget");
  cli.flag("window-cap", "0",
           "stream: live-window cap (0 = uncapped); refused arrivals are "
           "re-offered with a release backoff");
  cli.flag("shed-budget", "0",
           "stream: overload sheds allowed before backpressure");
  cli.flag("shed-policy", "fixed",
           "stream: shed victim/budget rule, fixed | epsilon (epsilon "
           "derives the budget from the algorithm's rejection allowance)");
  cli.flag("adaptive-cap", "",
           "stream: auto-tune the window cap, min:max:window:delay"
           "[:hysteresis] over submitted virtual time");
  cli.flag("fairness", "",
           "stream/restore: shards:quantum — route through a sharded "
           "driver with deficit-round-robin admission");
  cli.flag("checkpoint-at", "0", "stream: cut a checkpoint at this time");
  cli.flag("checkpoint-out", "", "stream: write the checkpoint blob here");
  cli.flag("from", "", "restore: checkpoint blob to resume from");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const std::string mode = cli.str("mode");
  if (mode == "generate") return generate(cli);

  // inspect / run need an input trace; default to a small generated demo so
  // the binary is runnable with no arguments.
  Instance instance;
  const std::string in = cli.str("in");
  if (in.empty()) {
    workload::WorkloadConfig config;
    config.num_jobs = 200;
    config.num_machines = 3;
    config.seed = 42;
    instance = workload::generate_workload(config);
    std::cout << "(no --in given: using a generated 200-job demo trace)\n";
  } else {
    std::string error;
    auto loaded = workload::load_instance(in, &error);
    if (!loaded) {
      std::cerr << "cannot load " << in << ": " << error << "\n";
      return 1;
    }
    instance = std::move(*loaded);
  }
  if (mode == "inspect") return inspect(instance);
  if (mode == "run") return run(cli, instance);
  if (mode == "stream") return stream(cli, instance);
  if (mode == "restore") return restore(cli, instance);
  std::cerr << "unknown --mode '" << mode << "'\n";
  return 1;
}
