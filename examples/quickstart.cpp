// Quickstart: build a tiny unrelated-machines instance, run the Theorem 1
// scheduler, inspect the schedule, the rejections and the certified
// competitive-ratio bound.
//
//   ./quickstart [--eps=0.25]
#include <iostream>

#include "core/flow/rejection_flow.hpp"
#include "instance/builders.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ratio.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("eps", "0.25", "rejection parameter in (0,1)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");

  // Two machines, five jobs. processing[machine] per job — machine 1 is
  // generally faster but job 2 only runs well on machine 0 (unrelated).
  InstanceBuilder builder(2);
  builder.add_job(/*release=*/0.0, {8.0, 5.0});
  builder.add_job(/*release=*/1.0, {4.0, 3.0});
  builder.add_job(/*release=*/2.0, {2.0, 9.0});
  builder.add_job(/*release=*/2.5, {6.0, 4.0});
  builder.add_job(/*release=*/3.0, {1.0, 1.5});
  const Instance instance = builder.build();

  const RejectionFlowResult result =
      run_rejection_flow(instance, {.epsilon = eps});

  // Always validate through the independent checker.
  check_schedule(result.schedule, instance);

  util::Table table({"job", "release", "machine", "fate", "start", "end", "flow"});
  for (std::size_t j = 0; j < instance.num_jobs(); ++j) {
    const auto id = static_cast<JobId>(j);
    const JobRecord& rec = result.schedule.record(id);
    table.row(static_cast<int>(j), instance.job(id).release,
              static_cast<int>(rec.machine), to_string(rec.fate),
              rec.started ? util::Table::num(rec.start) : std::string("-"),
              rec.started ? util::Table::num(rec.end) : std::string("-"),
              result.schedule.flow_time(id, instance));
  }
  table.print(std::cout);

  const ObjectiveReport report = evaluate(result.schedule, instance);
  std::cout << "total flow (incl. rejected): " << report.total_flow << "\n"
            << "rejected: " << report.num_rejected << "/" << report.num_jobs
            << " (Rule 1: " << result.rule1_rejections
            << ", Rule 2: " << result.rule2_rejections << ")\n"
            << "certified OPT lower bound (dual/2): " << result.opt_lower_bound
            << "\n"
            << "measured ratio <= " << report.total_flow / result.opt_lower_bound
            << "   (theorem bound " << theorem1_ratio_bound(eps) << ")\n";
  return 0;
}
