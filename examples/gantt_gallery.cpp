// Gantt gallery: SEE what the paper's policies do.
//
// Renders ASCII Gantt charts of the library's schedulers on the two
// pathological workload shapes the paper's rejection rules exist for:
//   1. burst-trap — an elephant followed by a burst of mice. Watch Rule 1
//      interrupt the elephant ('x') where the no-rejection greedy holds
//      every mouse hostage behind it.
//   2. sustained overload — more work than capacity. Watch Rule 2 trim the
//      largest pending jobs (listed under the chart) to keep queues short.
// Plus a speed-profile view of the Theorem 3 greedy stacking parallel
// executions on a deadline workload.
//
//   ./gantt_gallery [--eps=0.25] [--seed=5] [--width=96]
#include <iostream>

#include "baselines/list_scheduler.hpp"
#include "core/energy_min/config_primal_dual.hpp"
#include "core/flow/rejection_flow.hpp"
#include "instance/builders.hpp"
#include "metrics/metrics.hpp"
#include "metrics/ratio.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "viz/gantt.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("eps", "0.25", "rejection parameter");
  cli.flag("seed", "5", "workload seed");
  cli.flag("width", "96", "chart width in characters");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double eps = cli.num("eps");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  viz::GanttOptions gantt;
  gantt.width = static_cast<std::size_t>(cli.integer("width"));

  // ---- 1. burst trap ----
  workload::BurstTrapConfig trap;
  trap.num_rounds = 2;
  trap.burst_jobs = 10;
  trap.long_size = 40.0;
  trap.seed = seed;
  const Instance burst = workload::generate_burst_trap(trap);

  util::print_section(std::cout, "burst trap — greedy SPT (no rejection)");
  const Schedule greedy = run_greedy_spt(burst);
  std::cout << viz::render_gantt(greedy, burst, gantt)
            << "total flow: " << greedy.total_flow(burst) << "\n";

  util::print_section(std::cout, "burst trap — Theorem 1 (eps=" +
                                     util::Table::num(eps, 3) + ")");
  const auto t1_burst = run_rejection_flow(burst, {.epsilon = eps});
  std::cout << viz::render_gantt(t1_burst.schedule, burst, gantt)
            << "total flow: " << t1_burst.schedule.total_flow(burst)
            << "  (rule 1 fired " << t1_burst.rule1_rejections
            << "x, rule 2 " << t1_burst.rule2_rejections << "x)\n";

  // ---- 2. sustained overload ----
  workload::WorkloadConfig overload;
  overload.num_jobs = 40;
  overload.num_machines = 2;
  overload.load = 1.6;
  overload.sizes.dist = workload::SizeDistribution::kPareto;
  overload.seed = seed + 1;
  const Instance heavy = workload::generate_workload(overload);

  util::print_section(std::cout, "sustained overload — FIFO (no rejection)");
  const Schedule fifo = run_fifo(heavy);
  std::cout << viz::render_gantt(fifo, heavy, gantt)
            << "total flow: " << fifo.total_flow(heavy) << "\n";

  util::print_section(std::cout, "sustained overload — Theorem 1");
  const auto t1_heavy = run_rejection_flow(heavy, {.epsilon = eps});
  std::cout << viz::render_gantt(t1_heavy.schedule, heavy, gantt)
            << "total flow: " << t1_heavy.schedule.total_flow(heavy)
            << "  (rejected " << t1_heavy.schedule.num_rejected() << "/"
            << heavy.num_jobs() << " jobs; budget "
            << theorem1_rejection_budget(eps) * static_cast<double>(heavy.num_jobs())
            << ")\n";

  // ---- 3. Theorem 3 stacking ----
  util::print_section(std::cout,
                      "deadline energy — Theorem 3 greedy, stacked speeds");
  InstanceBuilder deadlines(1);
  deadlines.add_job(0.0, {6.0}, 1.0, 12.0);
  deadlines.add_job(1.0, {4.0}, 1.0, 9.0);
  deadlines.add_job(2.0, {3.0}, 1.0, 7.0);
  deadlines.add_job(3.0, {2.0}, 1.0, 6.0);
  const Instance energy_instance = deadlines.build();
  ConfigPDOptions pd;
  pd.alpha = 2.0;
  pd.speed_levels = 8;
  const auto pd_result = run_config_primal_dual(energy_instance, pd);
  const PolynomialPower power(2.0);
  viz::ProfileOptions profile;
  profile.width = gantt.width;
  std::cout << viz::render_gantt(pd_result.schedule, energy_instance, gantt)
            << '\n'
            << viz::render_speed_profile(pd_result.schedule, energy_instance,
                                         0, power, profile)
            << "exact algorithm energy: " << pd_result.algorithm_energy
            << " (alpha^alpha bound permits "
            << theorem3_ratio_bound(pd.alpha) << "x OPT)\n";
  return 0;
}
