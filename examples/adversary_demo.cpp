// Lower-bound constructions live: runs the Lemma 1 adversary against an
// immediate-rejection policy (and Theorem 1's algorithm on the same
// instance), then the Lemma 2 adversary against the Theorem 3 greedy.
//
//   ./adversary_demo [--L=16 --eps=0.25 --alpha=3]
#include <iostream>

#include "baselines/immediate_rejection.hpp"
#include "core/flow/rejection_flow.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/lemma1_adversary.hpp"
#include "workload/lemma2_adversary.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("L", "16", "Lemma 1 big-job length (Delta = L^2)");
  cli.flag("eps", "0.25", "rejection budget for both policies");
  cli.flag("alpha", "3", "Lemma 2 power exponent");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;
  const double L = cli.num("L");
  const double eps = cli.num("eps");
  const double alpha = cli.num("alpha");

  // ---------------- Lemma 1 ----------------
  workload::Lemma1Config l1;
  l1.eps = eps;
  l1.L = L;
  const workload::PolicyRunner immediate = [&](const Instance& instance) {
    return run_immediate_rejection(instance, {.eps = eps, .patience = 3.0})
        .schedule;
  };
  const auto outcome = run_lemma1_adversary(immediate, l1);
  std::cout << "Lemma 1 instance: " << outcome.num_big << " big jobs (L=" << L
            << ") + " << outcome.num_small
            << " small jobs (1/L), Delta = " << outcome.delta << "\n"
            << "policy started the first big job at t=" << outcome.first_big_start
            << (outcome.algorithm_waited ? " (waited out: case 1)\n"
                                         : " (flooded: case 2)\n");

  const double immediate_flow =
      immediate(outcome.instance).total_flow(outcome.instance);
  const auto t1 = run_rejection_flow(outcome.instance, {.epsilon = eps});
  const double t1_flow = t1.schedule.total_flow(outcome.instance);

  util::Table l1_table({"algorithm", "total flow", "ratio vs adversary"});
  l1_table.row("immediate rejection", immediate_flow,
               immediate_flow / outcome.adversary_flow);
  l1_table.row("theorem 1 (late rejection)", t1_flow,
               t1_flow / outcome.adversary_flow);
  l1_table.row("adversary witness", outcome.adversary_flow, 1.0);
  l1_table.print(std::cout);
  std::cout << "Lemma 1 predicts Omega(sqrt(Delta)) = Omega(" << L
            << ") for ANY immediate policy; Theorem 1 interrupts the running "
               "elephant instead.\n\n";

  // ---------------- Lemma 2 ----------------
  workload::Lemma2Config l2;
  l2.alpha = alpha;
  const auto energy = run_lemma2_adversary(l2);
  std::cout << "Lemma 2 adversary released " << energy.jobs_released
            << " nested jobs against the Theorem 3 greedy (alpha=" << alpha
            << ")\n";
  util::Table l2_table({"quantity", "value"});
  l2_table.row("algorithm energy", energy.algorithm_energy);
  l2_table.row(energy.witness_certified ? "witness energy (exact)"
                                        : "witness energy (incumbent)",
               energy.witness_energy);
  l2_table.row("ratio (certified LB on ALG/OPT)", energy.ratio());
  l2_table.print(std::cout);
  std::cout << "the lemma's asymptotic floor is (alpha/9)^alpha; the "
               "commitments force overlap that stacks machine speed.\n";
  return 0;
}
