// Datacenter scenario: heavy-tailed (Pareto) jobs arrive in bursts on a
// heterogeneous cluster. Compares the Theorem 1 rejection scheduler against
// the no-rejection baselines and the speed-augmented prior art [5] on the
// same trace — the comparison the paper's introduction motivates: a handful
// of rejected stragglers buys an order of magnitude of average flow time.
//
//   ./datacenter_flow [--jobs=2000 --machines=8 --load=1.1 --eps=0.2 --seed=1]
#include <iostream>

#include "baselines/flow_lower_bounds.hpp"
#include "baselines/list_scheduler.hpp"
#include "baselines/speed_augmented.hpp"
#include "core/flow/rejection_flow.hpp"
#include "metrics/metrics.hpp"
#include "sim/validator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace osched;

  util::Cli cli;
  cli.flag("jobs", "2000", "number of jobs");
  cli.flag("machines", "8", "number of machines");
  cli.flag("load", "1.1", "target utilization (1.0 saturates)");
  cli.flag("eps", "0.2", "rejection parameter");
  cli.flag("seed", "1", "workload seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  workload::WorkloadConfig config;
  config.num_jobs = static_cast<std::size_t>(cli.integer("jobs"));
  config.num_machines = static_cast<std::size_t>(cli.integer("machines"));
  config.load = cli.num("load");
  config.arrivals.kind = workload::ArrivalKind::kBursty;
  config.sizes.dist = workload::SizeDistribution::kPareto;
  config.sizes.min_size = 0.5;
  config.sizes.pareto_shape = 1.6;  // heavy tail: elephants and mice
  config.machines.model = workload::MachineModel::kUnrelated;
  config.machines.speed_spread = 3.0;
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const Instance instance = workload::generate_workload(config);
  const double eps = cli.num("eps");

  std::cout << "workload: " << config.num_jobs << " Pareto(shape "
            << config.sizes.pareto_shape << ") jobs, bursty arrivals, "
            << config.num_machines << " unrelated machines, load "
            << config.load << ", seed " << config.seed << "\n";

  // --- the contenders ---
  const auto rejection = run_rejection_flow(instance, {.epsilon = eps});
  check_schedule(rejection.schedule, instance);

  SpeedAugmentedOptions speed_options;
  speed_options.eps_rejection = eps;
  speed_options.eps_speed = eps;
  const auto speed_aug = run_speed_augmented_flow(instance, speed_options);
  check_schedule(speed_aug.schedule, instance);

  const Schedule greedy = run_greedy_spt(instance);
  check_schedule(greedy, instance);
  const Schedule fifo = run_fifo(instance);
  check_schedule(fifo, instance);

  const double lb = best_flow_lower_bound(instance, rejection.opt_lower_bound);

  util::Table table({"algorithm", "total flow", "vs LB", "max flow", "rejected",
                     "completed flow"});
  auto add = [&](const std::string& name, const Schedule& schedule) {
    const ObjectiveReport r = evaluate(schedule, instance);
    table.row(name, r.total_flow, r.total_flow / lb, r.max_flow,
              static_cast<int>(r.num_rejected), r.completed_flow);
  };
  add("theorem1 (rejection only)", rejection.schedule);
  add("speed-aug + rejection [5]", speed_aug.schedule);
  add("greedy SPT (no rejection)", greedy);
  add("FIFO (no rejection)", fifo);
  table.print(std::cout);

  std::cout << "certified flow lower bound: " << lb << "\n"
            << "theorem 1 rejected " << rejection.schedule.num_rejected()
            << " jobs (budget " << 2.0 * eps * double(instance.num_jobs())
            << ")\n";
  return 0;
}
